"""repro — reproduction of "Real-Time Context-aware Detection of Unsafe
Events in Robot-Assisted Surgery" (Yasar & Alemzadeh, DSN 2020).

The package provides, from the bottom up:

- :mod:`repro.nn` — a numpy deep-learning framework (LSTM, 1D-CNN, Adam,
  batch-norm, dropout, early stopping) standing in for Keras/TensorFlow;
- :mod:`repro.kinematics` — the JIGSAWS 19-variable-per-arm kinematics
  schema, sliding windows and trajectory containers;
- :mod:`repro.gestures` — the surgical gesture vocabulary, the Table II
  error rubric and Markov-chain task grammars (paper Figure 3);
- :mod:`repro.simulation` — a pure-Python Raven II / Block Transfer
  simulator with a virtual camera (the paper's ROS Gazebo environment);
- :mod:`repro.jigsaws` — a synthetic JIGSAWS-style dataset generator
  (the paper's dVRK data);
- :mod:`repro.faults` — the software fault-injection tool and the
  Table III campaign;
- :mod:`repro.vision` — SSIM / thresholding / contour tracking / DTW for
  automated error labeling;
- :mod:`repro.baselines` — SC-CRF-like and SDSDL-like gesture-recognition
  comparators;
- :mod:`repro.core` — the paper's contribution: the context-aware safety
  monitoring pipeline;
- :mod:`repro.serving` — the multi-stream online serving engine
  (concurrent monitoring sessions batched per tick);
- :mod:`repro.eval` — metrics (accuracy, TPR/TNR/PPV/NPV, F1, ROC/AUC,
  jitter, reaction time) and report formatting;
- :mod:`repro.experiments` — one entry point per paper table/figure.
"""

from .config import (
    JIGSAWS_FRAME_RATE_HZ,
    MonitorConfig,
    RAVEN_DEFAULT_SAMPLE_RATE_HZ,
    TrainingConfig,
    WindowConfig,
    as_generator,
    frames_to_ms,
    ms_to_frames,
)
from .errors import (
    ConfigurationError,
    DatasetError,
    FaultInjectionError,
    GestureError,
    NotFittedError,
    ReproError,
    ShapeError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "DatasetError",
    "FaultInjectionError",
    "GestureError",
    "JIGSAWS_FRAME_RATE_HZ",
    "MonitorConfig",
    "NotFittedError",
    "RAVEN_DEFAULT_SAMPLE_RATE_HZ",
    "ReproError",
    "ShapeError",
    "SimulationError",
    "TrainingConfig",
    "WindowConfig",
    "__version__",
    "as_generator",
    "frames_to_ms",
    "ms_to_frames",
]
