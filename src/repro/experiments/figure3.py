"""Paper Figure 3: Markov chains derived from demonstration data.

Re-derives the Suturing and Block Transfer task grammars from the
(synthetic) demonstrations' gesture sequences and compares them against
the published chains the data was sampled from — closing the loop the
paper describes ("the Markov chain ... derived from the analysis of the
dry-lab demonstrations").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.reports import format_table
from ..gestures.markov import MarkovChain
from ..gestures.models import block_transfer_chain, suturing_chain
from ..gestures.vocabulary import END_TOKEN, START_TOKEN
from ..jigsaws.dataset import SurgicalDataset
from ..jigsaws.synthesis import make_suturing_dataset
from .common import ExperimentScale, get_scale, make_blocktransfer_dataset


@dataclass
class Figure3Result:
    """Fitted vs reference chain for one task."""

    task: str
    fitted: MarkovChain
    reference: MarkovChain
    #: Mean absolute difference over the union of reference transitions.
    mean_abs_probability_error: float


def _compare(fitted: MarkovChain, reference: MarkovChain) -> float:
    errors = []
    for state, row in reference.transitions.items():
        for nxt, p_ref in row.items():
            errors.append(abs(fitted.probability(state, nxt) - p_ref))
    return float(np.mean(errors)) if errors else float("nan")


def fit_chain(dataset: SurgicalDataset) -> MarkovChain:
    """Maximum-likelihood chain from a dataset's gesture sequences."""
    sequences = [d.gesture_sequence() for d in dataset.demonstrations]
    return MarkovChain.fit(sequences)


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    suturing: SurgicalDataset | None = None,
    block_transfer: SurgicalDataset | None = None,
) -> list[Figure3Result]:
    """Fit chains for both tasks and compare with Figure 3."""
    preset = get_scale(scale)
    if suturing is None:
        suturing = make_suturing_dataset(n_demos=preset.suturing_demos, rng=seed)
    if block_transfer is None:
        block_transfer = make_blocktransfer_dataset(preset, seed=seed)
    results = []
    for task, dataset, reference in (
        ("suturing", suturing, suturing_chain()),
        ("block_transfer", block_transfer, block_transfer_chain()),
    ):
        fitted = fit_chain(dataset)
        results.append(
            Figure3Result(
                task=task,
                fitted=fitted,
                reference=reference,
                mean_abs_probability_error=_compare(fitted, reference),
            )
        )
    return results


def render(results: list[Figure3Result]) -> str:
    """ASCII rendering: fitted transition probabilities per task."""
    blocks = []
    for result in results:
        headers = ["From", "To", "P(fitted)", "P(published)"]
        rows = []
        for state in result.fitted.states():
            if state == END_TOKEN:
                continue
            for nxt, p in sorted(result.fitted.successors(state).items()):
                name = "Start" if state == START_TOKEN else f"G{state}"
                nxt_name = "End" if nxt == END_TOKEN else f"G{nxt}"
                rows.append(
                    [name, nxt_name, f"{p:.2f}", f"{result.reference.probability(state, nxt):.2f}"]
                )
        blocks.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Figure 3 ({result.task}): fitted vs published chain "
                    f"(mean |dP| = {result.mean_abs_probability_error:.3f})"
                ),
            )
        )
    return "\n\n".join(blocks)
