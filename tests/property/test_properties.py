"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import WindowConfig
from repro.eval.metrics import binary_metrics
from repro.eval.roc import auc_score
from repro.gestures.markov import MarkovChain
from repro.kinematics.rotations import (
    is_rotation_matrix,
    rotation_angle_between,
    rotation_from_euler,
)
from repro.kinematics.windows import (
    StreamingWindow,
    StreamingWindowBatch,
    sliding_windows,
    window_labels,
)
from repro.nn.layers.activations import sigmoid, softmax
from repro.nn.preprocessing import StandardScaler, one_hot
from repro.vision.dtw import dtw_distance

angles = st.floats(-np.pi, np.pi, allow_nan=False)


class TestRotationProperties:
    @given(angles, angles, angles)
    @settings(max_examples=50, deadline=None)
    def test_euler_always_proper_rotation(self, roll, pitch, yaw):
        assert is_rotation_matrix(rotation_from_euler(roll, pitch, yaw), atol=1e-7)

    @given(angles, angles, angles, angles, angles, angles)
    @settings(max_examples=30, deadline=None)
    def test_angle_between_symmetric_and_bounded(self, r1, p1, y1, r2, p2, y2):
        a = rotation_from_euler(r1, p1, y1)
        b = rotation_from_euler(r2, p2, y2)
        angle = rotation_angle_between(a, b)
        assert 0.0 <= angle <= np.pi + 1e-9
        assert angle == rotation_angle_between(b, a)


class TestWindowProperties:
    @given(
        n_frames=st.integers(1, 60),
        window=st.integers(1, 12),
        stride=st.integers(1, 6),
        n_features=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_count_and_content(self, n_frames, window, stride, n_features):
        cfg = WindowConfig(window, stride)
        frames = np.arange(n_frames * n_features, dtype=float).reshape(
            n_frames, n_features
        )
        windows, ends = sliding_windows(frames, cfg)
        assert windows.shape[0] == cfg.n_windows(n_frames)
        for i in range(windows.shape[0]):
            start = ends[i] - window + 1
            assert np.array_equal(windows[i], frames[start : ends[i] + 1])

    @given(
        n_frames=st.integers(5, 60),
        window=st.integers(1, 8),
        stride=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_batch(self, n_frames, window, stride):
        cfg = WindowConfig(window, stride)
        rng = np.random.default_rng(0)
        frames = rng.random((n_frames, 2))
        batch, ends = sliding_windows(frames, cfg)
        stream = StreamingWindow(cfg, 2)
        events = list(stream.iter_windows(frames))
        assert [t for t, __ in events] == ends.tolist()
        for (__, win), expected in zip(events, batch):
            assert np.array_equal(win, expected)

    @given(
        labels=arrays(np.int64, st.integers(3, 40), elements=st.integers(0, 1)),
        window=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_reduce_never_underreports(self, labels, window):
        cfg = WindowConfig(window, 1)
        if cfg.n_windows(labels.size) == 0:
            return
        any_labels = window_labels(labels, cfg, reduce="any")
        last_labels = window_labels(labels, cfg, reduce="last")
        assert np.all(any_labels >= last_labels)

    @given(
        labels=arrays(np.int64, st.integers(1, 40), elements=st.integers(0, 5)),
        window=st.integers(1, 7),
        stride=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_majority_reduce_matches_reference(self, labels, window, stride):
        """The vectorized majority equals a naive per-window count with
        the documented lowest-label-wins tie contract."""
        cfg = WindowConfig(window, stride)
        n = cfg.n_windows(labels.size)
        out = window_labels(labels, cfg, reduce="majority")
        assert out.shape == (n,)
        for i in range(n):
            chunk = labels[i * stride : i * stride + window]
            values, counts = np.unique(chunk, return_counts=True)
            best = values[counts == counts.max()].min()
            assert out[i] == best


class TestStreamingBatchProperties:
    @given(
        n_streams=st.integers(1, 4),
        window=st.integers(1, 9),
        stride=st.integers(1, 12),  # includes stride > window
        base_length=st.integers(0, 30),  # includes shorter than one window
        n_features=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_streams_match_sliding_windows(
        self, n_streams, window, stride, base_length, n_features, seed
    ):
        """Each stream of a StreamingWindowBatch emits exactly the windows
        sliding_windows extracts from that stream's own sequence, even
        with staggered lengths (streams drop out as they end)."""
        cfg = WindowConfig(window, stride)
        rng = np.random.default_rng(seed)
        sequences = [
            rng.random((base_length + 2 * i, n_features)) for i in range(n_streams)
        ]
        batch = StreamingWindowBatch(cfg, n_streams, n_features)
        emitted = {i: [] for i in range(n_streams)}
        cursor = [0] * n_streams
        while True:
            ids = np.array(
                [i for i in range(n_streams) if cursor[i] < len(sequences[i])]
            )
            if ids.size == 0:
                break
            frames = np.stack([sequences[i][cursor[i]] for i in ids])
            ready, windows = batch.push(frames, ids)
            for row, i in enumerate(ids[ready]):
                emitted[i].append((cursor[i], windows[row]))
            for i in ids:
                cursor[i] += 1
        for i, seq in enumerate(sequences):
            expected_windows, expected_ends = sliding_windows(seq, cfg)
            assert [t for t, _ in emitted[i]] == expected_ends.tolist()
            for (_, win), expected in zip(emitted[i], expected_windows):
                assert np.array_equal(win, expected)

    @given(
        window=st.integers(1, 6),
        stride=st.integers(1, 8),
        n_frames=st.integers(0, 25),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_reset_restores_fresh_stream(self, window, stride, n_frames, seed):
        cfg = WindowConfig(window, stride)
        rng = np.random.default_rng(seed)
        frames = rng.random((n_frames, 2))
        stream = StreamingWindow(cfg, 2)
        # Pollute with an unrelated prefix, then reset.
        for row in rng.random((rng.integers(0, 3 * window + 1), 2)):
            stream.push(row)
        stream.reset()
        assert stream.frames_seen == 0
        replay = list(stream.iter_windows(frames))
        fresh = list(StreamingWindow(cfg, 2).iter_windows(frames))
        assert [t for t, _ in replay] == [t for t, _ in fresh]
        for (_, a), (_, b) in zip(replay, fresh):
            assert np.array_equal(a, b)


class TestMarkovProperties:
    @given(
        st.lists(
            st.lists(st.integers(1, 6), min_size=1, max_size=10),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fitted_rows_are_distributions(self, sequences):
        chain = MarkovChain.fit(sequences)
        for state, row in chain.transitions.items():
            assert abs(sum(row.values()) - 1.0) < 1e-9

    @given(
        st.lists(
            st.lists(st.integers(1, 4), min_size=1, max_size=8),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_samples_have_positive_likelihood(self, sequences, seed):
        chain = MarkovChain.fit(sequences)
        sample = chain.sample_sequence(seed, max_length=500)
        assert chain.sequence_log_likelihood([int(g) for g in sample]) > float("-inf")


class TestMetricProperties:
    @given(
        y_true=arrays(np.int64, st.integers(2, 60), elements=st.integers(0, 1)),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_auc_bounds_and_complement(self, y_true, seed):
        if len(np.unique(y_true)) < 2:
            return
        scores = np.random.default_rng(seed).random(y_true.size)
        auc = auc_score(y_true, scores)
        assert 0.0 <= auc <= 1.0
        # Negating the scores mirrors the AUC around 0.5 (ties aside —
        # continuous random scores are almost surely tie-free).
        assert abs(auc_score(y_true, -scores) - (1.0 - auc)) < 1e-9

    @given(
        y_true=arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 1)),
        y_pred=arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 1)),
    )
    @settings(max_examples=40, deadline=None)
    def test_binary_metrics_consistency(self, y_true, y_pred):
        n = min(y_true.size, y_pred.size)
        m = binary_metrics(y_true[:n], y_pred[:n])
        assert m.tp + m.fp + m.tn + m.fn == n
        for value in (m.tpr, m.tnr, m.ppv, m.npv, m.f1):
            assert np.isnan(value) or 0.0 <= value <= 1.0


class TestDTWProperties:
    @given(
        a=arrays(np.float64, st.integers(2, 25), elements=st.floats(-5, 5)),
        b=arrays(np.float64, st.integers(2, 25), elements=st.floats(-5, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_symmetric_identity(self, a, b):
        assert dtw_distance(a, a) <= 1e-9
        d_ab = dtw_distance(a, b)
        assert d_ab >= 0.0
        assert d_ab == dtw_distance(b, a)


class TestNNProperties:
    @given(
        x=arrays(
            np.float64,
            st.tuples(st.integers(1, 10), st.integers(2, 6)),
            elements=st.floats(-50, 50),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_distribution(self, x):
        probs = softmax(x)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    @given(
        x=arrays(np.float64, st.integers(1, 50), elements=st.floats(-700, 700))
    )
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_bounded(self, x):
        out = sigmoid(x)
        assert np.all((out >= 0.0) & (out <= 1.0))
        assert np.isfinite(out).all()

    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_scaler_round_trip(self, data):
        scaler = StandardScaler().fit(data)
        recovered = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(recovered, data, atol=1e-6)

    @given(
        labels=arrays(np.int64, st.integers(1, 30), elements=st.integers(0, 7))
    )
    @settings(max_examples=40, deadline=None)
    def test_one_hot_rows(self, labels):
        out = one_hot(labels, 8)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.array_equal(out.argmax(axis=1), labels)
