"""Rotation-matrix helpers used by the data synthesisers and the simulator.

The JIGSAWS kinematics schema stores end-effector orientation as a flattened
3x3 rotation matrix (9 of the 19 per-arm variables).  The synthetic data
generators need to construct plausible orientations and to perturb them
("wrong rotation angles" faults from paper Table II), and the evaluation
code needs to measure angular deviations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def identity_rotation() -> np.ndarray:
    """Return the 3x3 identity rotation."""
    return np.eye(3)


def rotation_about_axis(axis: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rotation matrix for a right-handed rotation of ``angle_rad`` about ``axis``.

    Uses the Rodrigues formula.  ``axis`` need not be normalised.
    """
    axis = np.asarray(axis, dtype=float)
    if axis.shape != (3,):
        raise ShapeError(f"axis must have shape (3,), got {axis.shape}")
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        raise ShapeError("axis must be a non-zero vector")
    x, y, z = axis / norm
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    cross = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    outer = np.outer([x, y, z], [x, y, z])
    return c * np.eye(3) + s * cross + (1.0 - c) * outer


def rotation_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Rotation matrix from intrinsic XYZ (roll, pitch, yaw) Euler angles."""
    rx = rotation_about_axis(np.array([1.0, 0.0, 0.0]), roll)
    ry = rotation_about_axis(np.array([0.0, 1.0, 0.0]), pitch)
    rz = rotation_about_axis(np.array([0.0, 0.0, 1.0]), yaw)
    return rz @ ry @ rx


def rotation_to_euler(rotation: np.ndarray) -> tuple[float, float, float]:
    """Recover (roll, pitch, yaw) from a rotation produced by
    :func:`rotation_from_euler`.

    Uses the standard ZYX decomposition; in the gimbal-lock case
    (``|pitch| == pi/2``) roll is set to zero.
    """
    rotation = _check_3x3(rotation)
    sy = -rotation[2, 0]
    sy = float(np.clip(sy, -1.0, 1.0))
    pitch = float(np.arcsin(sy))
    if abs(sy) < 1.0 - 1e-9:
        roll = float(np.arctan2(rotation[2, 1], rotation[2, 2]))
        yaw = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
    else:
        roll = 0.0
        yaw = float(np.arctan2(-rotation[0, 1], rotation[1, 1]))
    return roll, pitch, yaw


def is_rotation_matrix(matrix: np.ndarray, atol: float = 1e-6) -> bool:
    """True when ``matrix`` is a proper rotation (orthogonal, det +1)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (3, 3):
        return False
    if not np.allclose(matrix @ matrix.T, np.eye(3), atol=atol):
        return False
    return bool(np.isclose(np.linalg.det(matrix), 1.0, atol=atol))


def rotation_angle_between(r_a: np.ndarray, r_b: np.ndarray) -> float:
    """Geodesic angle (radians) between two rotations.

    This is the magnitude of the axis-angle representation of
    ``r_a.T @ r_b`` and is the natural metric for "wrong rotation angle"
    deviations.
    """
    r_a = _check_3x3(r_a)
    r_b = _check_3x3(r_b)
    relative = r_a.T @ r_b
    trace = float(np.trace(relative))
    cos_angle = np.clip((trace - 1.0) / 2.0, -1.0, 1.0)
    return float(np.arccos(cos_angle))


def _check_3x3(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (3, 3):
        raise ShapeError(f"expected a 3x3 matrix, got shape {matrix.shape}")
    return matrix
