"""Skip-chain CRF-style structured sequence labeler.

A structured-perceptron reimplementation of the SC-CRF comparator of
paper Table IV: per-frame unary potentials plus two pairwise potential
families — adjacent-frame transitions and *skip* transitions between
frames ``d`` apart (capturing gesture-transition statistics over longer
horizons, the core idea of the skip-chain model).

Exact inference in a skip-chain is intractable, so decoding follows the
standard two-pass approximation: a chain-only Viterbi pass, then a second
Viterbi pass whose unaries are augmented with skip potentials evaluated
against the first-pass labels.
"""

from __future__ import annotations

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError, NotFittedError, ShapeError


class SkipChainCRF:
    """Averaged structured perceptron with chain + skip transitions.

    Parameters
    ----------
    n_classes:
        Size of the label set (labels are 0-based class indices).
    skip:
        Skip-edge distance in frames.
    epochs:
        Training passes over the sequence set.
    """

    def __init__(
        self,
        n_classes: int,
        skip: int = 15,
        epochs: int = 3,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_classes < 2:
            raise ConfigurationError("n_classes must be >= 2")
        if skip < 1:
            raise ConfigurationError("skip must be >= 1")
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        self.n_classes = int(n_classes)
        self.skip = int(skip)
        self.epochs = int(epochs)
        self._rng = as_generator(seed)
        self.unary: np.ndarray | None = None  # (n_classes, n_features + 1)
        self.trans: np.ndarray | None = None  # (n_classes, n_classes)
        self.skip_trans: np.ndarray | None = None  # (n_classes, n_classes)
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, sequences: list[np.ndarray], labels: list[np.ndarray]
    ) -> "SkipChainCRF":
        """Train on ``(features, labels)`` sequence pairs.

        ``sequences[i]`` has shape ``(n_i, d)``; ``labels[i]`` shape
        ``(n_i,)`` with 0-based class indices.
        """
        if not sequences or len(sequences) != len(labels):
            raise ShapeError("sequences and labels must be equal-length, non-empty")
        d = sequences[0].shape[1]
        self.unary = np.zeros((self.n_classes, d + 1))
        self.trans = np.zeros((self.n_classes, self.n_classes))
        self.skip_trans = np.zeros((self.n_classes, self.n_classes))
        # Averaged-perceptron accumulators.
        acc_u = np.zeros_like(self.unary)
        acc_t = np.zeros_like(self.trans)
        acc_s = np.zeros_like(self.skip_trans)
        updates = 0

        for _ in range(self.epochs):
            order = self._rng.permutation(len(sequences))
            for idx in order:
                x = _augment(sequences[idx])
                y_true = np.asarray(labels[idx]).astype(int)
                y_pred = self._decode(x)
                if np.array_equal(y_pred, y_true):
                    continue
                self._perceptron_update(x, y_true, +1.0)
                self._perceptron_update(x, y_pred, -1.0)
                acc_u += self.unary
                acc_t += self.trans
                acc_s += self.skip_trans
                updates += 1
        if updates:
            self.unary = acc_u / updates
            self.trans = acc_t / updates
            self.skip_trans = acc_s / updates
        self._fitted = True
        return self

    def _perceptron_update(self, x_aug: np.ndarray, y: np.ndarray, sign: float) -> None:
        assert self.unary is not None and self.trans is not None
        assert self.skip_trans is not None
        n = x_aug.shape[0]
        np.add.at(self.unary, y, sign * x_aug)
        if n > 1:
            np.add.at(self.trans, (y[:-1], y[1:]), sign)
        if n > self.skip:
            np.add.at(self.skip_trans, (y[: -self.skip], y[self.skip :]), sign)

    # ------------------------------------------------------------------
    def predict(self, sequence: np.ndarray) -> np.ndarray:
        """Label a feature sequence of shape ``(n, d)``."""
        if not self._fitted:
            raise NotFittedError("SkipChainCRF must be fitted first")
        return self._decode(_augment(np.asarray(sequence, dtype=float)))

    def _decode(self, x_aug: np.ndarray) -> np.ndarray:
        assert self.unary is not None and self.trans is not None
        assert self.skip_trans is not None
        scores = x_aug @ self.unary.T  # (n, n_classes)
        first_pass = _viterbi(scores, self.trans)
        if x_aug.shape[0] <= self.skip:
            return first_pass
        # Second pass: skip potentials against first-pass labels.
        augmented = scores.copy()
        n = x_aug.shape[0]
        augmented[self.skip :] += self.skip_trans[first_pass[: n - self.skip]]
        return _viterbi(augmented, self.trans)


def _augment(x: np.ndarray) -> np.ndarray:
    if x.ndim != 2:
        raise ShapeError(f"sequence must be (n, d), got {x.shape}")
    return np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)


def _viterbi(unary_scores: np.ndarray, transition: np.ndarray) -> np.ndarray:
    """Max-sum decoding of a linear chain."""
    n, k = unary_scores.shape
    delta = unary_scores[0].copy()
    backpointers = np.empty((n, k), dtype=int)
    for t in range(1, n):
        candidate = delta[:, None] + transition  # (from, to)
        backpointers[t] = np.argmax(candidate, axis=0)
        delta = candidate[backpointers[t], np.arange(k)] + unary_scores[t]
    path = np.empty(n, dtype=int)
    path[-1] = int(np.argmax(delta))
    for t in range(n - 1, 0, -1):
        path[t - 1] = backpointers[t, path[t]]
    return path
