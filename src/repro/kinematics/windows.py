"""Sliding-window extraction over kinematics time series (paper Eq. 2).

Both stages of the monitoring pipeline consume fixed-length windows of
consecutive kinematics frames.  :func:`sliding_windows` builds them in
batch for training; :class:`StreamingWindow` maintains them incrementally
for the online monitor.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

import numpy as np

from ..config import WindowConfig
from ..errors import ShapeError


def sliding_windows(
    frames: np.ndarray, config: WindowConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Extract overlapping windows from a frame sequence.

    Parameters
    ----------
    frames:
        Array of shape ``(n_frames, n_features)``.
    config:
        Window length and stride.

    Returns
    -------
    windows, end_indices
        ``windows`` has shape ``(n_windows, window, n_features)``;
        ``end_indices[i]`` is the index of the *last* frame in window ``i``
        (the frame whose label the window predicts, so the online monitor
        incurs no look-ahead).
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 2:
        raise ShapeError(f"frames must be 2-D (n_frames, n_features), got {frames.shape}")
    n = config.n_windows(frames.shape[0])
    if n == 0:
        empty = np.empty((0, config.window, frames.shape[1]))
        return empty, np.empty(0, dtype=int)
    starts = np.arange(n) * config.stride
    # Gather via advanced indexing; data volumes here are modest so a copy
    # is preferable to the aliasing pitfalls of stride tricks.
    idx = starts[:, None] + np.arange(config.window)[None, :]
    windows = frames[idx]
    end_indices = starts + config.window - 1
    return windows, end_indices


def window_labels(
    labels: np.ndarray, config: WindowConfig, reduce: str = "last"
) -> np.ndarray:
    """Per-window labels aligned with :func:`sliding_windows`.

    ``reduce`` selects how the per-frame labels within a window collapse to
    one label:

    - ``"last"`` — label of the final frame (causal; default, matches the
      online monitor which predicts the current frame).
    - ``"majority"`` — most frequent label in the window.
    - ``"any"`` — for binary 0/1 labels, 1 if any frame is 1 (the paper
      marks a whole gesture unsafe if any of its samples is erroneous).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    n = config.n_windows(labels.shape[0])
    if n == 0:
        return np.empty(0, dtype=labels.dtype)
    starts = np.arange(n) * config.stride
    if reduce == "last":
        return labels[starts + config.window - 1]
    idx = starts[:, None] + np.arange(config.window)[None, :]
    gathered = labels[idx]
    if reduce == "any":
        return (gathered != 0).any(axis=1).astype(labels.dtype)
    if reduce == "majority":
        out = np.empty(n, dtype=labels.dtype)
        for i in range(n):
            values, counts = np.unique(gathered[i], return_counts=True)
            out[i] = values[np.argmax(counts)]
        return out
    raise ShapeError(f"unknown reduce mode {reduce!r}")


class StreamingWindow:
    """Incrementally maintained sliding window for online inference.

    Push frames one at a time with :meth:`push`; once ``window`` frames
    have accumulated every subsequent push (at multiples of ``stride``)
    yields a ready window.

    Example
    -------
    >>> sw = StreamingWindow(WindowConfig(window=3, stride=1), n_features=2)
    >>> for t in range(5):
    ...     ready = sw.push(np.full(2, float(t)))
    """

    def __init__(self, config: WindowConfig, n_features: int) -> None:
        self._config = config
        self._n_features = int(n_features)
        self._buffer: deque[np.ndarray] = deque(maxlen=config.window)
        self._frames_seen = 0
        self._since_last_emit = 0

    @property
    def config(self) -> WindowConfig:
        """The window configuration this stream was built with."""
        return self._config

    @property
    def frames_seen(self) -> int:
        """Total number of frames pushed so far."""
        return self._frames_seen

    def push(self, frame: np.ndarray) -> np.ndarray | None:
        """Append a frame; return the current window when one is due.

        Returns ``None`` while the buffer is warming up or between strides.
        """
        frame = np.asarray(frame, dtype=float)
        if frame.shape != (self._n_features,):
            raise ShapeError(
                f"frame must have shape ({self._n_features},), got {frame.shape}"
            )
        self._buffer.append(frame)
        self._frames_seen += 1
        if len(self._buffer) < self._config.window:
            return None
        if self._frames_seen == self._config.window:
            self._since_last_emit = 0
            return np.stack(self._buffer)
        self._since_last_emit += 1
        if self._since_last_emit >= self._config.stride:
            self._since_last_emit = 0
            return np.stack(self._buffer)
        return None

    def reset(self) -> None:
        """Clear the buffer (e.g. at a trajectory boundary)."""
        self._buffer.clear()
        self._frames_seen = 0
        self._since_last_emit = 0

    def iter_windows(self, frames: np.ndarray) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(end_frame_index, window)`` pairs for a whole sequence.

        Convenience wrapper equivalent to pushing every row of ``frames``.
        """
        frames = np.asarray(frames, dtype=float)
        for t in range(frames.shape[0]):
            ready = self.push(frames[t])
            if ready is not None:
                yield t, ready
