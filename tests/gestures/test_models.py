"""Tests for the published task grammars (paper Figure 3)."""

import numpy as np
import pytest

from repro.gestures.models import (
    BLOCK_TRANSFER_GESTURES,
    SUTURING_GESTURES,
    block_transfer_chain,
    suturing_chain,
)
from repro.gestures.vocabulary import END_TOKEN, START_TOKEN, Gesture


class TestSuturingChain:
    def test_rows_are_distributions(self):
        chain = suturing_chain()
        for state, row in chain.transitions.items():
            assert sum(row.values()) == pytest.approx(1.0), state

    def test_published_probabilities(self):
        chain = suturing_chain()
        # Spot-check values transcribed from Figure 3a.
        assert chain.probability(START_TOKEN, Gesture.G1) == pytest.approx(0.74)
        assert chain.probability(Gesture.G1, Gesture.G2) == pytest.approx(0.97)
        assert chain.probability(Gesture.G2, Gesture.G3) == pytest.approx(0.96)
        assert chain.probability(Gesture.G6, Gesture.G4) == pytest.approx(0.89)
        assert chain.probability(Gesture.G11, END_TOKEN) == pytest.approx(1.0)

    def test_g7_not_in_chain(self):
        assert Gesture.G7 not in suturing_chain().gesture_states()

    def test_gesture_roster(self):
        assert set(suturing_chain().gesture_states()) == set(SUTURING_GESTURES)

    def test_samples_follow_grammar(self):
        chain = suturing_chain()
        rng = np.random.default_rng(5)
        for _ in range(20):
            seq = chain.sample_sequence(rng)
            assert seq[-1] == Gesture.G11  # only G11 reaches End
            assert seq[0] in (Gesture.G1, Gesture.G5, Gesture.G8)


class TestBlockTransferChain:
    def test_deterministic_sequence(self):
        chain = block_transfer_chain()
        seq = chain.sample_sequence(0)
        assert seq == list(BLOCK_TRANSFER_GESTURES)

    def test_all_probabilities_one(self):
        chain = block_transfer_chain()
        for row in chain.transitions.values():
            assert list(row.values()) == [1.0]
