"""Tests for repro.kinematics.windows."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.errors import ConfigurationError, ShapeError
from repro.kinematics.windows import (
    StreamingWindow,
    StreamingWindowBatch,
    sliding_windows,
    sliding_windows_view,
    window_labels,
)


def ramp_frames(n: int, d: int = 2) -> np.ndarray:
    return np.arange(n * d, dtype=float).reshape(n, d)


class TestSlidingWindows:
    def test_shapes_and_ends(self):
        windows, ends = sliding_windows(ramp_frames(10), WindowConfig(4, 2))
        assert windows.shape == (4, 4, 2)
        assert ends.tolist() == [3, 5, 7, 9]

    def test_content(self):
        frames = ramp_frames(6)
        windows, _ = sliding_windows(frames, WindowConfig(3, 1))
        assert np.array_equal(windows[0], frames[0:3])
        assert np.array_equal(windows[-1], frames[3:6])

    def test_too_short_sequence(self):
        windows, ends = sliding_windows(ramp_frames(3), WindowConfig(5, 1))
        assert windows.shape == (0, 5, 2)
        assert ends.size == 0

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            sliding_windows(np.arange(10.0), WindowConfig(3, 1))


class TestSlidingWindowsView:
    @pytest.mark.parametrize("window,stride", [(3, 1), (4, 2), (5, 3), (2, 5)])
    def test_equals_copying_variant(self, window, stride):
        frames = ramp_frames(17, d=3)
        config = WindowConfig(window, stride)
        copied, ends_copied = sliding_windows(frames, config)
        viewed, ends_viewed = sliding_windows_view(frames, config)
        np.testing.assert_array_equal(viewed, copied)
        np.testing.assert_array_equal(ends_viewed, ends_copied)

    def test_is_zero_copy(self):
        frames = ramp_frames(50)
        viewed, _ = sliding_windows_view(frames, WindowConfig(5, 1))
        assert np.shares_memory(viewed, frames)
        # A strided view owns no window-duplicated data: its base buffer
        # is exactly the frames buffer, never n_windows * window rows.
        assert viewed.base is not None
        copied, _ = sliding_windows(frames, WindowConfig(5, 1))
        assert not np.shares_memory(copied, frames)

    def test_no_window_sized_allocation(self):
        import tracemalloc

        frames = ramp_frames(5000, d=8)  # 320 kB; windowed copy ~1.6 MB
        config = WindowConfig(5, 1)
        sliding_windows_view(frames, config)  # warm-up
        tracemalloc.start()
        windows, _ = sliding_windows_view(frames, config)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The view allocates O(n_windows) index arrays but never the
        # (n_windows, window, d) window data itself.
        assert peak < windows.nbytes // 10

    def test_view_is_read_only(self):
        viewed, _ = sliding_windows_view(ramp_frames(10), WindowConfig(3, 1))
        assert not viewed.flags.writeable
        with pytest.raises(ValueError):
            viewed[0, 0, 0] = 1.0

    def test_non_float_input_converts_once(self):
        frames = np.arange(20).reshape(10, 2)  # int64
        viewed, ends = sliding_windows_view(frames, WindowConfig(3, 1))
        copied, _ = sliding_windows(frames, WindowConfig(3, 1))
        assert viewed.dtype == float
        assert not np.shares_memory(viewed, frames)  # the conversion copy
        np.testing.assert_array_equal(viewed, copied)

    def test_too_short_sequence(self):
        viewed, ends = sliding_windows_view(ramp_frames(3), WindowConfig(5, 1))
        assert viewed.shape == (0, 5, 2)
        assert ends.size == 0

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            sliding_windows_view(np.arange(10.0), WindowConfig(3, 1))


class TestWindowLabels:
    def test_last_reduce(self):
        labels = np.array([1, 1, 2, 2, 3, 3])
        out = window_labels(labels, WindowConfig(3, 1), reduce="last")
        assert out.tolist() == [2, 2, 3, 3]

    def test_any_reduce(self):
        labels = np.array([0, 1, 0, 0, 0])
        out = window_labels(labels, WindowConfig(3, 1), reduce="any")
        assert out.tolist() == [1, 1, 0]

    def test_majority_reduce(self):
        labels = np.array([5, 5, 7, 7, 7])
        out = window_labels(labels, WindowConfig(5, 1), reduce="majority")
        assert out.tolist() == [7]

    def test_majority_tie_breaks_to_lowest_label(self):
        # Documented contract: exact count ties resolve to the lowest
        # label, so a half-safe binary window reads safe.
        labels = np.array([1, 2, 1, 2])
        out = window_labels(labels, WindowConfig(2, 1), reduce="majority")
        assert out.tolist() == [1, 1, 1]
        out = window_labels(np.array([0, 1, 1, 0]), WindowConfig(4, 1), "majority")
        assert out.tolist() == [0]
        out = window_labels(np.array([9, 3, 9, 3]), WindowConfig(4, 2), "majority")
        assert out.tolist() == [3]

    def test_majority_with_stride_and_dtype(self):
        labels = np.array([4, 4, 4, 6, 6, 6, 6], dtype=np.int32)
        out = window_labels(labels, WindowConfig(3, 2), reduce="majority")
        assert out.tolist() == [4, 6, 6]
        assert out.dtype == labels.dtype

    def test_alignment_with_windows(self):
        frames = ramp_frames(20)
        labels = np.arange(20)
        cfg = WindowConfig(4, 3)
        _, ends = sliding_windows(frames, cfg)
        out = window_labels(labels, cfg, reduce="last")
        assert np.array_equal(out, labels[ends])

    def test_unknown_reduce(self):
        with pytest.raises(ShapeError):
            window_labels(np.zeros(5, dtype=int), WindowConfig(2, 1), reduce="mean")


class TestStreamingWindow:
    def test_matches_batch_extraction(self):
        frames = ramp_frames(25, 3)
        cfg = WindowConfig(5, 2)
        batch_windows, batch_ends = sliding_windows(frames, cfg)
        stream = StreamingWindow(cfg, n_features=3)
        seen = list(stream.iter_windows(frames))
        assert [t for t, _ in seen] == batch_ends.tolist()
        for (_, win), batch in zip(seen, batch_windows):
            assert np.array_equal(win, batch)

    def test_warmup_returns_none(self):
        stream = StreamingWindow(WindowConfig(4, 1), n_features=1)
        for t in range(3):
            assert stream.push(np.array([float(t)])) is None
        assert stream.push(np.array([3.0])) is not None

    def test_reset(self):
        stream = StreamingWindow(WindowConfig(2, 1), n_features=1)
        stream.push(np.array([0.0]))
        stream.reset()
        assert stream.frames_seen == 0
        assert stream.push(np.array([1.0])) is None

    def test_rejects_wrong_width(self):
        stream = StreamingWindow(WindowConfig(2, 1), n_features=2)
        with pytest.raises(ShapeError):
            stream.push(np.zeros(3))


class TestStreamingWindowBatch:
    def test_lockstep_matches_batch_extraction(self):
        cfg = WindowConfig(4, 2)
        rng = np.random.default_rng(0)
        sequences = [rng.random((15, 3)) for _ in range(3)]
        batch = StreamingWindowBatch(cfg, n_streams=3, n_features=3)
        emitted = {i: [] for i in range(3)}
        for t in range(15):
            frames = np.stack([seq[t] for seq in sequences])
            ready, windows = batch.push(frames)
            for row, i in enumerate(np.flatnonzero(ready)):
                emitted[i].append((t, windows[row]))
        for i, seq in enumerate(sequences):
            expected_windows, expected_ends = sliding_windows(seq, cfg)
            assert [t for t, _ in emitted[i]] == expected_ends.tolist()
            for (_, win), expected in zip(emitted[i], expected_windows):
                assert np.array_equal(win, expected)

    def test_staggered_subsets(self):
        # Stream 1 joins three frames late; readiness masks stay aligned
        # with the pushed subset and each stream keeps its own phase.
        cfg = WindowConfig(3, 1)
        batch = StreamingWindowBatch(cfg, n_streams=2, n_features=1)
        for t in range(3):
            ready, _ = batch.push(np.array([[float(t)]]), np.array([0]))
        assert ready[0]  # stream 0 warmed up
        ready, windows = batch.push(np.array([[3.0], [100.0]]), np.array([0, 1]))
        assert ready.tolist() == [True, False]
        assert np.array_equal(windows[0].ravel(), [1.0, 2.0, 3.0])
        assert batch.frames_seen.tolist() == [4, 1]

    def test_stride_longer_than_window(self):
        cfg = WindowConfig(2, 5)
        batch = StreamingWindowBatch(cfg, n_streams=1, n_features=1)
        emitted = []
        for t in range(12):
            ready, windows = batch.push(np.array([[float(t)]]))
            if ready[0]:
                emitted.append((t, windows[0].ravel().tolist()))
        _, ends = sliding_windows(np.arange(12.0)[:, None], cfg)
        assert [t for t, _ in emitted] == ends.tolist()
        assert emitted[0] == (1, [0.0, 1.0])
        assert emitted[1] == (6, [5.0, 6.0])

    def test_reset_subset(self):
        cfg = WindowConfig(2, 1)
        batch = StreamingWindowBatch(cfg, n_streams=2, n_features=1)
        batch.push(np.zeros((2, 1)))
        batch.push(np.ones((2, 1)))
        batch.reset(np.array([0]))
        assert batch.frames_seen.tolist() == [0, 2]
        ready, _ = batch.push(np.full((2, 1), 2.0))
        assert ready.tolist() == [False, True]

    def test_empty_push(self):
        batch = StreamingWindowBatch(WindowConfig(2, 1), n_streams=2, n_features=3)
        ready, windows = batch.push(np.empty((0, 3)), np.empty(0, dtype=int))
        assert ready.shape == (0,)
        assert windows.shape == (0, 2, 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingWindowBatch(WindowConfig(2, 1), n_streams=0, n_features=1)
        batch = StreamingWindowBatch(WindowConfig(2, 1), n_streams=2, n_features=3)
        with pytest.raises(ShapeError):
            batch.push(np.zeros((2, 4)))
        with pytest.raises(ShapeError):
            batch.push(np.zeros((1, 3)), np.array([5]))
        with pytest.raises(ShapeError):
            batch.push(np.zeros((1, 3)), np.array([[0]]))
        with pytest.raises(ShapeError):
            batch.push(np.zeros((2, 3)), np.array([0, 0]))  # duplicate stream
        # reset() enforces the same stream_ids contract as push().
        with pytest.raises(ShapeError):
            batch.reset(np.array([-1]))
        with pytest.raises(ShapeError):
            batch.reset(np.array([5]))

    def test_windows_are_copies(self):
        batch = StreamingWindowBatch(WindowConfig(2, 1), n_streams=1, n_features=1)
        batch.push(np.array([[1.0]]))
        _, windows = batch.push(np.array([[2.0]]))
        windows[0, 0, 0] = 99.0
        _, again = batch.push(np.array([[3.0]]))
        assert np.array_equal(again[0].ravel(), [2.0, 3.0])
