"""Structural Similarity Index (SSIM) for grayscale images.

Implements the single-scale SSIM of Wang et al. (2004) with a uniform
sliding window, as used by the paper to find the exact frame at which a
block-drop failure happened (Section IV-B).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from ..errors import ShapeError


def ssim(
    image_a: np.ndarray,
    image_b: np.ndarray,
    window: int = 7,
    data_range: float = 1.0,
) -> float:
    """Mean structural similarity between two grayscale images.

    Parameters
    ----------
    image_a, image_b:
        2-D arrays of identical shape with values in ``[0, data_range]``.
    window:
        Side of the uniform filter window (odd, >= 3).
    data_range:
        Dynamic range of the pixel values.

    Returns
    -------
    float
        Mean SSIM over the image, in ``[-1, 1]`` (1 = identical).
    """
    image_a = np.asarray(image_a, dtype=float)
    image_b = np.asarray(image_b, dtype=float)
    if image_a.ndim != 2 or image_a.shape != image_b.shape:
        raise ShapeError(
            f"images must be 2-D with equal shapes, got {image_a.shape} and "
            f"{image_b.shape}"
        )
    if window < 3 or window % 2 == 0:
        raise ShapeError("window must be an odd integer >= 3")
    if min(image_a.shape) < window:
        raise ShapeError(
            f"images of shape {image_a.shape} are smaller than the {window}-px window"
        )
    if data_range <= 0:
        raise ShapeError("data_range must be positive")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_a = uniform_filter(image_a, size=window)
    mu_b = uniform_filter(image_b, size=window)
    mu_aa = uniform_filter(image_a * image_a, size=window)
    mu_bb = uniform_filter(image_b * image_b, size=window)
    mu_ab = uniform_filter(image_a * image_b, size=window)

    var_a = mu_aa - mu_a**2
    var_b = mu_bb - mu_b**2
    cov = mu_ab - mu_a * mu_b

    numerator = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2)
    denominator = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    # Crop the window/2 border where the uniform filter wraps statistics.
    pad = window // 2
    ssim_map = numerator / denominator
    cropped = ssim_map[pad:-pad, pad:-pad] if pad else ssim_map
    return float(cropped.mean())


def ssim_series(
    frames: np.ndarray, reference: np.ndarray, window: int = 7
) -> np.ndarray:
    """SSIM of every frame against a reference image.

    ``frames`` has shape ``(n, height, width)``; returns shape ``(n,)``.
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 3:
        raise ShapeError(f"frames must be 3-D (n, h, w), got {frames.shape}")
    return np.array([ssim(frame, reference, window=window) for frame in frames])
