"""Paper Table IX: per-gesture effect of the pipeline components.

For every gesture class of both tasks: reaction time and F1 under
perfect gesture boundaries, overall gesture-detection jitter and
accuracy, jitter on erroneous occurrences, and reaction time and F1
under the full gesture-specific pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import frames_to_ms
from ..core.reaction import evaluate_timing
from ..eval.metrics import f1_score
from ..eval.reports import format_table
from ..gestures.vocabulary import Gesture
from ..jigsaws.dataset import SurgicalDataset
from .common import (
    ExperimentScale,
    SuturingComponents,
    get_scale,
    make_blocktransfer_dataset,
    train_suturing_fold,
)


@dataclass
class Table9Row:
    """One gesture's timing/accuracy breakdown."""

    task: str
    gesture: Gesture
    perfect_reaction_ms: float
    perfect_f1: float
    avg_jitter_ms: float
    gesture_accuracy_pct: float
    erroneous_jitter_ms: float
    pipeline_reaction_ms: float
    pipeline_f1: float


def _per_gesture_f1(
    pairs: list, gesture: Gesture
) -> float:
    """F1 of unsafe detection restricted to one gesture's frames."""
    y_true: list[np.ndarray] = []
    y_pred: list[np.ndarray] = []
    for trajectory, output in pairs:
        mask = trajectory.gestures == int(gesture)
        if not mask.any():
            continue
        y_true.append(trajectory.unsafe[mask])
        y_pred.append(output.unsafe_flags[mask])
    if not y_true:
        return float("nan")
    true_cat = np.concatenate(y_true)
    pred_cat = np.concatenate(y_pred)
    if true_cat.sum() == 0:
        return float("nan")
    return f1_score(true_cat, pred_cat)


def run_task(
    task: str,
    components: SuturingComponents,
    test: SurgicalDataset,
) -> list[Table9Row]:
    """Per-gesture breakdown of one task's pipeline run."""
    monitor = components.monitor()
    # Bulk engine, reference backend: bit-identical to the looped
    # process(), but one fused batch per stage per demonstration.
    perfect_pairs = [
        (d.trajectory, monitor.process(d.trajectory, use_true_gestures=True, bulk=True))
        for d in test.demonstrations
    ]
    pipeline_pairs = [
        (d.trajectory, monitor.process(d.trajectory, use_true_gestures=False, bulk=True))
        for d in test.demonstrations
    ]
    perfect_timing = evaluate_timing(perfect_pairs)
    pipeline_timing = evaluate_timing(pipeline_pairs)

    gestures = sorted(
        {int(g) for d in test.demonstrations for g in np.unique(d.trajectory.gestures)}
    )
    rows: list[Table9Row] = []
    for number in gestures:
        gesture = Gesture(number)
        rows.append(
            Table9Row(
                task=task,
                gesture=gesture,
                perfect_reaction_ms=perfect_timing.mean_reaction_ms(number),
                perfect_f1=_per_gesture_f1(perfect_pairs, gesture),
                avg_jitter_ms=pipeline_timing.mean_jitter_ms(number),
                gesture_accuracy_pct=100.0 * pipeline_timing.gesture_accuracy(number),
                erroneous_jitter_ms=pipeline_timing.mean_jitter_ms(
                    number, erroneous_only=True
                ),
                pipeline_reaction_ms=pipeline_timing.mean_reaction_ms(number),
                pipeline_f1=_per_gesture_f1(pipeline_pairs, gesture),
            )
        )
    return rows


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    tasks: tuple[str, ...] = ("suturing", "block_transfer"),
) -> list[Table9Row]:
    """Train components and compute the per-gesture breakdown."""
    preset = get_scale(scale)
    rows: list[Table9Row] = []
    for task in tasks:
        if task == "suturing":
            components = train_suturing_fold(preset, held_out_trial, seed=seed)
        else:
            dataset = make_blocktransfer_dataset(preset, seed=seed)
            components = train_suturing_fold(
                preset, held_out_trial, seed=seed, dataset=dataset
            )
        rows += run_task(task, components, components.test)
    return rows


def render(rows: list[Table9Row]) -> str:
    """ASCII rendering of the per-gesture breakdown."""
    def fmt(value: float, signed: bool = False) -> str:
        if np.isnan(value):
            return "n/a"
        return f"{value:+.0f}" if signed else f"{value:.2f}"

    headers = [
        "Task",
        "G",
        "React(ms) PB",
        "F1 PB",
        "Jitter(ms)",
        "GestAcc%",
        "ErrJitter(ms)",
        "React(ms) pipe",
        "F1 pipe",
    ]
    body = [
        [
            r.task,
            str(r.gesture),
            fmt(r.perfect_reaction_ms, signed=True),
            fmt(r.perfect_f1),
            fmt(r.avg_jitter_ms, signed=True),
            "n/a" if np.isnan(r.gesture_accuracy_pct) else f"{r.gesture_accuracy_pct:.1f}",
            fmt(r.erroneous_jitter_ms, signed=True),
            fmt(r.pipeline_reaction_ms, signed=True),
            fmt(r.pipeline_f1),
        ]
        for r in rows
    ]
    return format_table(
        headers,
        body,
        title="Table IX: per-gesture pipeline component effects (PB = perfect boundaries)",
    )
