"""Benchmark: regenerate paper Figure 9 (best/median/worst ROC curves).

Per-demonstration ROC sweep of the context-specific pipeline and the
non-context baseline over held-out Suturing demonstrations.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figure9


def test_figure9_roc_curves(benchmark, scale):
    result = run_once(benchmark, lambda: figure9.run(scale=scale, seed=0))
    print()
    print(figure9.render(result))

    ctx = result.aucs("context-specific")
    base = result.aucs("non-context-specific")
    # Best >= median >= worst within each setup, by construction.
    assert ctx[0] >= ctx[1] >= ctx[2]
    assert base[0] >= base[1] >= base[2]
    # The paper's visual claim: the context-specific family dominates
    # overall (compare best curves; allow slack at benchmark scale).
    assert ctx[0] > base[2]
    assert all(0.0 <= v <= 1.0 for v in ctx + base)
