"""Batch-size-invariant matrix contraction for inference.

BLAS dispatches matmuls to different kernels (GEMV for single rows, GEMM
tile/tail kernels elsewhere) whose accumulation orders round differently,
so the same sample can produce a result that differs in the last ulp
depending on how many other samples share its batch.  The online serving
engine promises the opposite: a window scored alone is bit-identical to
the same window scored inside any batch (the stream/service parity suite
asserts this exactly).

``np.einsum`` with the default ``optimize=False`` never calls BLAS — it
accumulates each output element independently over the contracted axis in
a fixed order — so its per-row results cannot depend on batch size or row
position.  Inference forwards route through it; training forwards keep
the (faster) BLAS path, where bit-reproducibility across batch layouts is
not needed.

The offline ``process()`` path must share this contraction — it is one
side of the asserted stream/process/service equality — so every
inference matmul pays the einsum cost (roughly 4-8x a BLAS GEMM at this
repo's layer sizes, a few percent of end-to-end pipeline time, which is
dominated by Python-level orchestration).  If a future workload needs
BLAS-speed bulk scoring without the parity guarantee, gate this helper
rather than bypassing it ad hoc.
"""

from __future__ import annotations

import numpy as np


def contract(a: np.ndarray, w: np.ndarray, training: bool) -> np.ndarray:
    """``a @ w`` over the last axis of ``a``: BLAS when training, the
    batch-invariant einsum path at inference."""
    if training:
        return a @ w
    return np.einsum("...j,jk->...k", a, w)
