"""Tests for the inference backends (repro.nn.backends).

The compiled plan's contract: float64 agreement with the reference
backend within atol=1e-6 (folding the scaler and swapping einsum for
BLAS moves results by ~1e-15, never more), float32 agreement at float32
resolution, and **zero array allocations** in a steady-state forward —
every buffer preallocated at compile time and reused across calls.
"""

import tracemalloc

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.nn.backends import (
    BACKEND_NAMES,
    CompiledBackend,
    ReferenceBackend,
    make_backend,
    validate_backend_name,
)

#: Over ten warm forwards, tracemalloc's peak may grow by a few KB of
#: view/Python objects (measured ~2.6 KB); any real per-call array temp
#: at the tested batch size — including numpy's internal buffered-loop
#: transfer buffers (8-64 KB) the op set is designed to avoid — clears
#: this threshold, so it separates the two regimes cleanly.
ALLOC_SLACK_BYTES = 16 * 1024


def build(layers, T, F, loss, seed=0, scaler_seed=0):
    """A built+compiled model with a scaler fitted on seeded data."""
    model = nn.Sequential(layers, seed=seed)
    model.build((T, F))
    model.compile(loss, nn.Adam(1e-3))
    rng = np.random.default_rng(scaler_seed)
    scaler = nn.StandardScaler().fit(rng.standard_normal((64, T, F)) * 2.0 + 1.0)
    return scaler, model


def conv_binary(T=5, F=7, padding="same"):
    return build(
        [
            nn.Conv1D(6, 3, padding=padding),
            nn.ReLU(),
            nn.BatchNorm(),
            nn.GlobalAveragePool1D(),
            nn.Dense(5),
            nn.ReLU(),
            nn.Dropout(0.4),
            nn.Dense(1),
        ],
        T,
        F,
        nn.SigmoidBinaryCrossEntropy(),
    )


def lstm_multiclass(T=6, F=5):
    return build(
        [
            nn.LSTM(7, return_sequences=True),
            nn.LSTM(4),
            nn.BatchNorm(),
            nn.Dense(6),
            nn.ReLU(),
            nn.Dense(9),
        ],
        T,
        F,
        nn.SoftmaxCrossEntropy(),
    )


class TestFactory:
    def test_unknown_name_rejected(self):
        scaler, model = conv_binary()
        with pytest.raises(ConfigurationError, match="unknown inference backend"):
            make_backend("turbo", scaler, model)
        with pytest.raises(ConfigurationError):
            validate_backend_name("turbo")

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_every_name_builds(self, name):
        scaler, model = conv_binary()
        backend = make_backend(name, scaler, model, max_batch=4)
        assert backend.name == name
        x = np.random.default_rng(0).standard_normal((3, 5, 7))
        assert backend.predict_proba(x).shape[0] == 3

    def test_compiled_requires_fitted_scaler(self):
        scaler, model = conv_binary()
        with pytest.raises(NotFittedError, match="fitted scaler"):
            CompiledBackend(nn.StandardScaler(), model)

    def test_compiled_requires_compiled_model(self):
        scaler, model = conv_binary()
        model.loss = None
        with pytest.raises(NotFittedError, match="compiled model"):
            CompiledBackend(scaler, model)

    def test_compiled_rejects_width_mismatch(self):
        scaler, model = conv_binary(F=7)
        rng = np.random.default_rng(0)
        wrong = nn.StandardScaler().fit(rng.standard_normal((8, 5, 9)))
        with pytest.raises(ShapeError):
            CompiledBackend(wrong, model)

    def test_compiled_rejects_bad_input_shape(self):
        scaler, model = conv_binary()
        backend = CompiledBackend(scaler, model, max_batch=4)
        with pytest.raises(ShapeError):
            backend.predict_proba(np.zeros((2, 4, 7)))


class TestCompiledParity:
    """Folded plans match the reference far inside the 1e-6 contract."""

    CASES = {
        "conv-same": lambda: conv_binary(padding="same"),
        "conv-valid": lambda: build(
            [
                nn.Conv1D(4, 3, padding="valid"),
                nn.Tanh(),
                nn.MaxPool1D(2),
                nn.Flatten(),
                nn.Dense(3),
            ],
            9,
            4,
            nn.SoftmaxCrossEntropy(),
        ),
        "stacked-lstm": lstm_multiclass,
        "dense-first": lambda: build(
            [nn.Dense(8), nn.ReLU(), nn.GlobalAveragePool1D(), nn.Dense(1)],
            4,
            6,
            nn.SigmoidBinaryCrossEntropy(),
        ),
        # First layer not affine-foldable: the plan falls back to a
        # preallocated standardisation stage.
        "nonfoldable-first": lambda: build(
            [nn.Sigmoid(), nn.Flatten(), nn.Dense(3)],
            3,
            4,
            nn.SoftmaxCrossEntropy(),
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_float64_matches_reference(self, case):
        scaler, model = self.CASES[case]()
        T, F = model.layers[0].input_shape
        rng = np.random.default_rng(7)
        x = rng.standard_normal((11, T, F)) * 3.0 + 0.5
        ref = ReferenceBackend(scaler, model)
        comp = CompiledBackend(scaler, model, max_batch=16)
        np.testing.assert_allclose(
            comp.predict_proba(x), ref.predict_proba(x), atol=1e-9
        )
        assert np.array_equal(comp.predict(x), ref.predict(x))

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_float32_matches_at_f32_resolution(self, case):
        scaler, model = self.CASES[case]()
        T, F = model.layers[0].input_shape
        rng = np.random.default_rng(8)
        x = rng.standard_normal((6, T, F))
        ref = ReferenceBackend(scaler, model)
        f32 = CompiledBackend(scaler, model, max_batch=8, dtype=np.float32)
        np.testing.assert_allclose(
            f32.predict_proba(x), ref.predict_proba(x), atol=5e-4
        )

    def test_batchnorm_running_stats_are_folded(self):
        """Non-trivial running statistics (post-training state) survive
        the scale-shift fold."""
        scaler, model = conv_binary()
        bn = next(x for x in model.layers if isinstance(x, nn.BatchNorm))
        rng = np.random.default_rng(3)
        bn.running_mean[...] = rng.standard_normal(bn.running_mean.shape)
        bn.running_var[...] = rng.random(bn.running_var.shape) + 0.25
        x = rng.standard_normal((5, 5, 7))
        ref = ReferenceBackend(scaler, model)
        comp = CompiledBackend(scaler, model, max_batch=8)
        np.testing.assert_allclose(
            comp.predict_proba(x), ref.predict_proba(x), atol=1e-9
        )

    def test_oversize_batches_are_chunked(self):
        scaler, model = lstm_multiclass()
        rng = np.random.default_rng(9)
        x = rng.standard_normal((19, 6, 5))
        ref = ReferenceBackend(scaler, model)
        comp = CompiledBackend(scaler, model, max_batch=4)
        np.testing.assert_allclose(
            comp.predict_proba(x), ref.predict_proba(x), atol=1e-9
        )
        assert np.array_equal(comp.predict(x), ref.predict(x))

    def test_empty_batch(self):
        scaler, model = conv_binary()
        comp = CompiledBackend(scaler, model, max_batch=4)
        assert comp.predict_proba(np.empty((0, 5, 7))).shape[0] == 0

    def test_saturating_preactivations_stay_finite(self):
        """The clipped in-place sigmoid saturates instead of overflowing."""
        scaler, model = conv_binary()
        comp = CompiledBackend(scaler, model, max_batch=4)
        x = np.full((2, 5, 7), 1e4)
        with np.errstate(over="raise"):
            probs = comp.predict_proba(x)
        assert np.isfinite(probs).all()
        assert ((probs >= 0.0) & (probs <= 1.0)).all()


class TestScratchReuse:
    """The acceptance criterion: steady-state forwards allocate no
    array data — outputs alias the plan's preallocated scratch and
    repeated calls reuse the identical memory."""

    @pytest.mark.parametrize(
        "factory", [conv_binary, lstm_multiclass], ids=["conv", "lstm"]
    )
    def test_outputs_alias_preallocated_scratch(self, factory):
        scaler, model = factory()
        T, F = model.layers[0].input_shape
        comp = CompiledBackend(scaler, model, max_batch=64)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, T, F))
        out1 = comp.predict_proba(x)
        assert any(np.shares_memory(out1, b) for b in comp.scratch_arrays())
        ptr = out1.__array_interface__["data"][0]
        out2 = comp.predict_proba(rng.standard_normal((64, T, F)))
        assert out2.__array_interface__["data"][0] == ptr
        cls1 = comp.predict(x)
        assert any(np.shares_memory(cls1, b) for b in comp.scratch_arrays())

    @pytest.mark.parametrize(
        "case", ["stacked-lstm", "conv-same", "conv-valid"]
    )
    def test_forward_allocates_no_array_data(self, case):
        """tracemalloc sees numpy data allocations; warm forwards must
        stay within small-object (view) noise, far below any layer temp
        — across the LSTM, padded-conv and trimming-MaxPool op sets."""
        scaler, model = TestCompiledParity.CASES[case]()
        T, F = model.layers[0].input_shape
        comp = CompiledBackend(scaler, model, max_batch=64)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, T, F))
        comp.predict_proba(x)
        comp.predict(x)  # warm both paths
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for _ in range(10):
                comp.predict_proba(x)
                comp.predict(x)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        assert peak - before < ALLOC_SLACK_BYTES

    def test_reference_backend_is_todays_path(self):
        """The reference backend is bit-identical to calling the scaler
        and model directly (the pre-backend tick engine)."""
        scaler, model = lstm_multiclass()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((7, 6, 5))
        ref = ReferenceBackend(scaler, model)
        expected = model.predict_proba(scaler.transform(x))
        assert np.array_equal(ref.predict_proba(x), expected)
        assert np.array_equal(
            ref.predict(x), model.predict(scaler.transform(x))
        )


class TestBulkMethods:
    """forward_bulk/score_bulk: same answers, one fused plan execution."""

    def test_reference_delegates_to_predict(self):
        scaler, model = lstm_multiclass()
        ref = ReferenceBackend(scaler, model)
        x = np.random.default_rng(3).standard_normal((9, 6, 5))
        assert np.array_equal(ref.forward_bulk(x), ref.predict_proba(x))
        assert np.array_equal(ref.score_bulk(x), ref.predict(x))

    @pytest.mark.parametrize("case", ["conv-same", "stacked-lstm"])
    def test_compiled_bulk_matches_chunked(self, case):
        """An oversize batch through the grown bulk plan equals the
        max_batch-chunked serving path bit for bit (same float ops,
        batch-invariant op set)."""
        scaler, model = TestCompiledParity.CASES[case]()
        T, F = model.layers[0].input_shape
        comp = CompiledBackend(scaler, model, max_batch=4)
        x = np.random.default_rng(4).standard_normal((37, T, F))
        assert np.array_equal(comp.forward_bulk(x), comp.predict_proba(x))
        assert np.array_equal(comp.score_bulk(x), comp.predict(x))

    def test_bulk_plan_grows_geometrically_and_is_reused(self):
        scaler, model = conv_binary()
        comp = CompiledBackend(scaler, model, max_batch=4)
        x = np.random.default_rng(5).standard_normal((37, 5, 7))
        comp.forward_bulk(x)
        plan = comp._bulk
        assert plan is not None
        assert plan.max_batch == 64  # 4 doubled up past 37
        comp.score_bulk(x)  # same size: plan reused, not recompiled
        assert comp._bulk is plan
        comp.forward_bulk(
            np.random.default_rng(6).standard_normal((100, 5, 7))
        )
        assert comp._bulk is not plan  # grown
        assert comp._bulk.max_batch == 128

    def test_small_batches_use_serving_plan(self):
        scaler, model = conv_binary()
        comp = CompiledBackend(scaler, model, max_batch=8)
        x = np.random.default_rng(7).standard_normal((5, 5, 7))
        out = comp.forward_bulk(x)
        assert comp._bulk is None  # within max_batch: no twin compiled
        assert np.array_equal(out, comp.predict_proba(x))

    def test_empty_batch(self):
        scaler, model = conv_binary()
        comp = CompiledBackend(scaler, model, max_batch=4)
        assert comp.forward_bulk(np.empty((0, 5, 7))).shape[0] == 0
        assert comp.score_bulk(np.empty((0, 5, 7))).shape == (0,)
