"""Element-wise activation layers (ReLU, Tanh, Sigmoid).

Softmax is fused into :class:`repro.nn.losses.SoftmaxCrossEntropy` (and
sigmoid into :class:`repro.nn.losses.SigmoidBinaryCrossEntropy`) for the
usual numerically-stable combined gradient; the standalone layers here are
for hidden activations.
"""

from __future__ import annotations

import numpy as np

from .base import Layer


class _Elementwise(Layer):
    """Shared scaffolding for parameter-free element-wise layers."""

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        del rng
        self._input_shape = tuple(input_shape)
        self._output_shape = tuple(input_shape)
        self.built = True

    def _fn(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _grad(self, cached: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __init__(self) -> None:
        super().__init__()
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        out = self._fn(np.asarray(x, dtype=float))
        if training:
            self._cache = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        grad = self._grad(self._cache, grad_output)
        self._cache = None
        return grad


class ReLU(_Elementwise):
    """Rectified linear unit, ``max(0, x)``."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def _grad(self, cached: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (cached > 0.0)


class Tanh(_Elementwise):
    """Hyperbolic tangent."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def _grad(self, cached: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - cached**2)


class Sigmoid(_Elementwise):
    """Logistic sigmoid."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return sigmoid(x)

    def _grad(self, cached: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * cached * (1.0 - cached)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic sigmoid."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)
