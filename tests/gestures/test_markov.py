"""Tests for repro.gestures.markov."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GestureError
from repro.gestures.markov import MarkovChain
from repro.gestures.vocabulary import END_TOKEN, START_TOKEN, Gesture


def two_state_chain() -> MarkovChain:
    return MarkovChain(
        {
            START_TOKEN: {1: 1.0},
            1: {2: 0.7, END_TOKEN: 0.3},
            2: {1: 0.5, END_TOKEN: 0.5},
        }
    )


class TestConstruction:
    def test_rejects_unnormalised_rows(self):
        with pytest.raises(ConfigurationError):
            MarkovChain({START_TOKEN: {1: 0.5, 2: 0.2}})

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MarkovChain({START_TOKEN: {1: 1.5, 2: -0.5}})


class TestFit:
    def test_probabilities_from_counts(self):
        chain = MarkovChain.fit([[1, 2], [1, 2], [1, 3]])
        assert chain.probability(START_TOKEN, 1) == pytest.approx(1.0)
        assert chain.probability(1, 2) == pytest.approx(2 / 3)
        assert chain.probability(1, 3) == pytest.approx(1 / 3)
        assert chain.probability(2, END_TOKEN) == pytest.approx(1.0)

    def test_smoothing_gives_unseen_mass(self):
        chain = MarkovChain.fit([[1, 2]], smoothing=0.1)
        assert chain.probability(1, 1) > 0.0
        row = chain.successors(1)
        assert sum(row.values()) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MarkovChain.fit([])
        with pytest.raises(ConfigurationError):
            MarkovChain.fit([[]])


class TestQueries:
    def test_states_order(self):
        chain = two_state_chain()
        assert chain.states() == [START_TOKEN, 1, 2, END_TOKEN]

    def test_transition_matrix_rows_stochastic(self):
        matrix, order = two_state_chain().transition_matrix()
        for i, state in enumerate(order):
            if state == END_TOKEN:
                continue
            assert matrix[i].sum() == pytest.approx(1.0)

    def test_log_likelihood(self):
        chain = two_state_chain()
        ll = chain.sequence_log_likelihood([1, 2])
        assert ll == pytest.approx(np.log(1.0) + np.log(0.7) + np.log(0.5))

    def test_log_likelihood_unseen_is_neg_inf(self):
        assert two_state_chain().sequence_log_likelihood([2]) == float("-inf")

    def test_networkx_export(self):
        graph = two_state_chain().to_networkx()
        assert graph.has_edge(1, 2)
        assert graph.edges[1, 2]["probability"] == pytest.approx(0.7)


class TestSampling:
    def test_sample_terminates_and_is_valid(self):
        chain = two_state_chain()
        rng = np.random.default_rng(0)
        for _ in range(50):
            seq = chain.sample_sequence(rng)
            assert seq
            assert chain.sequence_log_likelihood([int(g) for g in seq]) > float("-inf")
            assert all(isinstance(g, Gesture) for g in seq)

    def test_sample_deterministic_with_seed(self):
        chain = two_state_chain()
        a = chain.sample_sequence(123)
        b = chain.sample_sequence(123)
        assert a == b

    def test_absorbing_loop_raises(self):
        chain = MarkovChain({START_TOKEN: {1: 1.0}, 1: {1: 1.0}})
        with pytest.raises(GestureError):
            chain.sample_sequence(0, max_length=20)

    def test_missing_transitions_raise(self):
        chain = MarkovChain({START_TOKEN: {1: 1.0}})
        with pytest.raises(GestureError):
            chain.sample_sequence(0)
