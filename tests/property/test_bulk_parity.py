"""Property test: the bulk engine matches the looped pipeline.

Sweeps randomised monitors — conv / lstm error-classifier families,
random hidden widths, random window lengths and strides for both stages,
random trajectory lengths (including shorter-than-one-window edges) —
and asserts :meth:`SafetyMonitor.process(bulk=True)` reproduces the
looped ``process()``:

- **bit-identical** gestures, scores and flags under the ``reference``
  backend (the committed contract of :mod:`repro.serving.bulk`);
- exact gestures/flags and ``atol=1e-6`` scores under ``compiled``
  (loose ``1e-3`` for ``compiled-f32``), the compiled-plan contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WindowConfig
from repro.serving import (
    BulkScorer,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

SCORE_ATOL = {"compiled": 1e-6, "compiled-f32": 1e-3}


@given(
    architecture=st.sampled_from(["conv", "lstm"]),
    hidden=st.lists(st.integers(2, 10), min_size=1, max_size=2).map(tuple),
    gesture_window=st.integers(3, 8),
    error_window=st.integers(3, 8),
    error_stride=st.integers(1, 3),
    n_frames=st.sampled_from([2, 5, 37, 120]),
    use_true_gestures=st.booleans(),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_bulk_matches_looped_process(
    architecture,
    hidden,
    gesture_window,
    error_window,
    error_stride,
    n_frames,
    use_true_gestures,
    seed,
):
    monitor = make_synthetic_monitor(
        n_features=6,
        seed=seed,
        gesture_window=WindowConfig(gesture_window, 1),
        error_window=WindowConfig(error_window, error_stride),
        architecture=architecture,
        hidden=hidden,
    )
    trajectory = make_random_walk_trajectory(n_frames, n_features=6, seed=seed)

    looped = monitor.process(trajectory, use_true_gestures=use_true_gestures)

    reference = BulkScorer(monitor, backend="reference").score(
        trajectory, use_true_gestures=use_true_gestures
    )
    np.testing.assert_array_equal(reference.gestures, looped.gestures)
    np.testing.assert_array_equal(reference.unsafe_scores, looped.unsafe_scores)
    np.testing.assert_array_equal(reference.unsafe_flags, looped.unsafe_flags)
    assert reference.metadata["engine"] == "bulk"
    assert reference.metadata["backend"] == "reference"

    for backend, atol in SCORE_ATOL.items():
        bulk = BulkScorer(monitor, backend=backend).score(
            trajectory, use_true_gestures=use_true_gestures
        )
        np.testing.assert_array_equal(bulk.gestures, looped.gestures)
        np.testing.assert_allclose(
            bulk.unsafe_scores, looped.unsafe_scores, atol=atol
        )
        # Flags are exact except where a score sits within the backend's
        # float tolerance of the threshold (where >= legitimately flips).
        decisive = np.abs(looped.unsafe_scores - monitor.threshold) > atol
        np.testing.assert_array_equal(
            bulk.unsafe_flags[decisive], looped.unsafe_flags[decisive]
        )
