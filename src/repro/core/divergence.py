"""Erroneous-gesture distribution analysis (paper Figure 5).

The paper models erroneous-gesture kinematics as samples from per-class
distributions estimated with Gaussian kernels and compares classes with
the Jensen-Shannon divergence, finding high divergence between the
frequently-occurring classes (G2, G3, G4, G6) — evidence that errors are
context-specific.

High-dimensional KDE is ill-posed, so (as is standard) the kinematics are
first projected onto their top principal components; densities are
evaluated on a shared grid over the projected space.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import gaussian_kde

from ..errors import DatasetError
from ..gestures.vocabulary import Gesture
from ..jigsaws.dataset import WindowedData

#: Classes with fewer samples than this are skipped (the paper "was not
#: able to compute meaningful distributions due to small sample sizes").
MIN_SAMPLES = 50


def _project(samples: np.ndarray, components: np.ndarray, mean: np.ndarray) -> np.ndarray:
    return (samples - mean) @ components.T


def _pca(data: np.ndarray, n_components: int) -> tuple[np.ndarray, np.ndarray]:
    """Principal axes (rows) and mean of ``data``."""
    mean = data.mean(axis=0)
    centred = data - mean
    # SVD of the (n, d) matrix; right singular vectors are the axes.
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    return vt[:n_components], mean


def js_divergence_matrix(
    data: WindowedData,
    n_components: int = 2,
    grid_points: int = 24,
    min_samples: int = MIN_SAMPLES,
    max_samples_per_class: int = 2000,
    rng_seed: int = 0,
) -> tuple[np.ndarray, list[Gesture]]:
    """Pairwise JS divergence between erroneous-gesture distributions.

    Parameters
    ----------
    data:
        Windowed dataset with gesture and unsafe labels; only unsafe
        windows participate.
    n_components:
        PCA dimensionality for the KDE (1 or 2 keep the grid tractable).
    grid_points:
        Grid resolution per dimension for density evaluation.

    Returns
    -------
    (matrix, gestures)
        ``matrix[i, j]`` is the JSD (nats, in [0, ln 2]) between the
        erroneous distributions of ``gestures[i]`` and ``gestures[j]``.
    """
    if n_components not in (1, 2):
        raise DatasetError("n_components must be 1 or 2 for gridded KDE")
    unsafe_mask = data.unsafe == 1
    if not unsafe_mask.any():
        raise DatasetError("no erroneous windows in the dataset")
    # Flatten windows to per-sample vectors.
    x_all = data.x[unsafe_mask].reshape(int(unsafe_mask.sum()), -1)
    gestures_all = data.gesture[unsafe_mask]

    rng = np.random.default_rng(rng_seed)
    by_class: dict[Gesture, np.ndarray] = {}
    for class_idx in np.unique(gestures_all):
        rows = x_all[gestures_all == class_idx]
        if rows.shape[0] < min_samples:
            continue
        if rows.shape[0] > max_samples_per_class:
            rows = rows[rng.permutation(rows.shape[0])[:max_samples_per_class]]
        by_class[Gesture.from_class_index(int(class_idx))] = rows
    if len(by_class) < 2:
        raise DatasetError("need at least two classes with enough samples")

    pooled = np.concatenate(list(by_class.values()), axis=0)
    components, mean = _pca(pooled, n_components)
    projected = {
        g: _project(rows, components, mean) for g, rows in by_class.items()
    }

    # Shared evaluation grid covering all classes.
    stacked = np.concatenate(list(projected.values()), axis=0)
    lo = stacked.min(axis=0) - 1e-6
    hi = stacked.max(axis=0) + 1e-6
    axes = [np.linspace(lo[d], hi[d], grid_points) for d in range(n_components)]
    if n_components == 1:
        grid = axes[0][None, :]
    else:
        mesh = np.meshgrid(*axes, indexing="ij")
        grid = np.stack([m.reshape(-1) for m in mesh])

    densities: dict[Gesture, np.ndarray] = {}
    for gesture, rows in projected.items():
        kde = gaussian_kde(rows.T)
        density = kde(grid)
        total = density.sum()
        densities[gesture] = density / total if total > 0 else density

    order = sorted(densities, key=int)
    n = len(order)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            jsd = _js_divergence(densities[order[i]], densities[order[j]])
            matrix[i, j] = matrix[j, i] = jsd
    return matrix, order


def _js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence between two discrete distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    m = 0.5 * (p + q)
    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], 1e-300))))


def pairwise_divergence_report(
    matrix: np.ndarray, gestures: list[Gesture]
) -> str:
    """Render the divergence matrix as an ASCII heat table."""
    from ..eval.reports import format_table

    headers = ["EG", *[str(g) for g in gestures]]
    rows = []
    for i, g in enumerate(gestures):
        rows.append([str(g), *[f"{matrix[i, j]:.3f}" for j in range(len(gestures))]])
    return format_table(headers, rows, title="Pairwise JS divergence (nats)")
