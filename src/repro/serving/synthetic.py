"""Deterministic synthetic monitors for serving tests and benchmarks.

Training the two pipeline stages takes CPU-minutes, which is far too slow
for parity tests and throughput benchmarks that only exercise *inference*.
:func:`make_synthetic_monitor` builds a fully functional
:class:`~repro.core.pipeline.SafetyMonitor` with seeded random weights and
scalers fitted on seeded random data — deterministic, instant, and
architecturally identical to a trained monitor.  The gesture stage emits
varied (meaningless) gesture predictions and each present error
classifier produces varied probabilities, which is exactly what parity
and throughput measurements need.
"""

from __future__ import annotations

import numpy as np

from ..config import MonitorConfig, WindowConfig
from ..core.error_classifiers import (
    ErrorClassifier,
    ErrorClassifierConfig,
    ErrorClassifierLibrary,
)
from ..core.gesture_classifier import GestureClassifier, GestureClassifierConfig
from ..core.pipeline import SafetyMonitor
from ..gestures.vocabulary import N_GESTURE_CLASSES, Gesture


def make_synthetic_monitor(
    n_features: int = 38,
    seed: int = 0,
    gesture_window: WindowConfig | None = None,
    error_window: WindowConfig | None = None,
    missing_gestures: tuple[int, ...] = (5, 10, 11),
    threshold: float = 0.5,
    architecture: str = "conv",
    hidden: tuple[int, ...] = (8,),
    gesture_lstm_units: tuple[int, ...] = (16,),
    gesture_dense_units: int = 16,
) -> SafetyMonitor:
    """Build an untrained-but-functional monitor with seeded weights.

    Parameters
    ----------
    n_features:
        Kinematics feature width (38 matches the JIGSAWS two-arm subset
        used throughout the repo).
    seed:
        Controls every weight initialisation and scaler fit; equal seeds
        give bit-identical monitors.
    gesture_window / error_window:
        Window configurations of the two stages (default 5/1 each).
    missing_gestures:
        Gesture numbers deliberately left without an error classifier, to
        exercise the constant-safe (score 0.0) path.
    architecture / hidden:
        Error-stage model family (``"conv"`` or ``"lstm"``) and its
        hidden widths — the property suites sweep these to exercise the
        serving engine across every architecture it can host.
    gesture_lstm_units / gesture_dense_units:
        Gesture-stage stacked-LSTM widths and head width.  The defaults
        stay CPU-instant for parity tests; the bulk-scoring benchmark
        passes the paper's full-scale ``(512, 96)`` / ``64`` so the
        measured inference cost matches a deployed monitor.
    """
    gesture_window = gesture_window or WindowConfig(5, 1)
    error_window = error_window or WindowConfig(5, 1)
    rng = np.random.default_rng(seed)

    gesture_config = GestureClassifierConfig(
        lstm_units=gesture_lstm_units,
        dense_units=gesture_dense_units,
        window=gesture_window,
        dropout=0.0,
    )
    classifier = GestureClassifier(gesture_config, seed=seed)
    classifier.model = classifier._build_model()
    classifier.model.build((gesture_window.window, n_features))
    classifier.scaler.fit(
        rng.standard_normal((64, gesture_window.window, n_features))
    )
    classifier._fitted = True

    error_config = ErrorClassifierConfig(
        architecture=architecture, hidden=hidden, dense_units=8, dropout=0.0
    )
    library = ErrorClassifierLibrary(error_config, seed=seed)
    for number in range(1, N_GESTURE_CLASSES + 1):
        gesture = Gesture(number)
        if number in missing_gestures:
            library.constant_gestures.add(gesture)
            continue
        clf = ErrorClassifier(gesture, error_config, seed=seed * 1000 + number)
        clf.model = clf._build_model(positive_weight=1.0)
        clf.model.build((error_window.window, n_features))
        clf.scaler.fit(rng.standard_normal((64, error_window.window, n_features)))
        clf._fitted = True
        library.classifiers[gesture] = clf

    return SafetyMonitor(
        classifier,
        library,
        MonitorConfig(gesture_window=gesture_window, error_window=error_window),
        threshold=threshold,
    )


def make_random_walk_trajectory(
    n_frames: int,
    n_features: int = 38,
    seed: int = 0,
    frame_rate_hz: float = 30.0,
):
    """A seeded random-walk kinematics trajectory with dummy labels.

    The walk keeps frames in the synthetic scalers' operating range while
    still drifting enough that gesture predictions and unsafe scores vary
    over time.
    """
    from ..kinematics.trajectory import Trajectory

    rng = np.random.default_rng(seed)
    steps = rng.standard_normal((n_frames, n_features))
    frames = np.cumsum(steps, axis=0) * 0.1 + rng.standard_normal(n_features)
    gestures = np.repeat(
        rng.integers(1, N_GESTURE_CLASSES + 1, size=max(1, n_frames // 30 + 1)),
        30,
    )[:n_frames]
    unsafe = (rng.random(n_frames) < 0.1).astype(int)
    return Trajectory(
        frames=frames,
        frame_rate_hz=frame_rate_hz,
        gestures=gestures,
        unsafe=unsafe,
        metadata={"synthetic": True, "seed": seed},
    )
