"""Pure-Python Raven II / Block Transfer simulator (ROS Gazebo substitute).

The paper evaluates technical faults on a ROS Gazebo simulation of the
Raven II performing the FLS Block Transfer task (Section IV-B).  This
package reproduces that experimental substrate:

- :mod:`~repro.simulation.workspace` — dry-lab geometry: table, block,
  receptacle;
- :mod:`~repro.simulation.motion` — minimum-jerk waypoint trajectories;
- :mod:`~repro.simulation.teleop` — operator profiles adding human tremor
  and timing variation to commanded trajectories;
- :mod:`~repro.simulation.physics` — grasp/attach/release rules deciding
  physical outcomes (block-drop, drop-off failure);
- :mod:`~repro.simulation.schema` — the simulator's 277-feature state
  vector layout;
- :mod:`~repro.simulation.robot` — the simulator core: replays commanded
  trajectories, applies physics, logs kinematics;
- :mod:`~repro.simulation.camera` — virtual top-down camera producing
  synchronised frames for the vision-based labeler;
- :mod:`~repro.simulation.blocktransfer` — the Block Transfer task script
  and demonstration generator.
"""

from .blocktransfer import BlockTransferTask, generate_demonstration
from .camera import VirtualCamera
from .motion import minimum_jerk_profile, minimum_jerk_segment, waypoint_trajectory
from .physics import GrasperPhysics, PhysicsOutcome
from .robot import RavenSimulator, SimulationResult
from .schema import RAVEN_FEATURE_BLOCKS, RAVEN_STATE_WIDTH, RavenStateLayout
from .teleop import OperatorProfile
from .workspace import Block, Receptacle, Workspace

__all__ = [
    "Block",
    "BlockTransferTask",
    "GrasperPhysics",
    "OperatorProfile",
    "PhysicsOutcome",
    "RAVEN_FEATURE_BLOCKS",
    "RAVEN_STATE_WIDTH",
    "RavenSimulator",
    "RavenStateLayout",
    "Receptacle",
    "SimulationResult",
    "VirtualCamera",
    "Workspace",
    "generate_demonstration",
    "minimum_jerk_profile",
    "minimum_jerk_segment",
    "waypoint_trajectory",
]
