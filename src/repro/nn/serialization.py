"""Model persistence as ``.npz`` archives (no pickling of code).

The archive stores, per layer: the class name, its ``get_config()``
key/values and its parameter arrays, plus the model input shape — enough
to rebuild the architecture and restore weights exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from .layers import (
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1D,
    LSTM,
    MaxPool1D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .model import Sequential

_LAYER_REGISTRY = {
    cls.__name__: cls
    for cls in (
        BatchNorm,
        Conv1D,
        Dense,
        Dropout,
        Flatten,
        GlobalAveragePool1D,
        LSTM,
        MaxPool1D,
        ReLU,
        Sigmoid,
        Tanh,
    )
}


def save_model(model: Sequential, path: str | Path) -> None:
    """Serialise a built :class:`Sequential` model to ``path`` (.npz)."""
    if not model.built:
        raise NotFittedError("only built models can be saved")
    arrays: dict[str, np.ndarray] = {}
    spec: list[dict] = []
    for i, layer in enumerate(model.layers):
        spec.append({"class": type(layer).__name__, "config": layer.get_config()})
        for key, value in layer.params.items():
            arrays[f"layer{i}.{key}"] = value
        if isinstance(layer, BatchNorm):
            assert layer.running_mean is not None and layer.running_var is not None
            arrays[f"layer{i}.running_mean"] = layer.running_mean
            arrays[f"layer{i}.running_var"] = layer.running_var
    meta = {
        "layers": spec,
        "input_shape": list(model.layers[0].input_shape),
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(Path(path), **arrays)


def load_model(path: str | Path) -> Sequential:
    """Rebuild a model saved by :func:`save_model`.

    The returned model is built (weights restored) but not compiled; call
    :meth:`~repro.nn.model.Sequential.compile` to continue training.
    """
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        layers = []
        for entry in meta["layers"]:
            cls = _LAYER_REGISTRY.get(entry["class"])
            if cls is None:
                raise ConfigurationError(f"unknown layer class {entry['class']!r}")
            layers.append(cls(**entry["config"]))
        model = Sequential(layers, seed=0)
        model.build(tuple(meta["input_shape"]))
        for i, layer in enumerate(model.layers):
            for key in layer.params:
                layer.params[key][...] = archive[f"layer{i}.{key}"]
            if isinstance(layer, BatchNorm):
                assert layer.running_mean is not None and layer.running_var is not None
                layer.running_mean[...] = archive[f"layer{i}.running_mean"]
                layer.running_var[...] = archive[f"layer{i}.running_var"]
    return model
