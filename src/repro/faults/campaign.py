"""The Table III fault-injection campaign.

Reproduces the paper's 651-injection sweep over grasper-angle targets,
Cartesian deviations and injection durations on fault-free Block Transfer
demonstrations, counting the resulting block-drop and drop-off failures
per cell.

The grid mirrors Table III exactly: seven grasper-angle bins, each probed
under two duration conditions (grasper window 0.55-0.70 of the trajectory
paired with Cartesian window 0.50-0.60, and grasper 0.65-0.90 paired with
Cartesian 0.70-0.90), with two Cartesian deviation bins in each condition
and the paper's per-cell injection counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError
from ..simulation.blocktransfer import BlockTransferTask
from ..simulation.physics import GrasperPhysics
from ..simulation.robot import CommandedTrajectory, RavenSimulator, SimulationResult
from ..simulation.teleop import DEFAULT_OPERATORS, OperatorProfile
from ..simulation.workspace import Workspace
from .injector import FaultInjector
from .outcomes import outcome_error_category
from .types import (
    CARTESIAN_UNIT_SCALE,
    CartesianFault,
    FaultSpec,
    FaultWindow,
    GrasperAngleFault,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.pipeline import MonitorOutput, SafetyMonitor


@dataclass(frozen=True)
class CampaignCell:
    """One row of the Table III grid.

    Deviations are given in the paper's units (3,000-65,000); they are
    scaled by :data:`~repro.faults.types.CARTESIAN_UNIT_SCALE` when the
    fault is materialised.
    """

    grasper_rad: tuple[float, float]
    grasper_window: tuple[float, float]
    cartesian_dev: tuple[float, float]
    cartesian_window: tuple[float, float]
    n_injections: int

    def __post_init__(self) -> None:
        if self.n_injections < 1:
            raise ConfigurationError("n_injections must be >= 1")


def _condition_cells(
    grasper_rad: tuple[float, float],
    n_short: tuple[int, int],
    n_long: tuple[int, int] = (16, 16),
) -> list[CampaignCell]:
    """The four cells of one grasper-angle bin (two conditions x two
    Cartesian deviation bins), with the paper's injection counts."""
    short_g, long_g = (0.55, 0.70), (0.65, 0.90)
    short_c, long_c = (0.50, 0.60), (0.70, 0.90)
    low_dev, high_dev = (3000.0, 6000.0), (6000.0, 65000.0)
    return [
        CampaignCell(grasper_rad, short_g, low_dev, short_c, n_short[0]),
        CampaignCell(grasper_rad, short_g, high_dev, short_c, n_short[1]),
        CampaignCell(grasper_rad, long_g, low_dev, long_c, n_long[0]),
        CampaignCell(grasper_rad, long_g, high_dev, long_c, n_long[1]),
    ]


#: The full Table III grid: 651 injections.
TABLE_III_GRID: tuple[CampaignCell, ...] = tuple(
    cell
    for bin_cells in (
        _condition_cells((0.30, 0.40), (16, 8)),
        _condition_cells((0.50, 0.60), (16, 8)),
        _condition_cells((0.70, 0.80), (16, 8)),
        _condition_cells((0.90, 1.00), (58, 50)),
        _condition_cells((1.10, 1.20), (47, 74)),
        _condition_cells((1.30, 1.40), (41, 61)),
        _condition_cells((1.50, 1.60), (7, 17)),
    )
    for cell in bin_cells
)


@dataclass
class CellResult:
    """Aggregated outcomes of one campaign cell."""

    cell: CampaignCell
    n_injections: int = 0
    block_drops: int = 0
    dropoff_failures: int = 0
    wrong_positions: int = 0
    never_grasped: int = 0
    #: Injections the safety monitor flagged (any unsafe frame); stays 0
    #: unless :func:`run_campaign` was given a ``monitor``.
    detected: int = 0

    @property
    def n_errors(self) -> int:
        """Total injections that manifested as errors."""
        return (
            self.block_drops
            + self.dropoff_failures
            + self.wrong_positions
            + self.never_grasped
        )

    def record(self, category: str | None) -> None:
        """Account one injection outcome."""
        self.n_injections += 1
        if category == "block_drop":
            self.block_drops += 1
        elif category == "dropoff_failure":
            self.dropoff_failures += 1
        elif category == "wrong_position":
            self.wrong_positions += 1
        elif category == "never_grasped":
            self.never_grasped += 1


@dataclass
class CampaignResult:
    """Everything a campaign run produces."""

    cells: list[CellResult]
    #: Simulation results of every faulty trial, in injection order.
    results: list[SimulationResult] = field(default_factory=list)
    #: Monitor outputs per injection (in injection order) when the
    #: campaign ran with a ``monitor``; empty otherwise.
    monitor_outputs: list[MonitorOutput] = field(default_factory=list)

    @property
    def total_injections(self) -> int:
        """Number of injections executed."""
        return sum(c.n_injections for c in self.cells)

    @property
    def total_block_drops(self) -> int:
        """Total block-drop failures."""
        return sum(c.block_drops for c in self.cells)

    @property
    def total_dropoff_failures(self) -> int:
        """Total drop-off failures."""
        return sum(c.dropoff_failures for c in self.cells)

    @property
    def total_detected(self) -> int:
        """Total injections flagged by the monitor (0 without one)."""
        return sum(c.detected for c in self.cells)


def run_campaign(
    grid: tuple[CampaignCell, ...] = TABLE_III_GRID,
    base_demos: list[CommandedTrajectory] | None = None,
    scale: float = 1.0,
    sample_rate_hz: float = 50.0,
    workspace: Workspace | None = None,
    physics: GrasperPhysics | None = None,
    rng: int | np.random.Generator | None = 0,
    keep_results: bool = False,
    monitor: SafetyMonitor | None = None,
    monitor_backend: str = "reference",
    monitor_bulk: bool = True,
) -> CampaignResult:
    """Execute a fault-injection campaign.

    Parameters
    ----------
    grid:
        Campaign cells; defaults to the full Table III grid.
    base_demos:
        Fault-free demonstrations to perturb; generated when omitted (the
        paper collected 20 fault-free demos from 2 subjects).
    scale:
        Multiplier on per-cell injection counts (``0.25`` runs a quarter
        campaign — useful for tests; minimum 1 injection per cell).
    sample_rate_hz:
        Simulator kinematics rate for generated demos.
    keep_results:
        Retain every :class:`SimulationResult` (needed when the campaign
        output feeds dataset construction; costs memory).
    monitor:
        Optional trained :class:`~repro.core.pipeline.SafetyMonitor`:
        every faulty trial's kinematics trajectory is scored inline
        (``CellResult.detected`` counts trials with any unsafe flag;
        per-trial outputs land in ``CampaignResult.monitor_outputs``).
        Scoring runs through the bulk offline engine
        (:mod:`repro.serving.bulk`) by default — one fused batch per
        stage per trial, sharing compiled plans across the whole
        campaign; ``monitor_bulk=False`` falls back to the looped
        ``process()``, which produces identical detections (bit-identical
        scores under the default ``"reference"`` backend).
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    scorer = None
    if monitor is not None and monitor_bulk:
        from ..serving.bulk import BulkScorer

        scorer = BulkScorer(monitor, backend=monitor_backend)
    elif monitor is not None:
        from ..nn.backends import validate_backend_name

        if validate_backend_name(monitor_backend) != "reference":
            raise ConfigurationError(
                "the looped campaign path always scores with the "
                "reference float operations; compiled backends require "
                "monitor_bulk=True"
            )
    gen = as_generator(rng)
    workspace = workspace or Workspace()
    if base_demos is None:
        base_demos = generate_fault_free_demos(
            n_demos=20,
            workspace=workspace,
            sample_rate_hz=sample_rate_hz,
            rng=gen,
        )
    if not base_demos:
        raise ConfigurationError("base_demos must not be empty")

    injector = FaultInjector()
    simulator = RavenSimulator(
        workspace=workspace, physics=physics, camera=None, rng=gen
    )
    cells: list[CellResult] = []
    all_results: list[SimulationResult] = []
    monitor_outputs: list[MonitorOutput] = []
    demo_cursor = 0
    for cell in grid:
        cell_result = CellResult(cell)
        n = max(1, int(round(cell.n_injections * scale)))
        for _ in range(n):
            base = base_demos[demo_cursor % len(base_demos)]
            demo_cursor += 1
            spec = sample_fault_spec(cell, gen)
            faulty = injector.inject(base, spec)
            result = simulator.run(faulty, record_video=False)
            cell_result.record(outcome_error_category(result.outcome))
            if monitor is not None:
                trajectory = result.kinematics_trajectory()
                if scorer is not None:
                    output = scorer.score(trajectory)
                else:
                    output = monitor.process(trajectory)
                cell_result.detected += int(output.unsafe_flags.any())
                monitor_outputs.append(output)
            if keep_results:
                all_results.append(result)
        cells.append(cell_result)
    return CampaignResult(
        cells=cells, results=all_results, monitor_outputs=monitor_outputs
    )


def sample_fault_spec(cell: CampaignCell, rng: np.random.Generator) -> FaultSpec:
    """Draw one concrete fault from a cell's parameter ranges."""
    g_lo, g_hi = cell.grasper_rad
    target = float(rng.uniform(g_lo, g_hi))
    gw_lo, gw_hi = cell.grasper_window
    # Jitter the window edges slightly inside the stated range.
    g_start = float(rng.uniform(gw_lo, gw_lo + 0.03))
    g_end = float(rng.uniform(gw_hi - 0.015, gw_hi))
    c_lo, c_hi = cell.cartesian_dev
    deviation = float(rng.uniform(c_lo, c_hi)) * CARTESIAN_UNIT_SCALE
    cw_lo, cw_hi = cell.cartesian_window
    c_start = float(rng.uniform(cw_lo, cw_lo + 0.03))
    c_end = float(rng.uniform(cw_hi - 0.015, cw_hi))
    return FaultSpec(
        grasper=GrasperAngleFault(target, FaultWindow(g_start, g_end)),
        cartesian=CartesianFault(deviation, FaultWindow(c_start, c_end)),
    )


def generate_fault_free_demos(
    n_demos: int = 20,
    operators: tuple[OperatorProfile, ...] = DEFAULT_OPERATORS,
    workspace: Workspace | None = None,
    sample_rate_hz: float = 50.0,
    rng: int | np.random.Generator | None = 0,
) -> list[CommandedTrajectory]:
    """Plan ``n_demos`` fault-free Block Transfer command streams."""
    if n_demos < 1:
        raise ConfigurationError("n_demos must be >= 1")
    gen = as_generator(rng)
    workspace = workspace or Workspace()
    task = BlockTransferTask(workspace=workspace, sample_rate_hz=sample_rate_hz)
    demos = []
    for i in range(n_demos):
        operator = operators[i % len(operators)]
        commands = task.plan(operator, gen)
        commands.metadata["demo_index"] = i
        demos.append(commands)
    return demos
