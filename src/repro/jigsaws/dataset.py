"""Demonstration containers, LOSO splits and windowed tensor extraction.

The paper trains and evaluates with the Leave-One-SuperTrial-Out (LOSO)
protocol of the JIGSAWS benchmark: supertrial ``i`` groups the i-th trial
of every subject; models train on four supertrials and test on the held
out one, averaged over the five folds (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..config import WindowConfig
from ..errors import DatasetError
from ..gestures.vocabulary import Gesture, N_GESTURE_CLASSES
from ..kinematics.trajectory import Trajectory
from ..kinematics.windows import sliding_windows, window_labels


@dataclass
class Demonstration:
    """One annotated task execution."""

    trajectory: Trajectory
    subject: str
    trial: int
    task: str

    def __post_init__(self) -> None:
        if self.trajectory.gestures is None:
            raise DatasetError("demonstrations require gesture labels")

    @property
    def n_frames(self) -> int:
        """Number of kinematics frames."""
        return self.trajectory.n_frames

    def gesture_sequence(self) -> list[int]:
        """Gesture numbers in order of occurrence (deduplicated runs)."""
        return [g for g, _, _ in self.trajectory.gesture_segments()]


@dataclass
class WindowedData:
    """Windowed tensors extracted from a set of demonstrations.

    Attributes
    ----------
    x:
        Windows, shape ``(n, window, n_features)``.
    gesture:
        Per-window gesture class indices (0-based), shape ``(n,)``.
    unsafe:
        Per-window unsafe labels (0/1), shape ``(n,)``; all zeros when
        the demonstrations carry no unsafe annotation.
    demo_index:
        Which demonstration each window came from.
    end_frame:
        Index of the window's final frame within its demonstration.
    """

    x: np.ndarray
    gesture: np.ndarray
    unsafe: np.ndarray
    demo_index: np.ndarray
    end_frame: np.ndarray

    @property
    def n_windows(self) -> int:
        """Number of extracted windows."""
        return int(self.x.shape[0])

    def subset(self, mask: np.ndarray) -> "WindowedData":
        """Row-subset of every tensor."""
        return WindowedData(
            x=self.x[mask],
            gesture=self.gesture[mask],
            unsafe=self.unsafe[mask],
            demo_index=self.demo_index[mask],
            end_frame=self.end_frame[mask],
        )

    def for_gesture(self, gesture: Gesture) -> "WindowedData":
        """Windows whose label is ``gesture``."""
        return self.subset(self.gesture == gesture.class_index)


@dataclass
class SurgicalDataset:
    """A collection of demonstrations of one task."""

    demonstrations: list[Demonstration]
    task: str = "suturing"

    def __post_init__(self) -> None:
        if not self.demonstrations:
            raise DatasetError("a dataset needs at least one demonstration")

    def __len__(self) -> int:
        return len(self.demonstrations)

    def __iter__(self) -> Iterator[Demonstration]:
        return iter(self.demonstrations)

    @property
    def n_frames(self) -> int:
        """Total kinematics frames across all demonstrations."""
        return sum(d.n_frames for d in self.demonstrations)

    def gesture_counts(self) -> dict[int, int]:
        """Frames per gesture number across the dataset."""
        counts: dict[int, int] = {}
        for demo in self.demonstrations:
            assert demo.trajectory.gestures is not None
            values, freq = np.unique(demo.trajectory.gestures, return_counts=True)
            for v, f in zip(values, freq):
                counts[int(v)] = counts.get(int(v), 0) + int(f)
        return counts

    def erroneous_gesture_counts(self) -> tuple[int, int]:
        """(total gesture occurrences, erroneous occurrences)."""
        total = 0
        erroneous = 0
        for demo in self.demonstrations:
            traj = demo.trajectory
            if traj.unsafe is None:
                total += len(traj.gesture_segments())
                continue
            for _, start, end in traj.gesture_segments():
                total += 1
                if traj.unsafe[start:end].any():
                    erroneous += 1
        return total, erroneous

    # ------------------------------------------------------------------
    def windows(
        self,
        config: WindowConfig,
        feature_indices: np.ndarray | None = None,
        unsafe_reduce: str = "last",
    ) -> WindowedData:
        """Extract sliding windows from every demonstration.

        Windows never straddle demonstration boundaries.  Gesture labels
        use the window's final frame (causal); unsafe labels use
        ``unsafe_reduce`` (see :func:`repro.kinematics.window_labels`).
        """
        xs, gs, us, ds, es = [], [], [], [], []
        for i, demo in enumerate(self.demonstrations):
            traj = demo.trajectory
            frames = traj.frames
            if feature_indices is not None:
                frames = frames[:, feature_indices]
            win, ends = sliding_windows(frames, config)
            if win.shape[0] == 0:
                continue
            assert traj.gestures is not None
            gesture = window_labels(traj.gestures, config, reduce="last")
            if traj.unsafe is not None:
                unsafe = window_labels(traj.unsafe, config, reduce=unsafe_reduce)
            else:
                unsafe = np.zeros(win.shape[0], dtype=int)
            xs.append(win)
            gs.append(gesture)
            us.append(unsafe)
            ds.append(np.full(win.shape[0], i))
            es.append(ends)
        if not xs:
            raise DatasetError("no demonstration long enough for the window config")
        gesture_numbers = np.concatenate(gs)
        if gesture_numbers.min() < 1 or gesture_numbers.max() > N_GESTURE_CLASSES:
            raise DatasetError("gesture labels outside the G1..G15 vocabulary")
        return WindowedData(
            x=np.concatenate(xs, axis=0),
            gesture=gesture_numbers - 1,  # 0-based class indices
            unsafe=np.concatenate(us),
            demo_index=np.concatenate(ds),
            end_frame=np.concatenate(es),
        )

    # ------------------------------------------------------------------
    def split_by_trials(
        self, held_out_trial: int
    ) -> tuple["SurgicalDataset", "SurgicalDataset"]:
        """LOSO fold: train on all trials except ``held_out_trial``."""
        train = [d for d in self.demonstrations if d.trial != held_out_trial]
        test = [d for d in self.demonstrations if d.trial == held_out_trial]
        if not train or not test:
            raise DatasetError(
                f"supertrial {held_out_trial} would leave an empty split"
            )
        return (
            SurgicalDataset(train, task=self.task),
            SurgicalDataset(test, task=self.task),
        )

    def supertrials(self) -> list[int]:
        """Sorted distinct trial indices present in the dataset."""
        return sorted({d.trial for d in self.demonstrations})


def loso_splits(
    dataset: SurgicalDataset,
) -> Iterator[tuple[int, SurgicalDataset, SurgicalDataset]]:
    """Iterate the Leave-One-SuperTrial-Out folds of a dataset.

    Yields ``(supertrial, train, test)`` for every supertrial.
    """
    for trial in dataset.supertrials():
        train, test = dataset.split_by_trials(trial)
        yield trial, train, test
