"""Tests for the zero-copy shared-memory data plane.

Ring-protocol unit tests — wrap-around with pad records, ring-full
back-pressure, bit-exact frame and event round trips — plus the fleet
lifecycle contract: every segment the router creates is unlinked on
``close()``, on a worker crash, and on a downsizing ``resize()``, so
``/dev/shm`` never leaks.  The pipe data plane stays available as
``data_plane="pipe"`` and must remain event-identical to shm.
"""

import os
import signal
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.serving import (
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)
from repro.serving.shm import EVENT_DTYPE, ShmRing, write_frames_blocking

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


def make_fleet(n_sessions, base_seed=100, frames=40, step=5):
    return {
        f"proc-{i}": make_random_walk_trajectory(
            frames + step * i, n_features=N_FEATURES, seed=base_seed + i
        )
        for i in range(n_sessions)
    }


def event_key(event):
    return (event.session_id, event.frame_index, event.gesture, event.score, event.flag)


def segment_exists(name):
    """Is the named shared-memory segment still linked?"""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def ring_names(service):
    """``{shard_index: [segment names]}`` for a live fleet."""
    names = {}
    for index, handle in service._shards.items():
        names[index] = [
            ring.name
            for ring in (handle.frame_ring, handle.event_ring)
            if ring is not None
        ]
    return names


class TestShmRing:
    def test_frames_roundtrip(self):
        rng = np.random.default_rng(0)
        frames = rng.normal(size=(7, N_FEATURES))
        with ShmRing(4096) as ring:
            assert ring.try_write_frames(5, frames)
            route, out = ring.read_frames()
            assert route == 5
            assert out.dtype == np.float64
            np.testing.assert_array_equal(out, frames)
            assert ring.read_frames() is None

    def test_read_copy_survives_ring_reuse(self):
        """read_frames returns a copy, not a view into the ring."""
        with ShmRing(512) as ring:
            first = np.full((2, 4), 1.0)
            assert ring.try_write_frames(1, first)
            _, out = ring.read_frames()
            for _ in range(16):  # drive the write cursor over the old slot
                assert ring.try_write_frames(2, np.full((2, 4), 9.0))
                ring.read_frames()
            np.testing.assert_array_equal(out, first)

    def test_events_roundtrip_bit_exact(self):
        records = np.zeros(3, dtype=EVENT_DTYPE)
        records["route"] = [1, 2, 2**40]
        records["frame"] = [10, 11, 12]
        records["gesture"] = [-1, 4, 7]
        records["score"] = [0.1, np.pi, 1e-300]
        records["flags"] = [1, 0, 1]
        with ShmRing(4096) as ring:
            assert ring.try_write_events(records)
            out = ring.read_events()
            assert out.dtype == EVENT_DTYPE
            assert np.array_equal(out, records)
            assert ring.read_events() is None

    def test_events_require_event_dtype(self):
        with ShmRing(4096) as ring:
            with pytest.raises(ConfigurationError):
                ring.try_write_events(np.zeros(3, dtype=np.float64))

    def test_wrap_preserves_every_record(self):
        """Hundreds of variable-size records through a small ring: the
        pad-on-wrap protocol must never corrupt or reorder a payload."""
        with ShmRing(1024) as ring:
            pending = []
            sent = 0
            received = []
            while sent < 300 or pending:
                if sent < 300:
                    rows = sent % 5 + 1
                    frames = np.full((rows, 4), float(sent))
                    if ring.try_write_frames(sent, frames):
                        pending.append((sent, frames))
                        sent += 1
                        continue
                route, out = ring.read_frames()
                expected_route, expected = pending.pop(0)
                assert route == expected_route
                np.testing.assert_array_equal(out, expected)
                received.append(route)
            assert received == list(range(300))
            assert ring.read_frames() is None

    def test_ring_full_backpressure_and_recovery(self):
        frames = np.zeros((1, 8))
        with ShmRing(256) as ring:
            writes = 0
            while ring.try_write_frames(writes, frames):
                writes += 1
            assert writes >= 2  # capacity sanity: the ring held something
            assert not ring.try_write_frames(writes, frames)
            assert ring.read_frames() is not None  # free one slot ...
            assert ring.try_write_frames(writes, frames)  # ... write resumes

    def test_oversize_record_refused(self):
        with ShmRing(1024) as ring:
            with pytest.raises(ConfigurationError, match="half the ring"):
                ring.try_write_frames(0, np.zeros((100, 100)))

    def test_attach_requires_name(self):
        with pytest.raises(ConfigurationError):
            ShmRing(attach=True)

    def test_attach_sees_writes_and_never_unlinks(self):
        frames = np.arange(12.0).reshape(3, 4)
        owner = ShmRing(1024)
        try:
            reader = ShmRing(name=owner.name, attach=True)
            assert owner.try_write_frames(3, frames)
            route, out = reader.read_frames()
            assert route == 3
            np.testing.assert_array_equal(out, frames)
            reader.close()  # a non-owner close must not unlink
            assert segment_exists(owner.name)
        finally:
            owner.destroy()
        assert not segment_exists(owner.name)

    def test_blocking_write_chunks_payload_larger_than_ring(self):
        """A frame block bigger than the whole ring goes through in
        chunks while a consumer drains concurrently."""
        rng = np.random.default_rng(1)
        frames = rng.normal(size=(500, 4))
        collected = []

        with ShmRing(2048) as ring:
            def consume():
                rows = 0
                while rows < 500:
                    record = ring.read_frames()
                    if record is None:
                        time.sleep(0.0005)
                        continue
                    route, chunk = record
                    assert route == 9
                    collected.append(chunk)
                    rows += chunk.shape[0]

            consumer = threading.Thread(target=consume)
            consumer.start()
            write_frames_blocking(
                ring, 9, frames, alive=lambda: True, timeout_s=30.0, who="test"
            )
            consumer.join(timeout=30.0)
            assert not consumer.is_alive()
        np.testing.assert_array_equal(np.concatenate(collected), frames)

    def test_blocking_write_dead_peer(self):
        frames = np.zeros((1, 8))
        with ShmRing(256) as ring:
            while ring.try_write_frames(0, frames):
                pass
            with pytest.raises(WorkerError):
                write_frames_blocking(
                    ring, 0, frames, alive=lambda: False, timeout_s=30.0, who="shard 0"
                )

    def test_blocking_write_timeout(self):
        frames = np.zeros((1, 8))
        with ShmRing(256) as ring:
            while ring.try_write_frames(0, frames):
                pass
            start = time.monotonic()
            with pytest.raises(WorkerError):
                write_frames_blocking(
                    ring, 0, frames, alive=lambda: True, timeout_s=0.05, who="shard 0"
                )
            assert time.monotonic() - start < 5.0


class TestFleetSegmentLifecycle:
    def test_segments_unlinked_after_close(self, monitor):
        service = ShardedMonitorService(monitor, n_shards=2, max_sessions_per_shard=4)
        names = ring_names(service)
        flat = [name for per_shard in names.values() for name in per_shard]
        assert len(flat) == 4  # frame + event ring per shard
        assert all(segment_exists(name) for name in flat)
        service.close()
        assert not any(segment_exists(name) for name in flat)

    def test_segments_unlinked_after_worker_crash(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=4
        ) as service:
            names = ring_names(service)
            victim = service._shards[0].process
            os.kill(victim.pid, signal.SIGKILL)
            for _ in range(500):
                if not victim.is_alive():
                    break
                time.sleep(0.01)
            else:
                pytest.fail("SIGKILLed worker did not exit")
            service.tick()  # crash detection runs the unlink path
            assert not any(segment_exists(name) for name in names[0])
            assert all(segment_exists(name) for name in names[1])
        assert not any(
            segment_exists(name) for per_shard in names.values() for name in per_shard
        )

    def test_segments_unlinked_after_resize_down(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=4, max_sessions_per_shard=4
        ) as service:
            before = {
                name for per_shard in ring_names(service).values() for name in per_shard
            }
            assert len(before) == 8
            service.resize(1)
            after = {
                name for per_shard in ring_names(service).values() for name in per_shard
            }
            assert len(after) == 2
            assert after < before
            assert all(segment_exists(name) for name in after)
            assert not any(segment_exists(name) for name in before - after)
        assert not any(segment_exists(name) for name in before)

    def test_pipe_mode_creates_no_segments(self, monitor):
        fleet = make_fleet(3)
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=4, data_plane="pipe"
        ) as service:
            assert ring_names(service) == {0: [], 1: []}
            for session_id, trajectory in fleet.items():
                service.open_session(session_id)
                service.feed(session_id, trajectory.frames)
            assert service.drain()  # the pipe plane still serves events

    def test_invalid_data_plane_rejected(self, monitor):
        with pytest.raises(ConfigurationError):
            ShardedMonitorService(monitor, n_shards=1, data_plane="carrier-pigeon")

    def test_pipe_and_shm_planes_are_event_identical(self, monitor):
        fleet = make_fleet(5, base_seed=400)
        runs = {}
        for plane in ("shm", "pipe"):
            with ShardedMonitorService(
                monitor,
                n_shards=2,
                max_sessions_per_shard=4,
                data_plane=plane,
            ) as service:
                for session_id, trajectory in fleet.items():
                    service.open_session(session_id)
                    service.feed(session_id, trajectory.frames)
                events = service.drain()
                results = {sid: service.close_session(sid) for sid in fleet}
            runs[plane] = (events, results)
        shm_events, shm_results = runs["shm"]
        pipe_events, pipe_results = runs["pipe"]
        assert [event_key(e) for e in shm_events] == [
            event_key(e) for e in pipe_events
        ]
        for session_id in fleet:
            assert np.array_equal(
                shm_results[session_id].gestures, pipe_results[session_id].gestures
            )
            assert np.array_equal(
                shm_results[session_id].unsafe_scores,
                pipe_results[session_id].unsafe_scores,
            )
