"""A sharded fleet: procedures spread across worker processes.

Scales the multi-stream demo past one process: a
:class:`repro.serving.ShardedMonitorService` fans staggered procedure
sessions out over 4 worker shards (consistent-hash placement on the
session id), ticks them to completion — live-resizing the fleet
mid-stream (sessions migrate between workers with their pending frames
and window state, nothing drops) — and prints where every procedure
landed plus per-shard throughput and tick-latency accounting: the
operator's view described in ``docs/serving.md``.

The monitor uses deterministic synthetic weights so the demo starts
instantly; every worker process bootstraps from the same in-memory
snapshot (``monitor_to_bytes``), so a procedure produces bit-identical
events regardless of which shard serves it.

Run:  PYTHONPATH=src python examples/sharded_fleet.py [--shards 4]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.serving import (
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    monitor_to_bytes,
)

N_FEATURES = 38


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--procedures", type=int, default=12)
    parser.add_argument("--frames", type=int, default=300)
    args = parser.parse_args()
    if min(args.shards, args.procedures, args.frames) < 1:
        parser.error("--shards/--procedures/--frames must all be >= 1")

    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
    snapshot = monitor_to_bytes(monitor)
    print(
        f"Spawning {args.shards} shard worker(s) from one "
        f"{len(snapshot) / 1024:.0f} KiB monitor snapshot ..."
    )

    rng = np.random.default_rng(42)
    # Staggered schedule: procedure i enters the OR at `start_tick`.
    schedule = {
        f"OR-{i + 1:02d}": {
            "start_tick": int(rng.integers(0, 100)),
            "trajectory": make_random_walk_trajectory(
                args.frames + int(rng.integers(0, 120)),
                n_features=N_FEATURES,
                seed=100 + i,
            ),
        }
        for i in range(args.procedures)
    }

    start = time.perf_counter()
    with ShardedMonitorService(
        monitor_bytes=snapshot,
        n_shards=args.shards,
        max_sessions_per_shard=args.procedures,  # headroom for hash skew
    ) as service:
        alerts: dict[str, int] = {}
        tick = 0
        pending_admissions = dict(schedule)
        while pending_admissions or service.has_pending:
            for session_id, proc in list(pending_admissions.items()):
                if proc["start_tick"] <= tick:
                    service.open_session(session_id)
                    service.feed(session_id, proc["trajectory"].frames)
                    del pending_admissions[session_id]
                    print(
                        f"  tick {tick:4d}: {session_id} started on "
                        f"shard {service.shard_of(session_id)}"
                    )
            for event in service.tick():
                if event.flag:
                    alerts[event.session_id] = alerts.get(event.session_id, 0) + 1
            tick += 1
            # Live elasticity, mid-stream: grow the fleet while the
            # morning admissions pile in, shrink it as the load tails
            # off.  Running procedures migrate — no frame is dropped.
            if tick == 120:
                summary = service.resize(args.shards + 2)
                print(
                    f"  tick {tick:4d}: resized {summary['from']} -> "
                    f"{summary['to']} shards ({summary['migrated']} live "
                    f"session(s) migrated)"
                )
            if tick == 300 and service.n_shards > args.shards:
                summary = service.resize(args.shards)
                print(
                    f"  tick {tick:4d}: resized {summary['from']} -> "
                    f"{summary['to']} shards ({summary['migrated']} live "
                    f"session(s) migrated)"
                )
        elapsed = time.perf_counter() - start

        print("\nPer-procedure placement and alerts:")
        total_frames = 0
        for session_id in sorted(schedule):
            shard = service.shard_of(session_id)
            result = service.close_session(session_id)
            total_frames += result.n_frames
            print(
                f"  {session_id} -> shard {shard}: {result.n_frames} frames, "
                f"{alerts.get(session_id, 0)} alert frames"
            )

        print("\nPer-shard throughput:")
        shard_stats = service.shard_stats()
        for index in sorted(shard_stats):
            stats = shard_stats[index]
            fps = stats.frames_processed / elapsed if elapsed > 0 else 0.0
            print(
                f"  shard {index}: {stats.frames_processed:6d} frames in "
                f"{stats.n_ticks:5d} ticks — {fps:8.0f} frames/s, "
                f"tick p50 {stats.percentile_ms(50):.2f} ms, "
                f"p99 {stats.percentile_ms(99):.2f} ms"
            )
        aggregate = service.stats()
        print(
            f"\nFleet: {aggregate.frames_processed} frames over "
            f"{service.n_shards} shards in {elapsed:.2f} s "
            f"({total_frames / elapsed:.0f} frames/s aggregate)"
        )


if __name__ == "__main__":
    main()
