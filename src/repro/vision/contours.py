"""Connected-component analysis and centroid tracking.

Substitutes OpenCV's contour detection in the paper's labeling pipeline:
the block's mask is reduced to its largest connected component, whose
centroid is tracked through the trajectory (Section IV-B, Figure 7c).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import ShapeError


def connected_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """Label 8-connected components of a binary mask.

    Returns ``(labels, n_components)`` where ``labels`` assigns 0 to the
    background and 1..n to components.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ShapeError(f"mask must be 2-D, got shape {mask.shape}")
    structure = np.ones((3, 3), dtype=int)
    labels, n = ndimage.label(mask, structure=structure)
    return labels, int(n)


def largest_component_centroid(mask: np.ndarray) -> tuple[float, float] | None:
    """Centroid ``(row, col)`` of the largest component, or ``None``.

    Returns ``None`` when the mask is empty (e.g. the block is occluded
    or has left the camera's view).
    """
    labels, n = connected_components(mask)
    if n == 0:
        return None
    sizes = ndimage.sum_labels(np.ones_like(labels), labels, index=range(1, n + 1))
    biggest = int(np.argmax(sizes)) + 1
    rows, cols = np.nonzero(labels == biggest)
    return float(rows.mean()), float(cols.mean())


def track_centroids(
    frames: np.ndarray,
    mask_fn,
) -> np.ndarray:
    """Centroid trace of an object across a frame sequence.

    Parameters
    ----------
    frames:
        RGB video, shape ``(n, height, width, 3)``.
    mask_fn:
        Callable mapping one frame to a binary mask.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, 2)`` of ``(row, col)`` centroids; frames
        where the object is not found repeat the previous centroid (NaN
        for leading misses).
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 4:
        raise ShapeError(f"frames must be 4-D (n, h, w, 3), got {frames.shape}")
    out = np.full((frames.shape[0], 2), np.nan)
    last: tuple[float, float] | None = None
    for i in range(frames.shape[0]):
        centroid = largest_component_centroid(mask_fn(frames[i]))
        if centroid is not None:
            last = centroid
        if last is not None:
            out[i] = last
    return out
