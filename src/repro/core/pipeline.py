"""The end-to-end online safety monitor.

Combines the two trained stages (paper Figure 4): the gesture classifier
infers the operational context per frame, which selects the
gesture-specific erroneous-gesture classifier applied to the same
kinematics window.  Three operating modes reproduce the paper's
Table VIII setups:

- ``use_true_gestures=True`` — perfect gesture boundaries (upper bound);
- ``use_true_gestures=False`` — the full pipelined monitor;
- the :class:`~repro.core.baseline_monitor.BaselineMonitor` — no context.

The monitor also exposes a frame-by-frame streaming interface
(:meth:`SafetyMonitor.stream`) demonstrating real-time operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import MonitorConfig
from ..errors import ConfigurationError, NotFittedError
from ..gestures.vocabulary import Gesture
from ..kinematics.trajectory import Trajectory
from ..kinematics.windows import sliding_windows_view
from .error_classifiers import ErrorClassifierLibrary
from .gesture_classifier import GestureClassifier


@dataclass
class MonitorOutput:
    """Per-frame outputs of one monitored demonstration.

    Attributes
    ----------
    gestures:
        Predicted (or ground-truth, in perfect-boundary mode) gesture
        numbers per frame.
    unsafe_scores:
        Unsafe probability per frame (0 before the first full window).
    unsafe_flags:
        Thresholded binary decisions per frame.
    gesture_ms / error_ms:
        Mean per-window inference latency of each stage.  Under the bulk
        engine (``process(bulk=True)`` / :mod:`repro.serving.bulk`) each
        stage runs as one fused batch, so these are **amortised** values
        (stage wall-clock divided by window count) rather than observed
        per-window latencies; ``compute_ms`` stays comparable across
        engines, but latency *distributions* only exist for the looped
        and streaming paths.
    metadata:
        Free-form provenance.  Always carries ``use_true_gestures``;
        bulk-engine outputs add ``engine="bulk"``, ``backend``,
        ``n_windows``, ``wall_ms`` (end-to-end wall-clock of the fused
        pass) and ``bulk_fps`` (trajectory frames per second — the
        throughput number ``benchmarks/bench_bulk_scoring.py`` and the
        CI gate track).
    """

    gestures: np.ndarray
    unsafe_scores: np.ndarray
    unsafe_flags: np.ndarray
    gesture_ms: float
    error_ms: float
    metadata: dict = field(default_factory=dict)

    @property
    def compute_ms(self) -> float:
        """Total mean per-window latency of the pipeline."""
        return self.gesture_ms + self.error_ms


class SafetyMonitor:
    """Two-stage context-aware anomaly detector."""

    def __init__(
        self,
        gesture_classifier: GestureClassifier,
        library: ErrorClassifierLibrary,
        config: MonitorConfig | None = None,
        threshold: float = 0.5,
    ) -> None:
        self.gesture_classifier = gesture_classifier
        self.library = library
        self.config = config or MonitorConfig()
        self.threshold = float(threshold)

    # ------------------------------------------------------------------
    def process(
        self,
        trajectory: Trajectory,
        use_true_gestures: bool = False,
        *,
        bulk: bool = False,
        backend: str | None = None,
    ) -> MonitorOutput:
        """Run the full pipeline over one demonstration (batched).

        With ``use_true_gestures`` the context stage is bypassed and the
        annotated gesture labels select the error classifiers — the
        paper's "perfect gesture boundaries" upper bound.

        ``bulk=True`` routes the call through the bulk offline scoring
        engine (:class:`repro.serving.bulk.BulkScorer`): every window is
        materialised as a zero-copy strided view and each stage runs as
        one fused batch through the selected inference ``backend``
        (default ``"reference"``, which is bit-identical to the looped
        path — see the parity contract in :mod:`repro.serving.bulk`).
        Scorers are cached on the monitor per backend name, so repeated
        bulk calls reuse compiled plans.  ``backend`` is only meaningful
        with ``bulk=True``; passing it otherwise raises, rather than
        silently ignoring it.
        """
        if backend is not None and not bulk:
            raise ConfigurationError(
                "backend selection requires bulk=True; the looped path "
                "always runs the reference float operations"
            )
        if bulk:
            from ..serving.bulk import BulkScorer

            name = backend if backend is not None else "reference"
            scorers = self.__dict__.setdefault("_bulk_scorers", {})
            scorer = scorers.get(name)
            if scorer is None:
                scorer = scorers[name] = BulkScorer(self, backend=name)
            return scorer.score(trajectory, use_true_gestures)
        if use_true_gestures:
            if trajectory.gestures is None:
                raise NotFittedError("perfect-boundary mode needs gesture labels")
            gestures = trajectory.gestures.copy()
            gesture_ms = 0.0
        else:
            gestures, gesture_ms = self.gesture_classifier.predict_frames(trajectory)

        cfg = self.config.error_window
        frames = trajectory.frames
        # Zero-copy strided view: the per-gesture gathers below copy only
        # the windows they score, never the full windowed tensor.
        windows, ends = sliding_windows_view(frames, cfg)
        n_frames = trajectory.n_frames
        scores = np.zeros(n_frames)
        flags = np.zeros(n_frames, dtype=int)

        # Group windows by the gesture active at their final frame so each
        # classifier runs once per batch.
        window_gestures = gestures[ends]
        if not use_true_gestures:
            # predict_frames backfills frames before the first complete
            # gesture window with the first prediction; the online monitor
            # has no context there yet.  Treat error windows ending in that
            # warm-up as context-unknown (safe) so process() stays causal
            # and bit-identical to stream()/the serving engine.
            context_start = self.gesture_classifier.config.window.window - 1
            window_gestures = np.where(ends >= context_start, window_gestures, 0)
        scored = np.zeros(n_frames, dtype=bool)
        error_ms_total = 0.0
        n_timed = 0
        for gesture_number in np.unique(window_gestures):
            mask = window_gestures == gesture_number
            scored[ends[mask]] = True  # a constant classifier scores 0 (safe)
            if gesture_number < 1:
                continue  # no gesture context yet (shorter than one window)
            clf = self.library.classifiers.get(Gesture(int(gesture_number)))
            if clf is None:
                continue
            probs, per_window_ms = clf.timed_predict_proba(windows[mask])
            error_ms_total += per_window_ms * int(mask.sum())
            n_timed += int(mask.sum())
            scores[ends[mask]] = probs
        error_ms = error_ms_total / n_timed if n_timed else 0.0

        # Propagate the last windowed score forward so every frame after
        # the first window carries the monitor's current belief (matters
        # for stride > 1 and for the trailing frames of a demonstration):
        # running maximum over scored frame indices finds, per frame, the
        # most recent frame with a fresh score (-1 while none exists yet).
        source = np.maximum.accumulate(
            np.where(scored, np.arange(n_frames), -1)
        )
        scores = np.where(source >= 0, scores[np.maximum(source, 0)], 0.0)
        flags = (scores >= self.threshold).astype(int)

        return MonitorOutput(
            gestures=gestures,
            unsafe_scores=scores,
            unsafe_flags=flags,
            gesture_ms=gesture_ms,
            error_ms=error_ms,
            metadata={"use_true_gestures": use_true_gestures},
        )

    # ------------------------------------------------------------------
    def stream(self, trajectory: Trajectory, backend: str = "reference"):
        """Frame-by-frame streaming inference (generator).

        Yields ``(frame_index, gesture_number, unsafe_probability,
        latency_ms)`` per frame, exactly as an online deployment at the
        robot's control-system output stage would observe them.

        This is a thin one-session wrapper over the batched serving
        engine (:class:`repro.serving.MonitorService`), so a standalone
        stream and a session inside a multi-stream service produce
        bit-identical gestures and scores.  ``backend`` selects the
        inference backend (see :data:`repro.nn.backends.BACKEND_NAMES`);
        the default ``"reference"`` carries the bit-exact parity
        contract, the compiled backends trade it for speed
        (``atol=1e-6``).
        """
        from ..serving.service import MonitorService

        service = MonitorService(self, max_sessions=1, backend=backend)
        # Consumers read the yielded events; skip the per-frame timeline.
        session_id = service.open_session(record_timeline=False)
        service.feed(session_id, trajectory.frames)
        for _ in range(trajectory.n_frames):
            start = time.perf_counter()
            event = service.tick()[0]
            latency_ms = 1000.0 * (time.perf_counter() - start)
            yield event.frame_index, event.gesture, event.score, latency_ms
