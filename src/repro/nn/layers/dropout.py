"""Inverted dropout regularisation (paper Section III)."""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from .base import Layer


class Dropout(Layer):
    """Randomly zero a fraction ``rate`` of activations during training.

    Uses inverted dropout (activations scaled by ``1 / keep_prob`` at
    training time) so inference is the identity.  The mask generator is
    seeded at build time for reproducible training runs.
    """

    def __init__(self, rate: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError("rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng: np.random.Generator | None = None
        self._mask: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        # Spawn an independent stream so mask draws do not perturb the
        # weight-initialisation sequence of downstream layers.
        self._rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        self._input_shape = tuple(input_shape)
        self._output_shape = tuple(input_shape)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            return x
        assert self._rng is not None
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._mask is None:
            # forward ran with rate == 0 or in inference mode.
            return np.asarray(grad_output, dtype=float)
        grad_input = np.asarray(grad_output, dtype=float) * self._mask
        self._mask = None
        return grad_input

    def get_config(self) -> dict:
        return {"rate": self.rate}
