"""Linear multi-class SVM trained with Pegasos-style SGD.

Used by the SDSDL baseline (the original couples dictionary learning
with a multi-class linear SVM) and available standalone for ablations.
"""

from __future__ import annotations

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError, NotFittedError, ShapeError


class LinearSVM:
    """One-vs-rest linear SVM with L2 regularisation (hinge loss).

    Parameters
    ----------
    reg_lambda:
        L2 regularisation strength (Pegasos ``lambda``).
    epochs:
        Passes over the training set.
    """

    def __init__(
        self,
        reg_lambda: float = 1e-4,
        epochs: int = 5,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if reg_lambda <= 0:
            raise ConfigurationError("reg_lambda must be positive")
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        self.reg_lambda = float(reg_lambda)
        self.epochs = int(epochs)
        self._rng = as_generator(seed)
        self.weights: np.ndarray | None = None  # (n_classes, n_features + 1)
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train one binary SVM per class (one-vs-rest)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).astype(int).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ShapeError("x must be (n, d) with labels of matching length")
        self.classes_ = np.unique(y)
        n, d = x.shape
        x_aug = np.concatenate([x, np.ones((n, 1))], axis=1)
        self.weights = np.zeros((self.classes_.size, d + 1))
        for c_idx, cls in enumerate(self.classes_):
            targets = np.where(y == cls, 1.0, -1.0)
            w = self.weights[c_idx]
            t = 0
            for epoch in range(self.epochs):
                order = self._rng.permutation(n)
                for i in order:
                    t += 1
                    eta = 1.0 / (self.reg_lambda * t)
                    margin = targets[i] * float(x_aug[i] @ w)
                    w *= 1.0 - eta * self.reg_lambda
                    if margin < 1.0:
                        w += eta * targets[i] * x_aug[i]
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class scores, shape ``(n, n_classes)``."""
        if self.weights is None or self.classes_ is None:
            raise NotFittedError("LinearSVM must be fitted first")
        x = np.asarray(x, dtype=float)
        x_aug = np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)
        return x_aug @ self.weights.T

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        assert self.classes_ is not None or self.decision_function(x) is not None
        scores = self.decision_function(x)
        assert self.classes_ is not None
        return self.classes_[np.argmax(scores, axis=1)]
