"""Paper Figure 5: pairwise JS divergence between erroneous gestures.

Estimates each erroneous-gesture class's kinematics distribution with
Gaussian KDE (after PCA projection) and reports the pairwise
Jensen-Shannon divergence matrix; the paper observes high divergence
between the frequent classes G2, G3, G4 and G6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import WindowConfig
from ..core.divergence import js_divergence_matrix, pairwise_divergence_report
from ..gestures.vocabulary import Gesture
from ..jigsaws.dataset import SurgicalDataset
from ..jigsaws.synthesis import make_suturing_dataset
from .common import ExperimentScale, get_scale


@dataclass
class Figure5Result:
    """The divergence matrix and its gesture ordering."""

    matrix: np.ndarray
    gestures: list[Gesture]

    def divergence(self, a: Gesture, b: Gesture) -> float:
        """JSD between two classes (nan when either is missing)."""
        try:
            i = self.gestures.index(a)
            j = self.gestures.index(b)
        except ValueError:
            return float("nan")
        return float(self.matrix[i, j])

    def mean_offdiagonal(self) -> float:
        """Mean pairwise divergence (upper triangle)."""
        n = len(self.gestures)
        values = [self.matrix[i, j] for i in range(n) for j in range(i + 1, n)]
        return float(np.mean(values)) if values else float("nan")


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    dataset: SurgicalDataset | None = None,
    n_components: int = 2,
) -> Figure5Result:
    """Compute the Figure 5 divergence matrix on Suturing data."""
    preset = get_scale(scale)
    if dataset is None:
        dataset = make_suturing_dataset(n_demos=preset.suturing_demos, rng=seed)
    data = dataset.windows(WindowConfig(5, 1))
    matrix, gestures = js_divergence_matrix(
        data, n_components=n_components, rng_seed=seed
    )
    return Figure5Result(matrix=matrix, gestures=gestures)


def render(result: Figure5Result) -> str:
    """ASCII heat table of the divergence matrix."""
    return pairwise_divergence_report(result.matrix, result.gestures)
