"""Rubric-driven error injection for synthetic demonstrations.

Realises each error mode of paper Table II as a kinematic signature
applied to a rendered gesture segment:

===========================  ===================================================
Error mode                   Kinematic signature
===========================  ===================================================
More than one attempt        extra back-and-forth oscillation of the active arm
Driving with >1 movement     stop-and-go time warp of the needle-driving path
Unintentional needle drop    jaw spike + downward jerk, then re-grasp
Holder not in view           smooth excursion beyond the endoscope view volume
Not along the needle curve   flattened path + reduced wrist sweep
Uses tissue for stability    damped motion resting on the tissue plane
Knot left loose              shortened, slower tightening pull
Failure to dropoff           jaws never open during the drop gesture
===========================  ===================================================

Per-gesture injection probabilities follow the error prevalences of paper
Table VII; per-gesture signature *strengths* are tuned so the resulting
detectability ordering matches the paper's per-gesture AUCs (strong
signatures for G4/G6, subtle ones for G2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import as_generator
from ..errors import GestureError
from ..gestures.rubric import ErrorMode, error_modes_for
from ..gestures.vocabulary import Gesture
from ..kinematics.state import N_VARIABLES_PER_ARM
from .primitives import SkillProfile

#: Per-gesture error prevalence for Suturing (paper Table VII, train %).
ERROR_RATES: dict[Gesture, float] = {
    Gesture.G1: 0.29,
    Gesture.G2: 0.25,
    Gesture.G3: 0.41,
    Gesture.G4: 0.77,
    Gesture.G5: 0.05,
    Gesture.G6: 0.74,
    Gesture.G8: 0.45,
    Gesture.G9: 0.59,
}

#: Signature strength per gesture: multiplies the base amplitude of the
#: injected perturbation.  Calibrated against the paper's per-gesture AUC
#: ordering (G4/G6 ~0.93 easy, G2 ~0.50 near-chance).
SIGNATURE_STRENGTH: dict[Gesture, float] = {
    Gesture.G1: 0.7,
    Gesture.G2: 0.2,
    Gesture.G3: 1.0,
    Gesture.G4: 1.6,
    Gesture.G5: 0.5,
    Gesture.G6: 1.6,
    Gesture.G8: 1.2,
    Gesture.G9: 0.5,
    Gesture.G11: 1.0,
    Gesture.G12: 0.8,
}

_LEFT = 0
_RIGHT = N_VARIABLES_PER_ARM

#: Which arm carries each gesture's error signature.
_ACTIVE_ARM_OFFSET: dict[Gesture, int] = {
    Gesture.G1: _RIGHT,
    Gesture.G2: _RIGHT,
    Gesture.G3: _RIGHT,
    Gesture.G4: _RIGHT,
    Gesture.G5: _RIGHT,
    Gesture.G6: _LEFT,
    Gesture.G8: _RIGHT,
    Gesture.G9: _RIGHT,
    Gesture.G11: _RIGHT,
    Gesture.G12: _LEFT,
}


@dataclass
class InjectionRecord:
    """Bookkeeping for one injected error."""

    gesture: Gesture
    mode: ErrorMode
    start_frame: int
    end_frame: int


class ErrorInjector:
    """Applies rubric error signatures to gesture segments.

    Parameters
    ----------
    rate_scale:
        Global multiplier on injection probabilities (1.0 reproduces the
        Table VII prevalences).
    frame_rate_hz:
        Frame rate of the segments (for velocity re-derivation).
    """

    def __init__(self, rate_scale: float = 1.0, frame_rate_hz: float = 30.0) -> None:
        if rate_scale < 0:
            raise GestureError("rate_scale must be >= 0")
        self.rate_scale = float(rate_scale)
        self.frame_rate_hz = float(frame_rate_hz)

    # ------------------------------------------------------------------
    def maybe_inject(
        self,
        gesture: Gesture,
        frames: np.ndarray,
        skill: SkillProfile,
        rng: int | np.random.Generator | None,
    ) -> tuple[np.ndarray, ErrorMode | None]:
        """Randomly inject one of the gesture's rubric errors.

        Returns the (possibly modified) frames and the injected mode, or
        ``None`` when the execution stays clean.  Gestures without rubric
        entries are never erroneous.
        """
        gen = as_generator(rng)
        specs = error_modes_for(gesture)
        rate = ERROR_RATES.get(gesture, 0.0) * skill.error_rate_scale * self.rate_scale
        if not specs or gen.random() >= min(rate, 0.97):
            return frames, None
        spec = specs[int(gen.integers(len(specs)))]
        modified = self.apply(gesture, spec.mode, frames, gen)
        return modified, spec.mode

    def apply(
        self,
        gesture: Gesture,
        mode: ErrorMode,
        frames: np.ndarray,
        rng: int | np.random.Generator | None,
    ) -> np.ndarray:
        """Deterministically apply ``mode``'s signature to ``frames``."""
        gen = as_generator(rng)
        frames = np.array(frames, dtype=float, copy=True)
        strength = SIGNATURE_STRENGTH.get(gesture, 1.0)
        offset = _ACTIVE_ARM_OFFSET.get(gesture, _RIGHT)
        handler = {
            ErrorMode.MULTIPLE_ATTEMPTS: self._multiple_attempts,
            ErrorMode.MULTIPLE_MOVEMENTS: self._multiple_movements,
            ErrorMode.NEEDLE_DROP: self._needle_drop,
            ErrorMode.OUT_OF_VIEW: self._out_of_view,
            ErrorMode.NOT_ALONG_CURVE: self._not_along_curve,
            ErrorMode.USES_TISSUE_FOR_STABILITY: self._tissue_stability,
            ErrorMode.KNOT_LEFT_LOOSE: self._knot_loose,
            ErrorMode.FAILURE_TO_DROPOFF: self._failure_to_dropoff,
        }.get(mode)
        if handler is None:
            raise GestureError(f"no signature implemented for mode {mode}")
        handler(frames, offset, strength, gen)
        self._rederive_velocities(frames, offset)
        return frames

    # ------------------------------------------------------------------
    # Signatures.  Each mutates `frames` in place for the arm at `offset`.
    # ------------------------------------------------------------------
    def _multiple_attempts(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        n = frames.shape[0]
        pos = frames[:, offset : offset + 3]
        # A retry: partway through, the arm backtracks toward its start
        # point and re-approaches (one full extra oscillation).
        phase = np.clip(np.linspace(-0.25, 1.25, n), 0.0, 1.0)
        envelope = np.sin(phase * 2.0 * np.pi) ** 2
        direction = pos[0] - pos[-1]
        norm = np.linalg.norm(direction)
        if norm > 1e-9:
            direction = direction / norm
        amplitude = 0.012 * strength
        pos += envelope[:, None] * direction[None, :] * amplitude
        # Retries also wobble the wrist — smoothly, in phase with the
        # backtrack (white noise here would be a trivially global
        # high-frequency cue rather than a contextual one).
        wobble_axes = gen.normal(0.0, 0.03 * strength, 9)
        frames[:, offset + 3 : offset + 12] += (
            envelope[:, None] * wobble_axes[None, :]
        )

    def _multiple_movements(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        n = frames.shape[0]
        # Stop-and-go: re-parameterise time so the drive pauses twice.
        t = np.linspace(0.0, 1.0, n)
        warped = t + 0.18 * strength * np.sin(3.0 * np.pi * t) / (3.0 * np.pi)
        warped = np.clip(warped, 0.0, 1.0)
        src = warped * (n - 1)
        lo = np.floor(src).astype(int)
        hi = np.minimum(lo + 1, n - 1)
        frac = (src - lo)[:, None]
        pos = frames[:, offset : offset + 3]
        frames[:, offset : offset + 3] = pos[lo] * (1 - frac) + pos[hi] * frac

    def _needle_drop(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        n = frames.shape[0]
        drop_at = int(gen.uniform(0.25, 0.55) * n)
        ramp = max(2, n // 8)
        end = min(n, drop_at + ramp)
        # The jaw slips open and STAYS open — the needle is gone, so the
        # rest of the gesture is executed with an empty, open grasper (a
        # sustained state change, which is why needle drops are among the
        # best-detected errors in the paper).  The open angle saturates at
        # the *normal* open level (~0.9 rad): an open jaw is perfectly
        # safe in G1/G11/G12 context, so only the gesture context makes
        # this pattern anomalous.
        target = min(frames[drop_at, offset + 18] + 0.45 * strength, 0.92)
        frames[drop_at:end, offset + 18] = np.linspace(
            frames[drop_at, offset + 18], target, end - drop_at
        )
        frames[end:, offset + 18] = target + gen.normal(0.0, 0.01, max(n - end, 0))
        # The tool jerks downward as the needle falls free...
        frames[drop_at:end, offset + 2] -= np.linspace(0.0, 0.008 * strength, end - drop_at)
        # ...then backtracks toward the drop point to re-acquire instead
        # of completing the planned motion.
        if end < n - 1:
            drop_point = frames[drop_at, offset : offset + 3].copy()
            tail = frames[end:, offset : offset + 3]
            pull = np.linspace(0.0, 0.7, tail.shape[0])[:, None]
            frames[end:, offset : offset + 3] = (1 - pull) * tail + pull * drop_point[None, :]

    def _out_of_view(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        n = frames.shape[0]
        # Smooth excursion drifting the tool toward (and briefly past)
        # the edge of the endoscopic view along the arm's home direction.
        # The visited positions overlap territory that is *normal* for
        # other gestures of the same arm (the G1 approach / G11 end point
        # for the right arm, the G6 pull for the left), so the excursion
        # is anomalous only in context.
        sign = 1.0 if offset else -1.0  # right arm drifts +x, left -x
        bump = np.sin(np.linspace(0.0, np.pi, n)) ** 2
        target_x = sign * gen.uniform(0.060, 0.080)
        drift = target_x - frames[n // 2, offset]
        frames[:, offset] += bump * drift * min(1.0, 0.625 * strength)

    def _not_along_curve(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        n = frames.shape[0]
        pos = frames[:, offset : offset + 3]
        # Straight-line pull: collapse the curved dip onto the chord and
        # lift slightly above the tissue plane (the needle is dragged out
        # rather than rolled along its curve).
        chord = np.linspace(0.0, 1.0, n)[:, None] * (pos[-1] - pos[0])[None, :] + pos[0]
        chord[:, 2] += 0.004 * strength
        blend = min(0.9, 0.6 * strength)
        frames[:, offset : offset + 3] = (1 - blend) * pos + blend * chord
        # The wrist stops sweeping along the needle curve.
        mid = frames[n // 2, offset + 3 : offset + 12]
        frames[:, offset + 3 : offset + 12] = (
            (1 - blend) * frames[:, offset + 3 : offset + 12] + blend * mid[None, :]
        )

    def _tissue_stability(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        n = frames.shape[0]
        pos = frames[:, offset : offset + 3]
        anchor = pos[n // 2].copy()
        anchor[2] = min(anchor[2], 0.008)  # resting on the tissue plane
        damp = min(0.85, 0.55 * strength)
        frames[:, offset : offset + 3] = (1 - damp) * pos + damp * anchor[None, :]
        # Rotation freezes while leaning on the tissue.
        mid_rot = frames[n // 2, offset + 3 : offset + 12]
        frames[:, offset + 3 : offset + 12] = (
            (1 - damp) * frames[:, offset + 3 : offset + 12] + damp * mid_rot[None, :]
        )

    def _knot_loose(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        pos = frames[:, offset : offset + 3]
        # The tightening pull stops short: compress displacement.
        scale = max(0.25, 1.0 - 0.6 * strength)
        frames[:, offset : offset + 3] = pos[0][None, :] + scale * (pos - pos[0])
        # The jaws squeeze with less pressure (slightly more open).
        frames[:, offset + 18] += 0.12 * strength

    def _failure_to_dropoff(
        self, frames: np.ndarray, offset: int, strength: float, gen: np.random.Generator
    ) -> None:
        # The jaws never open: clamp to the initial (closed) angle.
        frames[:, offset + 18] = frames[0, offset + 18] + gen.normal(
            0.0, 0.01, frames.shape[0]
        )

    # ------------------------------------------------------------------
    def _rederive_velocities(self, frames: np.ndarray, offset: int) -> None:
        """Recompute the velocity channels after position edits."""
        dt = 1.0 / self.frame_rate_hz
        pos = frames[:, offset : offset + 3]
        frames[:, offset + 12 : offset + 15] = np.gradient(pos, dt, axis=0)
        rot = frames[:, offset + 3 : offset + 12]
        frames[:, offset + 15 : offset + 18] = np.gradient(rot, dt, axis=0)[:, :3]
