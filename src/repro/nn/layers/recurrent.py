"""LSTM layer with full backpropagation-through-time.

The paper's gesture classifier is a 2-layer stacked LSTM and several of
its erroneous-gesture detectors are LSTM networks (Section III / Tables
IV-VI).  This implementation follows the standard LSTM cell of Hochreiter
& Schmidhuber with forget-gate bias initialised to one.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, ShapeError
from ..initializers import glorot_uniform, orthogonal
from .activations import sigmoid
from .base import Layer
from .contract import contract


class LSTM(Layer):
    """Single LSTM layer over ``(batch, time, features)`` input.

    Parameters
    ----------
    units:
        Hidden-state width.
    return_sequences:
        When ``True`` the layer outputs the hidden state at every time
        step ``(batch, time, units)`` — required for stacking LSTM layers.
        When ``False`` only the final hidden state ``(batch, units)`` is
        returned.

    Notes
    -----
    Gate weights are stored fused: ``Wx`` has shape
    ``(features, 4 * units)`` and ``Wh`` ``(units, 4 * units)`` with gate
    order (input, forget, cell candidate, output).
    """

    def __init__(self, units: int, return_sequences: bool = False) -> None:
        super().__init__()
        if units < 1:
            raise ConfigurationError("units must be >= 1")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self._cache: dict[str, np.ndarray] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ShapeError(
                f"LSTM expects (time, features) input shape, got {input_shape}"
            )
        time_steps, features = input_shape
        u = self.units
        wx = glorot_uniform((features, 4 * u), rng)
        wh = np.concatenate(
            [orthogonal((u, u), rng) for _ in range(4)], axis=1
        )
        bias = np.zeros(4 * u)
        bias[u : 2 * u] = 1.0  # forget-gate bias at 1: standard remedy for
        # vanishing memory early in training.
        self.params = {"Wx": wx, "Wh": wh, "b": bias}
        self.grads = {key: np.zeros_like(val) for key, val in self.params.items()}
        self._input_shape = tuple(input_shape)
        self._output_shape = (
            (time_steps, u) if self.return_sequences else (u,)
        )
        self.built = True

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = self._require_ndim(x, 3, "LSTM input")
        batch, time_steps, features = x.shape
        if features != self.params["Wx"].shape[0]:
            raise ShapeError(
                f"LSTM built for {self.params['Wx'].shape[0]} features, got {features}"
            )
        u = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        h = np.zeros((batch, u))
        c = np.zeros((batch, u))
        hs = np.empty((batch, time_steps, u))
        if training:
            gates_i = np.empty((batch, time_steps, u))
            gates_f = np.empty((batch, time_steps, u))
            gates_g = np.empty((batch, time_steps, u))
            gates_o = np.empty((batch, time_steps, u))
            cells = np.empty((batch, time_steps, u))
            h_prev = np.empty((batch, time_steps, u))
            c_prev = np.empty((batch, time_steps, u))

        # Pre-compute the input projection for every step at once.
        x_proj = contract(x.reshape(-1, features), wx, training)
        x_proj = x_proj.reshape(batch, time_steps, 4 * u)

        for t in range(time_steps):
            z = x_proj[:, t, :] + contract(h, wh, training) + b
            i = sigmoid(z[:, :u])
            f = sigmoid(z[:, u : 2 * u])
            g = np.tanh(z[:, 2 * u : 3 * u])
            o = sigmoid(z[:, 3 * u :])
            if training:
                h_prev[:, t, :] = h
                c_prev[:, t, :] = c
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, t, :] = h
            if training:
                gates_i[:, t, :] = i
                gates_f[:, t, :] = f
                gates_g[:, t, :] = g
                gates_o[:, t, :] = o
                cells[:, t, :] = c

        if training:
            self._cache = {
                "x": x,
                "i": gates_i,
                "f": gates_f,
                "g": gates_g,
                "o": gates_o,
                "c": cells,
                "h_prev": h_prev,
                "c_prev": c_prev,
            }
        return hs if self.return_sequences else hs[:, -1, :]

    # ------------------------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        cache = self._cache
        x = cache["x"]
        batch, time_steps, features = x.shape
        u = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]

        if self.return_sequences:
            grad_h_seq = np.asarray(grad_output, dtype=float)
            if grad_h_seq.shape != (batch, time_steps, u):
                raise ShapeError(
                    f"grad_output shape {grad_h_seq.shape} does not match "
                    f"({batch}, {time_steps}, {u})"
                )
        else:
            grad_last = np.asarray(grad_output, dtype=float)
            if grad_last.shape != (batch, u):
                raise ShapeError(
                    f"grad_output shape {grad_last.shape} does not match ({batch}, {u})"
                )

        d_wx = np.zeros_like(wx)
        d_wh = np.zeros_like(wh)
        d_b = np.zeros_like(self.params["b"])
        d_x = np.empty_like(x)

        d_h_next = np.zeros((batch, u))
        d_c_next = np.zeros((batch, u))
        for t in range(time_steps - 1, -1, -1):
            d_h = d_h_next.copy()
            if self.return_sequences:
                d_h += grad_h_seq[:, t, :]
            elif t == time_steps - 1:
                d_h += grad_last

            i = cache["i"][:, t, :]
            f = cache["f"][:, t, :]
            g = cache["g"][:, t, :]
            o = cache["o"][:, t, :]
            c = cache["c"][:, t, :]
            c_prev = cache["c_prev"][:, t, :]
            h_prev = cache["h_prev"][:, t, :]

            tanh_c = np.tanh(c)
            d_o = d_h * tanh_c
            d_c = d_h * o * (1.0 - tanh_c**2) + d_c_next
            d_f = d_c * c_prev
            d_i = d_c * g
            d_g = d_c * i
            d_c_next = d_c * f

            # Pre-activation gradients.
            d_z = np.concatenate(
                [
                    d_i * i * (1.0 - i),
                    d_f * f * (1.0 - f),
                    d_g * (1.0 - g**2),
                    d_o * o * (1.0 - o),
                ],
                axis=1,
            )
            d_wx += x[:, t, :].T @ d_z
            d_wh += h_prev.T @ d_z
            d_b += d_z.sum(axis=0)
            d_x[:, t, :] = d_z @ wx.T
            d_h_next = d_z @ wh.T

        self.grads["Wx"][...] = d_wx
        self.grads["Wh"][...] = d_wh
        self.grads["b"][...] = d_b
        self._cache = None
        return d_x

    def get_config(self) -> dict:
        return {"units": self.units, "return_sequences": self.return_sequences}
