"""Dynamic Time Warping (DTW).

The paper compares the block's centroid trace in a faulty trajectory
against fault-free reference traces with DTW, flagging large deviations
as drop-off failures ("the block should have been dropped, but it was
not", Section IV-B).  Classic O(n*m) dynamic-programming DTW with an
optional Sakoe-Chiba band.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def _pairwise_cost(series_a: np.ndarray, series_b: np.ndarray) -> np.ndarray:
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if a.ndim == 1:
        a = a[:, None]
    if b.ndim == 1:
        b = b[:, None]
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ShapeError(
            f"series must be (n, d) with matching d, got {a.shape} and {b.shape}"
        )
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ShapeError("series must be non-empty")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def _accumulate(cost: np.ndarray, band: int | None) -> np.ndarray:
    n, m = cost.shape
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None:
            j_lo, j_hi = 1, m
        else:
            centre = i * m / n
            j_lo = max(1, int(np.floor(centre - band)))
            j_hi = min(m, int(np.ceil(centre + band)))
        for j in range(j_lo, j_hi + 1):
            step = min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])
            acc[i, j] = cost[i - 1, j - 1] + step
    return acc


def dtw_distance(
    series_a: np.ndarray,
    series_b: np.ndarray,
    band: int | None = None,
    normalize: bool = True,
) -> float:
    """DTW alignment cost between two (possibly multivariate) series.

    Parameters
    ----------
    series_a, series_b:
        Arrays of shape ``(n,)`` or ``(n, d)``.
    band:
        Optional Sakoe-Chiba band half-width (in samples of ``series_b``).
    normalize:
        Divide the total cost by the path length (makes costs comparable
        across series lengths).
    """
    cost = _pairwise_cost(series_a, series_b)
    acc = _accumulate(cost, band)
    total = float(acc[cost.shape[0], cost.shape[1]])
    if not np.isfinite(total):
        raise ShapeError("band too narrow: no feasible warping path")
    if normalize:
        total /= cost.shape[0] + cost.shape[1]
    return total


def dtw_path(
    series_a: np.ndarray,
    series_b: np.ndarray,
    band: int | None = None,
) -> list[tuple[int, int]]:
    """Optimal warping path as ``(i, j)`` index pairs (both 0-based)."""
    cost = _pairwise_cost(series_a, series_b)
    acc = _accumulate(cost, band)
    i, j = cost.shape
    if not np.isfinite(acc[i, j]):
        raise ShapeError("band too narrow: no feasible warping path")
    path: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (
            (acc[i - 1, j - 1], i - 1, j - 1),
            (acc[i - 1, j], i - 1, j),
            (acc[i, j - 1], i, j - 1),
        )
        _, i, j = min(moves, key=lambda entry: entry[0])
    path.reverse()
    return path
