"""Weight initialisers for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Samples uniformly from ``[-limit, limit]`` with
    ``limit = sqrt(6 / (fan_in + fan_out))``.  For kernels with more than
    two axes the leading axes are treated as part of the receptive field
    (Keras convention).
    """
    if len(shape) < 1:
        raise ShapeError("shape must have at least one dimension")
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
        fan_in = shape[-2] * receptive
        fan_out = shape[-1] * receptive
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation for recurrent kernels.

    Returns a matrix with orthonormal rows or columns (whichever is
    smaller), the standard choice for LSTM recurrent weights.
    """
    if len(shape) != 2:
        raise ShapeError(f"orthogonal init requires a 2-D shape, got {shape}")
    rows, cols = shape
    size = max(rows, cols)
    gaussian = rng.standard_normal((size, size))
    q, r = np.linalg.qr(gaussian)
    # Sign correction so the distribution is uniform over orthogonal matrices.
    q = q * np.sign(np.diag(r))
    return q[:rows, :cols].copy()


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    del rng  # deterministic; signature kept uniform with other initialisers
    return np.zeros(shape)
