"""Tests for repro.simulation.motion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.simulation.motion import (
    finite_difference_velocity,
    minimum_jerk_profile,
    minimum_jerk_segment,
    waypoint_trajectory,
)


class TestMinimumJerkProfile:
    def test_endpoints(self):
        s = minimum_jerk_profile(50)
        assert s[0] == pytest.approx(0.0)
        assert s[-1] == pytest.approx(1.0)

    def test_monotone(self):
        s = minimum_jerk_profile(100)
        assert np.all(np.diff(s) >= -1e-12)

    def test_zero_boundary_velocity(self):
        s = minimum_jerk_profile(1000)
        v = np.diff(s)
        # Boundary velocity an order of magnitude below peak velocity.
        assert v[0] < 0.1 * v.max()
        assert v[-1] < 0.1 * v.max()

    def test_rejects_short(self):
        with pytest.raises(ConfigurationError):
            minimum_jerk_profile(1)


class TestMinimumJerkSegment:
    def test_endpoints_exact(self):
        seg = minimum_jerk_segment(np.array([0.0, 0.0]), np.array([2.0, -1.0]), 20)
        assert np.allclose(seg[0], [0.0, 0.0])
        assert np.allclose(seg[-1], [2.0, -1.0])

    def test_stays_on_line(self):
        start, end = np.array([1.0, 1.0, 0.0]), np.array([3.0, 5.0, 2.0])
        seg = minimum_jerk_segment(start, end, 30)
        direction = end - start
        for point in seg:
            rel = point - start
            cross = np.cross(rel, direction)
            assert np.allclose(cross, 0.0, atol=1e-9)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            minimum_jerk_segment(np.zeros(2), np.zeros(3), 10)


class TestWaypointTrajectory:
    def test_length_formula(self):
        waypoints = np.zeros((3, 2))
        out = waypoint_trajectory(waypoints, [10, 15])
        assert out.shape == (10 + 15 - 1, 2)

    def test_visits_waypoints(self):
        waypoints = np.array([[0.0], [1.0], [3.0]])
        out = waypoint_trajectory(waypoints, [10, 10])
        assert out[0, 0] == pytest.approx(0.0)
        assert out[9, 0] == pytest.approx(1.0)
        assert out[-1, 0] == pytest.approx(3.0)

    def test_rejects_wrong_step_count(self):
        with pytest.raises(ConfigurationError):
            waypoint_trajectory(np.zeros((3, 2)), [10])


class TestFiniteDifferenceVelocity:
    def test_linear_motion_constant_velocity(self):
        positions = np.linspace(0.0, 9.0, 10)[:, None]
        vel = finite_difference_velocity(positions, sample_rate_hz=10.0)
        assert np.allclose(vel, 10.0)

    def test_shape_preserved(self):
        vel = finite_difference_velocity(np.zeros((7, 3)), 100.0)
        assert vel.shape == (7, 3)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            finite_difference_velocity(np.zeros((5, 2)), 0.0)
