#!/usr/bin/env python
"""Docs consistency checks, run by the CI docs job.

Two guarantees:

1. every ```mermaid block in ``docs/*.md`` (and ``README.md``) parses —
   a lightweight structural validation: known diagram type on the first
   line, closed fence, balanced brackets, and well-formed edges for
   flowcharts / messages for sequence diagrams;
2. every public name exported from the documented modules (their
   ``__all__``: ``repro.serving`` and ``repro.nn.backends``) appears in
   ``docs/api.md``, so the API reference cannot silently rot as the
   serving surface grows.

Run:  PYTHONPATH=src python scripts/check_docs.py
Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Mermaid diagram types we know how to sanity-check.  Anything else in
#: a mermaid block is flagged (add the type here when docs start using it).
KNOWN_TYPES = ("flowchart", "graph", "sequenceDiagram", "stateDiagram")

#: Node/edge line of a flowchart: we only require that bracket pairs
#: balance and arrows are well-formed, not a full grammar.
_BRACKETS = {"[": "]", "(": ")", "{": "}"}


def extract_mermaid_blocks(text: str, path: Path) -> tuple[list[tuple[int, list[str]]], list[str]]:
    """Return (start_line, block_lines) pairs and any fence errors."""
    blocks: list[tuple[int, list[str]]] = []
    errors: list[str] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped.startswith("```mermaid"):
            start = i + 1
            body: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            if i == len(lines):
                errors.append(f"{path}:{start}: unclosed ```mermaid fence")
                break
            blocks.append((start, body))
        i += 1
    return blocks, errors


def brackets_balanced(line: str) -> bool:
    """Check bracket nesting, ignoring quoted label text."""
    line = re.sub(r'"[^"]*"', '""', line)
    stack: list[str] = []
    for char in line:
        if char in _BRACKETS:
            stack.append(_BRACKETS[char])
        elif char in _BRACKETS.values():
            if not stack or stack.pop() != char:
                return False
    return not stack


def check_flowchart(body: list[str], path: Path, start: int) -> list[str]:
    errors = []
    for offset, raw in enumerate(body[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("%%"):
            continue
        if not brackets_balanced(line):
            errors.append(
                f"{path}:{start + offset}: unbalanced brackets in {line!r}"
            )
        # A malformed half-arrow ("->" in mermaid flowcharts must be
        # "-->", "-.->", "==>", or a labelled variant) renders as text.
        # Quoted label text may legitimately contain "->".
        unquoted = re.sub(r'"[^"]*"', '""', line)
        if re.search(r"[^-.=>]->", unquoted.replace("-->", "")):
            errors.append(
                f"{path}:{start + offset}: suspicious arrow in {line!r} "
                "(flowchart edges use -->)"
            )
    return errors


def check_sequence(body: list[str], path: Path, start: int) -> list[str]:
    errors = []
    ok_prefixes = ("participant", "actor", "Note", "loop", "alt", "else",
                   "opt", "end", "par", "and", "activate", "deactivate",
                   "autonumber", "%%")
    for offset, raw in enumerate(body[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(ok_prefixes):
            continue
        if not re.match(r"^[\w\s]+(-{1,2}>>?|-[x)])[\w\s]+:\s*\S", line):
            errors.append(
                f"{path}:{start + offset}: not a valid sequence message: {line!r}"
            )
    return errors


def check_mermaid(path: Path) -> list[str]:
    blocks, errors = extract_mermaid_blocks(path.read_text(), path)
    for start, body in blocks:
        if not body:
            errors.append(f"{path}:{start}: empty mermaid block")
            continue
        header = body[0].strip()
        diagram_type = header.split()[0] if header.split() else ""
        if diagram_type not in KNOWN_TYPES:
            errors.append(
                f"{path}:{start}: unknown mermaid diagram type {header!r} "
                f"(expected one of {', '.join(KNOWN_TYPES)})"
            )
        elif diagram_type in ("flowchart", "graph"):
            errors.extend(check_flowchart(body, path, start))
        elif diagram_type == "sequenceDiagram":
            errors.extend(check_sequence(body, path, start))
    return errors


#: Modules whose ``__all__`` must be fully covered by docs/api.md.
#: Add an entry when a new public surface grows an API-reference
#: section.
DOCUMENTED_MODULES = (
    "repro.serving",
    "repro.serving.analytics",
    "repro.serving.balancer",
    "repro.serving.bulk",
    "repro.serving.eventstore",
    "repro.serving.remote",
    "repro.serving.remote.protocol",
    "repro.serving.shm",
    "repro.serving.telemetry",
    "repro.nn.backends",
)


def check_api_coverage() -> list[str]:
    """Every documented module's export must be mentioned in docs/api.md."""
    import importlib

    sys.path.insert(0, str(REPO / "src"))
    api_path = DOCS / "api.md"
    if not api_path.exists():
        return [f"{api_path}: missing (docs/api.md is required)"]
    text = api_path.read_text()
    errors = []
    for module_name in DOCUMENTED_MODULES:
        module = importlib.import_module(module_name)
        errors.extend(
            f"{api_path}: export {name!r} from {module_name}.__all__ "
            "is undocumented"
            for name in module.__all__
            if not re.search(rf"`{re.escape(name)}", text)
        )
    return errors


def main() -> int:
    errors: list[str] = []
    targets = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    if not (DOCS.exists() and list(DOCS.glob("*.md"))):
        errors.append(f"{DOCS}: docs tree is missing or empty")
    for path in targets:
        if path.exists():
            errors.extend(check_mermaid(path))
    errors.extend(check_api_coverage())
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\ncheck_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    n_blocks = sum(
        len(extract_mermaid_blocks(p.read_text(), p)[0])
        for p in targets
        if p.exists()
    )
    print(f"check_docs: OK ({n_blocks} mermaid block(s), api.md covers __all__)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
