"""Tests for load-aware placement: the shed actuator, the placement
overlay, the :func:`plan_sheds` policy and the :class:`MonitorBalancer`
controller — plus the two-level interplay with the autoscaler.

The headline guarantees:

- a shed mid-stream changes nothing: event streams stay bit-identical
  (order included) to an unbalanced :class:`MonitorService` run, because
  the shed rides the same export→import migration path resize does;
- the placement overlay makes every later placement decision follow the
  moved sessions (``add_shard`` does not undo a shed; park/resume
  re-imports land on the pinned shard);
- the two controller levels never fight: a shed in flight defers a
  pending resize, a resize resets the balancer's hysteresis;
- failure is safe: removing or crashing a shed target never silently
  loses a session.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.serving import (
    AsyncShardedMonitor,
    MonitorAutoscaler,
    MonitorBalancer,
    MonitorService,
    ServiceStats,
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    plan_sheds,
)

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


def make_fleet(n_sessions, base_seed=100, frames=40, step=5):
    return {
        f"proc-{i}": make_random_walk_trajectory(
            frames + step * i, n_features=N_FEATURES, seed=base_seed + i
        )
        for i in range(n_sessions)
    }


def event_key(event):
    return (event.session_id, event.frame_index, event.gesture, event.score, event.flag)


def stats_with_p99(tick_ms: float, n_ticks: int = 50) -> ServiceStats:
    stats = ServiceStats(capacity=max(n_ticks, 1))
    for _ in range(n_ticks):
        stats.record(tick_ms, 4)
    return stats


class TestPlanSheds:
    """The pure policy: snapshot in, bounded move (or None) out."""

    def test_in_band_fleet_yields_no_plan(self):
        stats = {0: stats_with_p99(8.0), 1: stats_with_p99(7.0)}
        assert plan_sheds(stats, {0: 4, 1: 4}) is None

    def test_idle_fleet_skew_is_noise(self):
        # 0.09ms vs 0.01ms is a 9x ratio — and completely meaningless.
        stats = {0: stats_with_p99(0.09), 1: stats_with_p99(0.01)}
        assert plan_sheds(stats, {0: 8, 1: 0}, min_p99_ms=1.0) is None

    def test_skew_triggers_half_gap_move(self):
        stats = {0: stats_with_p99(30.0), 1: stats_with_p99(5.0)}
        plan = plan_sheds(stats, {0: 12, 1: 0}, max_moves=8)
        assert plan is not None
        assert (plan.hot, plan.cold) == (0, 1)
        assert plan.n_sessions == 6  # half the occupancy gap
        assert plan.p99_max_ms == pytest.approx(30.0)
        assert plan.p99_median_ms == pytest.approx(17.5)

    def test_migration_budget_caps_the_move(self):
        stats = {0: stats_with_p99(30.0), 1: stats_with_p99(5.0)}
        plan = plan_sheds(stats, {0: 40, 1: 0}, max_moves=8)
        assert plan is not None and plan.n_sessions == 8

    def test_cold_capacity_caps_the_move(self):
        stats = {0: stats_with_p99(30.0), 1: stats_with_p99(5.0)}
        plan = plan_sheds(
            stats, {0: 14, 1: 11}, max_moves=8, max_sessions_per_shard=11
        )
        assert plan is None  # the cold shard is already full
        plan = plan_sheds(
            stats, {0: 14, 1: 4}, max_moves=8, max_sessions_per_shard=6
        )
        assert plan is not None and plan.n_sessions == 2  # 6 - 4 free slots

    def test_occupancy_balanced_latency_skew_yields_no_plan(self):
        # Migration cannot help a fleet whose occupancy is already even:
        # this guard is also what makes repeated plan->shed cycles
        # converge while the latency window still remembers the skew.
        stats = {0: stats_with_p99(30.0), 1: stats_with_p99(5.0)}
        assert plan_sheds(stats, {0: 5, 1: 4}) is None

    def test_coldest_shard_wins_by_occupancy(self):
        stats = {
            0: stats_with_p99(30.0),
            1: stats_with_p99(6.0),
            2: stats_with_p99(5.0),
        }
        plan = plan_sheds(stats, {0: 10, 1: 2, 2: 4})
        assert plan is not None and (plan.hot, plan.cold) == (0, 1)

    def test_single_shard_has_nowhere_to_shed(self):
        assert plan_sheds({0: stats_with_p99(30.0)}, {0: 8}) is None

    def test_invalid_parameters_raise(self):
        stats = {0: stats_with_p99(30.0), 1: stats_with_p99(5.0)}
        with pytest.raises(ConfigurationError):
            plan_sheds(stats, {0: 8, 1: 0}, skew_ratio=0.5)
        with pytest.raises(ConfigurationError):
            plan_sheds(stats, {0: 8, 1: 0}, max_moves=0)


class TestShedActuator:
    """ShardedMonitorService.shed + the placement overlay."""

    def test_shed_moves_and_pins_sessions(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=16
        ) as service:
            for _ in range(8):
                service.open_session()
            occupancy = service.shard_occupancy()
            hot = max(occupancy, key=occupancy.get)
            cold = min(occupancy, key=occupancy.get)
            victims = service.sessions_on(hot)[:2]
            moved = service.shed(victims, cold)
            assert moved == {sid: hot for sid in victims}
            for sid in victims:
                assert service.shard_of(sid) == cold
            after = service.shard_occupancy()
            assert after[hot] == occupancy[hot] - 2
            assert after[cold] == occupancy[cold] + 2
            assert service.telemetry.counter("sheds").value == 1
            assert service.telemetry.counter("sessions_shed").value == 2

    def test_shed_skips_sessions_closed_since_the_plan(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sid = service.open_session()
            other = service.open_session()
            service.close_session(sid)
            source = service.shard_of(other)
            target = next(i for i in service.shard_indices if i != source)
            moved = service.shed([sid, other], target)
            assert moved == {other: source}  # the closed one was skipped
            assert service.shard_of(other) == target

    def test_shed_to_dead_shard_raises(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sid = service.open_session()
            with pytest.raises(WorkerError):
                service.shed([sid], 99)

    def test_add_shard_does_not_undo_a_shed(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=32
        ) as service:
            for _ in range(12):
                service.open_session()
            occupancy = service.shard_occupancy()
            hot = max(occupancy, key=occupancy.get)
            cold = min(occupancy, key=occupancy.get)
            victims = service.sessions_on(hot)[:3]
            service.shed(victims, cold)
            service.add_shard()
            for sid in victims:
                assert service.shard_of(sid) == cold

    def test_feed_follows_the_overlay_after_shed(self, monitor):
        trajectory = make_random_walk_trajectory(
            30, n_features=N_FEATURES, seed=42
        )
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sid = service.open_session()
            source = service.shard_of(sid)
            target = next(i for i in service.shard_indices if i != source)
            service.feed(sid, trajectory.frames[:15])
            service.shed([sid], target)
            # Frames fed *after* the shed must land on the new shard —
            # the overlay is what keeps routing with the session.
            service.feed(sid, trajectory.frames[15:])
            events = service.drain()
            assert len(events) == 30
            assert not service.failed_sessions
            result = service.close_session(sid)
            assert result.n_frames == 30

    def test_remove_shard_of_shed_target_fails_safe(self, monitor):
        """The interplay regression: retiring a shed target releases its
        pins; the pinned sessions re-place on the ring — nothing lost."""
        fleet = make_fleet(6, base_seed=300, frames=30, step=2)
        with ShardedMonitorService(
            monitor, n_shards=3, max_sessions_per_shard=16
        ) as service:
            for session_id, trajectory in fleet.items():
                service.open_session(session_id)
                service.feed(session_id, trajectory.frames)
            events = []
            for _ in range(5):
                events += service.tick()
            target = service.shard_indices[0]
            victims = [
                sid for sid in fleet if service.shard_of(sid) != target
            ][:2]
            service.shed(victims, target)
            # Retire the shed target mid-stream, pinned sessions aboard.
            moved = service.remove_shard(target)
            assert set(victims) <= set(moved)
            for sid in victims:
                assert service.shard_of(sid) != target
            events += service.drain()
            assert not service.failed_sessions
            results = {sid: service.close_session(sid) for sid in fleet}
            total = sum(len(t.frames) for t in fleet.values())
            # Every frame of every session produced exactly one event.
            assert len(events) == total
            assert sum(r.n_frames for r in results.values()) == total

    def test_crashed_shed_target_fails_its_sessions_safe(self, monitor):
        """A shed target that dies doesn't silently lose its pinned
        sessions: they surface as flagged terminal events."""
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sids = [service.open_session() for _ in range(4)]
            target = service.shard_indices[0]
            victims = [s for s in sids if service.shard_of(s) != target][:1]
            service.shed(victims, target)
            on_target = service.sessions_on(target)
            service._shards[target].process.kill()
            service._shards[target].process.join(timeout=10)
            events = service.take_undelivered_events()
            assert {e.session_id for e in events} == set(on_target)
            assert all(e.flag and e.error for e in events)
            assert set(on_target) <= set(service.failed_sessions)
            # The survivors keep serving; their placement is untouched.
            survivors = [s for s in sids if s not in on_target]
            for sid in survivors:
                assert service.shard_of(sid) != target


class TestShedParity:
    """A shed mid-stream changes nothing in the event stream."""

    def test_shed_matches_static_service_bit_identically(self, monitor):
        fleet = make_fleet(8, base_seed=800, frames=45, step=3)
        static = MonitorService(monitor, max_sessions=8)
        for session_id, trajectory in fleet.items():
            static.open_session(session_id)
            static.feed(session_id, trajectory.frames)
        static_events = static.drain()
        static_results = {sid: static.close_session(sid) for sid in fleet}

        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=16
        ) as service:
            for session_id, trajectory in fleet.items():
                service.open_session(session_id)
                service.feed(session_id, trajectory.frames)
            events = []
            for _ in range(12):
                events += service.tick()
            # Shed everything off one shard, then half of it back — two
            # migrations per moved session, mid-stream.
            a, b = service.shard_indices[:2]
            service.shed(service.sessions_on(a), b)
            back = service.sessions_on(b)[: len(fleet) // 2]
            service.shed(back, a)
            for _ in range(12):
                events += service.tick()
            events += service.drain()
            assert not service.failed_sessions
            results = {sid: service.close_session(sid) for sid in fleet}

        assert [event_key(e) for e in events] == [
            event_key(e) for e in static_events
        ]
        for sid in fleet:
            assert np.array_equal(
                results[sid].unsafe_scores, static_results[sid].unsafe_scores
            )
            assert np.array_equal(
                results[sid].gestures, static_results[sid].gestures
            )


class TestBalancerController:
    """MonitorBalancer hysteresis, budget, flap suppression — and the
    two-level interplay with MonitorAutoscaler."""

    def _skewed(self, hot, cold, hot_ms=30.0, cold_ms=5.0):
        return {hot: stats_with_p99(hot_ms), cold: stats_with_p99(cold_ms)}

    def test_applies_after_consecutive_agreement(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=16
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    for _ in range(8):
                        await frontend.open_session()
                    a, b = service.shard_indices
                    await frontend.shed(frontend.sessions_on(b), a)
                    balancer = MonitorBalancer(
                        frontend, consecutive=2, cooldown_s=0.0
                    )
                    first = await balancer.step(self._skewed(a, b))
                    assert first is None  # streak of 1 < consecutive=2
                    second = await balancer.step(self._skewed(a, b))
                    assert second is not None
                    assert (second["from"], second["to"]) == (a, b)
                    assert second["n"] == 4  # half the 8/0 gap
                    assert balancer.shed_events == [second]
                    occupancy = frontend.shard_occupancy()
                    assert occupancy[a] == occupancy[b] == 4

        asyncio.run(run())

    def test_different_hot_shard_restarts_the_streak(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=16
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    for _ in range(8):
                        await frontend.open_session()
                    a, b = service.shard_indices
                    await frontend.shed(frontend.sessions_on(b), a)
                    balancer = MonitorBalancer(
                        frontend, consecutive=2, cooldown_s=0.0
                    )
                    assert await balancer.step(self._skewed(a, b)) is None
                    # The *other* shard looks hot now (occupancy has to
                    # agree, so pretend the fleet flipped).
                    await frontend.shed(frontend.sessions_on(a), b)
                    assert await balancer.step(self._skewed(b, a)) is None
                    assert balancer.shed_events == []

        asyncio.run(run())

    def test_cooldown_blocks_back_to_back_sheds(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=32
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    for _ in range(16):
                        await frontend.open_session()
                    a, b = service.shard_indices
                    await frontend.shed(frontend.sessions_on(b), a)
                    balancer = MonitorBalancer(
                        frontend,
                        consecutive=1,
                        cooldown_s=3600.0,
                        max_moves=2,
                        flap_suppress_s=0.0,
                    )
                    first = await balancer.step(self._skewed(a, b))
                    assert first is not None and first["n"] == 2
                    # Still skewed, but the cooldown holds the second.
                    second = await balancer.step(self._skewed(a, b))
                    assert second is None
                    assert len(balancer.shed_events) == 1

        asyncio.run(run())

    def test_flap_suppression_protects_recent_victims(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=16
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    for _ in range(6):
                        await frontend.open_session()
                    a, b = service.shard_indices
                    await frontend.shed(frontend.sessions_on(b), a)
                    balancer = MonitorBalancer(
                        frontend,
                        consecutive=1,
                        cooldown_s=0.0,
                        flap_suppress_s=3600.0,
                    )
                    first = await balancer.step(self._skewed(a, b))
                    assert first is not None
                    shed_once = set(first["sessions"])
                    # Load flips: the landing shard now reads hot.  The
                    # just-moved sessions are immune, so the balancer
                    # must not bounce them straight back.
                    second = await balancer.step(self._skewed(b, a))
                    if second is not None:
                        assert not (set(second["sessions"]) & shed_once)

        asyncio.run(run())

    def test_resize_resets_shed_hysteresis(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=16
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    for _ in range(8):
                        await frontend.open_session()
                    a, b = service.shard_indices
                    await frontend.shed(frontend.sessions_on(b), a)
                    balancer = MonitorBalancer(
                        frontend, consecutive=2, cooldown_s=0.0
                    )
                    assert await balancer.step(self._skewed(a, b)) is None
                    # A resize lands between the two agreeing samples:
                    # the streak built on the old topology is void.
                    balancer.notify_resize({"from": 2, "to": 3})
                    assert await balancer.step(self._skewed(a, b)) is None
                    assert balancer.shed_events == []

        asyncio.run(run())

    def test_shed_in_progress_defers_a_pending_resize(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=16
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=1, cooldown_s=0.0, max_shards=8
                    )
                    balancer = MonitorBalancer(frontend)
                    scaler.balancer = balancer
                    hot = {i: stats_with_p99(33.3) for i in service.shard_indices}
                    balancer._shedding = True  # a shed is mid-migration
                    assert await scaler.step(hot) is None
                    assert service.n_shards == 2  # deferred, not applied
                    balancer._shedding = False
                    balancer._streak = 1
                    balancer._streak_shard = service.shard_indices[0]
                    assert await scaler.step(hot) == 4  # applies now
                    assert service.n_shards == 4
                    # ... and the applied resize reset the balancer.
                    assert balancer._streak == 0
                    assert balancer._streak_shard is None

        asyncio.run(run())


class TestGatewayShed:
    """The gateway surface: manual shed + the STATS placement section."""

    def test_gateway_shed_and_placement_stats(self, monitor):
        from repro.serving import AsyncRemoteMonitorClient, MonitorGateway

        async def run():
            gateway = MonitorGateway(
                monitor,
                n_shards=2,
                max_sessions=8,
                balance_interval_s=3600.0,  # loop present, never fires
            )
            await gateway.start()
            try:
                client = await AsyncRemoteMonitorClient.connect(
                    gateway.host, gateway.port
                )
                try:
                    for i in range(4):
                        await client.open_session(f"shed-{i}")
                    service = gateway._engine.service
                    occupancy = service.shard_occupancy()
                    hot = max(occupancy, key=occupancy.get)
                    cold = min(occupancy, key=occupancy.get)
                    victims = service.sessions_on(hot)[:1]
                    moved = await gateway.shed(victims, cold)
                    assert moved == {victims[0]: hot}
                    stats = await client.gateway_stats()
                    placement = stats["placement"]
                    assert placement["balancing"] is True
                    assert placement["count"] == 1
                    (event,) = placement["events"]
                    assert event["trigger"] == "manual"
                    assert event["sessions"] == victims
                    # The session still serves from its new home.
                    trajectory = make_random_walk_trajectory(
                        20, n_features=N_FEATURES, seed=9
                    )
                    await client.feed(victims[0], trajectory.frames)
                    seen = 0
                    while seen < 20:
                        event = await asyncio.wait_for(
                            client.next_event(), timeout=30.0
                        )
                        if event.session_id == victims[0]:
                            assert not event.error
                            seen += 1
                finally:
                    await client.aclose()
            finally:
                await gateway.stop()

        asyncio.run(run())

    def test_single_service_gateway_refuses_shed(self, monitor):
        from repro.serving import MonitorGateway

        async def run():
            gateway = MonitorGateway(monitor, n_shards=1, max_sessions=4)
            await gateway.start()
            try:
                with pytest.raises(ConfigurationError):
                    await gateway.shed(["nope"], 0)
            finally:
                await gateway.stop()

        asyncio.run(run())
