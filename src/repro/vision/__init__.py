"""Vision-based automated error labeling (paper Section IV-B).

The paper labels simulator failures orthogonally to the kinematics by
analysing the logged video: colour/contour marker detection, SSIM against
a reference to find block-drop frames, centroid-trace comparison with
Dynamic Time Warping to detect drop-off failures.  This package implements
those primitives on numpy image arrays:

- :mod:`~repro.vision.ssim` — Structural Similarity Index;
- :mod:`~repro.vision.threshold` — colour thresholding / segmentation;
- :mod:`~repro.vision.contours` — connected components and centroids;
- :mod:`~repro.vision.dtw` — Dynamic Time Warping;
- :mod:`~repro.vision.labeling` — the end-to-end failure detector over a
  simulated trial's video log.
"""

from .contours import connected_components, largest_component_centroid, track_centroids
from .dtw import dtw_distance, dtw_path
from .labeling import VisionLabel, detect_failure
from .ssim import ssim
from .threshold import color_distance_mask, threshold_block

__all__ = [
    "VisionLabel",
    "color_distance_mask",
    "connected_components",
    "detect_failure",
    "dtw_distance",
    "dtw_path",
    "largest_component_centroid",
    "ssim",
    "threshold_block",
    "track_centroids",
]
