"""Tests for repro.eval (metrics, ROC, timing, reports)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eval import (
    accuracy,
    auc_score,
    binary_metrics,
    confusion_matrix,
    early_detection_percentage,
    f1_score,
    format_markdown_table,
    format_table,
    gesture_jitter,
    reaction_times,
    roc_curve,
)


class TestBinaryMetrics:
    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 1, 1, 0])
        m = binary_metrics(y_true, y_pred)
        assert (m.tp, m.fn, m.fp, m.tn) == (2, 1, 1, 2)
        assert m.tpr == pytest.approx(2 / 3)
        assert m.tnr == pytest.approx(2 / 3)
        assert m.ppv == pytest.approx(2 / 3)
        assert m.npv == pytest.approx(2 / 3)
        assert m.f1 == pytest.approx(2 / 3)

    def test_perfect(self):
        y = np.array([0, 1, 1, 0])
        m = binary_metrics(y, y)
        assert m.f1 == pytest.approx(1.0)
        assert m.accuracy == pytest.approx(1.0)

    def test_undefined_ratios_are_nan(self):
        m = binary_metrics(np.array([0, 0]), np.array([0, 0]))
        assert np.isnan(m.tpr) and np.isnan(m.ppv)

    def test_rejects_nonbinary(self):
        with pytest.raises(ShapeError):
            binary_metrics(np.array([0, 2]), np.array([0, 1]))


class TestF1AndAccuracy:
    def test_micro_equals_accuracy(self):
        y_true = np.array([0, 1, 2, 2, 1])
        y_pred = np.array([0, 2, 2, 2, 1])
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(
            accuracy(y_true, y_pred)
        )

    def test_macro_average(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 1])
        per_class_0 = binary_metrics(y_true == 0, y_pred == 0).f1
        per_class_1 = binary_metrics(y_true == 1, y_pred == 1).f1
        expected = (per_class_0 + per_class_1) / 2
        assert f1_score(y_true, y_pred, average="macro") == pytest.approx(expected)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([1, 1, 0]), 2)
        assert matrix.tolist() == [[0, 1], [1, 1]]


class TestROC:
    def test_perfect_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y, scores) == pytest.approx(1.0)

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        fpr, tpr, thresholds = roc_curve(y, rng.random(200))
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    def test_auc_equals_rank_statistic(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 300)
        scores = rng.normal(size=300) + y  # informative
        pos = scores[y == 1]
        neg = scores[y == 0]
        rank_stat = (pos[:, None] > neg[None, :]).mean() + 0.5 * (
            pos[:, None] == neg[None, :]
        ).mean()
        assert auc_score(y, scores) == pytest.approx(rank_stat, abs=1e-9)

    def test_single_class_rejected(self):
        with pytest.raises(ShapeError):
            auc_score(np.ones(5), np.random.default_rng(0).random(5))


class TestTiming:
    def test_reaction_time_late_detection(self):
        true = np.array([0, 0, 0, 1, 1, 1, 0, 0])
        pred = np.array([0, 0, 0, 0, 1, 1, 0, 0])
        reactions = reaction_times(true, pred)
        assert len(reactions) == 1
        assert reactions[0][1] == -1.0  # detected one frame late

    def test_reaction_time_early_detection(self):
        true = np.array([0, 0, 0, 0, 1, 1, 0])
        pred = np.array([0, 0, 1, 1, 1, 0, 0])
        reactions = reaction_times(true, pred)
        assert reactions[0][1] == 2.0  # two frames early

    def test_undetected_occurrence_skipped(self):
        true = np.array([0, 1, 1, 0, 1, 1])
        pred = np.array([0, 1, 0, 0, 0, 0])
        reactions = reaction_times(true, pred)
        assert len(reactions) == 1

    def test_gesture_attribution(self):
        true = np.array([0, 1, 1, 0])
        pred = np.array([0, 1, 1, 0])
        gestures = np.array([3, 4, 4, 5])
        reactions = reaction_times(true, pred, gestures)
        assert reactions[0][0] == 4

    def test_early_detection_percentage(self):
        reactions = [(None, 2.0), (None, -1.0), (None, 0.0), (None, 5.0)]
        assert early_detection_percentage(reactions) == pytest.approx(50.0)
        assert np.isnan(early_detection_percentage([]))

    def test_jitter_perfect_prediction(self):
        gestures = np.array([1, 1, 2, 2, 2, 3, 3])
        jitter = gesture_jitter(gestures, gestures)
        for samples in jitter.values():
            assert all(v == 0.0 for v in samples)

    def test_jitter_late_prediction(self):
        true = np.array([1, 1, 1, 2, 2, 2, 2])
        pred = np.array([1, 1, 1, 1, 2, 2, 2])
        jitter = gesture_jitter(true, pred)
        assert jitter[2] == [-1.0]

    def test_jitter_early_prediction(self):
        true = np.array([1, 1, 1, 1, 2, 2, 2])
        pred = np.array([1, 1, 2, 2, 2, 2, 2])
        jitter = gesture_jitter(true, pred)
        assert jitter[2] == [2.0]

    def test_jitter_restrict_mask(self):
        true = np.array([1, 1, 2, 2, 1, 1, 2, 2])
        pred = true.copy()
        mask = np.zeros(8, dtype=bool)
        mask[6:] = True  # only the second G2 occurrence
        jitter = gesture_jitter(true, pred, restrict_to=mask)
        assert len(jitter.get(2, [])) == 1
        assert 1 not in jitter


class TestReports:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_markdown(self):
        text = format_markdown_table(["h1", "h2"], [[1, 2]])
        assert text.splitlines()[1] == "|---|---|"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ShapeError):
            format_table(["a", "b"], [[1]])
