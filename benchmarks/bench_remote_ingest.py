"""Benchmark: remote ingest — concurrent socket sessions into the gateway.

Drives a :class:`repro.serving.MonitorGateway` over **real TCP
sockets**: N concurrent :class:`AsyncRemoteMonitorClient` connections
(one session each) open in a barrier, stream their synthetic
trajectories in chunks, and consume their event streams to completion.
One row per gateway topology (1 embedded engine / 2 shard workers):
aggregate frames per second over the wire, p50/p99 engine tick latency,
the peak number of concurrently open socket sessions, and the fail-safe
counters (which must stay at zero on a healthy run).

The contract rows exercise ``--sessions 64`` (default): the gateway
must *sustain* 64 concurrent socket sessions — all opened before the
first frame, all completing with their full event streams — which
``--check-remote`` gates in the perf CI job (core-gated like the other
wall-clock gates; single-core runners still print the rows).

Results merge into the same ``BENCH_serving.json`` the serving
throughput benchmark writes (under the ``"remote"`` key), so one
artifact tracks the whole serving perf trajectory.

Run:  PYTHONPATH=src python benchmarks/bench_remote_ingest.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

import numpy as np

from repro.serving import (
    AsyncRemoteMonitorClient,
    MonitorGateway,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    monitor_to_bytes,
)

N_FEATURES = 38
CHUNK = 30  # frames per FRAME message: one second of 30 Hz kinematics


async def drive_session(
    host: str,
    port: int,
    session_id: str,
    frames: np.ndarray,
    barrier: asyncio.Barrier,
) -> int:
    """One client connection: open, sync on the barrier, stream, close."""
    try:
        client = await AsyncRemoteMonitorClient.connect(host, port)
        await client.open_session(session_id)
    except BaseException:
        # A party that never reaches the barrier would deadlock every
        # other waiter; break the barrier so the failure surfaces.
        await barrier.abort()
        raise
    try:
        # Every session is open before any frame flows: the gateway
        # provably holds all N sessions concurrently.
        await barrier.wait()
        n_frames = frames.shape[0]
        received = 0

        async def consume():
            nonlocal received
            async for event in client.events():
                assert event.error is None, f"fail-safe event: {event.error}"
                received += 1
                if received == n_frames:
                    return

        consumer = asyncio.create_task(consume())
        for start in range(0, n_frames, CHUNK):
            await client.feed(session_id, frames[start : start + CHUNK])
        await consumer
        summary = await client.close_session(session_id)
        assert summary["n_frames"] == n_frames
        return received
    finally:
        await client.aclose()


async def run_remote(
    monitor_bytes: bytes, n_sessions: int, n_frames: int, n_shards: int
) -> dict:
    """One row: ``n_sessions`` socket sessions against one gateway."""
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=i)
        for i in range(n_sessions)
    ]
    async with MonitorGateway(
        monitor_bytes=monitor_bytes,
        n_shards=n_shards,
        max_sessions=n_sessions,  # headroom: hash placement is uneven
    ) as gateway:
        barrier = asyncio.Barrier(n_sessions + 1)
        tasks = [
            asyncio.create_task(
                drive_session(
                    gateway.host,
                    gateway.port,
                    f"bench-{i:03d}",
                    trajectories[i].frames,
                    barrier,
                )
            )
            for i in range(n_sessions)
        ]
        try:
            await barrier.wait()  # every session is open; start the clock
        except asyncio.BrokenBarrierError:
            pass  # a client failed pre-barrier; gather reports the cause
        start = time.perf_counter()
        received = await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - start
        stats = await gateway.gateway_stats()
        shard_stats = await gateway.shard_stats()
    tick_ms = (
        np.concatenate([s.tick_ms for s in shard_stats.values()])
        if shard_stats
        else np.zeros(0)
    )
    total_frames = int(sum(received))
    return {
        "sessions": n_sessions,
        "shards": n_shards,
        "backend": "reference",
        "frames": total_frames,
        "fps": total_frames / elapsed,
        "tick_p50_ms": float(np.percentile(tick_ms, 50)) if tick_ms.size else 0.0,
        "tick_p99_ms": float(np.percentile(tick_ms, 99)) if tick_ms.size else 0.0,
        "peak_concurrent_sessions": stats["sessions"]["peak_open"],
        "failed_sessions": stats["sessions"]["failed_total"],
        "overflow_disconnects": stats["connections"]["overflow_disconnects"],
    }


def merge_report(path: str, rows: list[dict], summary: dict) -> None:
    """Fold the remote rows into the shared ``BENCH_serving.json``."""
    report: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    report["remote"] = rows
    report.setdefault("summary", {}).update(summary)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trajectories for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=64,
        help="concurrent socket sessions per row (default: %(default)s)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="frames per session (override)"
    )
    parser.add_argument(
        "--json",
        default="BENCH_serving.json",
        help="report to merge the remote rows into (default: %(default)s)",
    )
    parser.add_argument(
        "--check-remote",
        action="store_true",
        help=(
            "exit non-zero unless every row sustained all --sessions "
            "concurrent socket sessions with zero fail-safe closures "
            "(only enforced when >= 2 CPU cores are visible; 1-core "
            "runners still print the rows)"
        ),
    )
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error("--sessions must be >= 1")
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    n_frames = args.frames if args.frames is not None else (120 if args.smoke else 600)
    n_cores = os.cpu_count() or 1

    monitor_bytes = monitor_to_bytes(
        make_synthetic_monitor(n_features=N_FEATURES, seed=0)
    )
    print(
        f"remote ingest — {args.sessions} socket sessions, "
        f"{n_frames} frames/session, {N_FEATURES} features, "
        f"{n_cores} CPU core(s) visible"
    )
    print(
        f"{'shards':>8} {'sessions':>8} {'peak open':>9} {'fps':>10} "
        f"{'tick p50':>9} {'tick p99':>9} {'failed':>7}"
    )
    rows = []
    for n_shards in (1, 2):
        row = asyncio.run(
            run_remote(monitor_bytes, args.sessions, n_frames, n_shards)
        )
        rows.append(row)
        print(
            f"{row['shards']:>8} {row['sessions']:>8} "
            f"{row['peak_concurrent_sessions']:>9} {row['fps']:>10.0f} "
            f"{row['tick_p50_ms']:>7.2f}ms {row['tick_p99_ms']:>7.2f}ms "
            f"{row['failed_sessions']:>7}"
        )

    sustained = min(row["peak_concurrent_sessions"] for row in rows)
    summary = {
        "remote_sessions_sustained": sustained,
        "remote_fps_1shard": rows[0]["fps"],
    }
    print(
        f"\nsustained {sustained} concurrent socket sessions "
        f"(contract: >= 64); 1-shard wire throughput {rows[0]['fps']:.0f} "
        f"frames/s"
    )
    merge_report(args.json, rows, summary)
    print(f"merged remote rows into {args.json}")

    if args.check_remote:
        if n_cores < 2:
            print(
                "check-remote: skipped (needs >= 2 cores for a stable "
                "measurement)"
            )
            return 0
        for row in rows:
            if row["peak_concurrent_sessions"] < args.sessions:
                print(
                    f"FAIL: {row['shards']}-shard row peaked at "
                    f"{row['peak_concurrent_sessions']} concurrent sessions "
                    f"(< {args.sessions})",
                    file=sys.stderr,
                )
                return 1
            if row["failed_sessions"] or row["overflow_disconnects"]:
                print(
                    f"FAIL: {row['shards']}-shard row had "
                    f"{row['failed_sessions']} fail-safe closures / "
                    f"{row['overflow_disconnects']} overflow disconnects",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
