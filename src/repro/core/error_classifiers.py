"""The library of gesture-specific erroneous-gesture classifiers.

The second stage of the monitoring pipeline (paper Section III,
"Erroneous Gesture Detection"): one binary classifier per gesture class,
trained on that gesture's kinematics windows to output
``p(erroneous | gesture, window)``.  The paper's best architectures are
1D-CNNs and LSTMs over windows of 5 (Suturing) or 10 (Block Transfer)
frames; both families are available here via ``architecture``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..config import TrainingConfig, WindowConfig
from ..errors import DatasetError, NotFittedError
from ..gestures.vocabulary import Gesture
from ..jigsaws.dataset import WindowedData


@dataclass
class ErrorClassifierConfig:
    """Architecture/training parameters of one binary error classifier.

    ``architecture`` selects the model family: ``"conv"`` (1D-CNN, the
    paper's best) or ``"lstm"``.  ``hidden`` are the conv filter counts /
    LSTM widths by layer; ``dense_units`` the fully-connected head width.
    """

    architecture: str = "conv"
    hidden: tuple[int, ...] = (32, 16)
    dense_units: int = 16
    dropout: float = 0.2
    use_batch_norm: bool = True
    training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(learning_rate=1e-3, max_epochs=15)
    )
    #: Cap on training windows (stratified); None = use everything.
    max_train_windows: int | None = 8000


class ErrorClassifier:
    """Binary safe/unsafe classifier for a single gesture's windows."""

    def __init__(
        self,
        gesture: Gesture | None,
        config: ErrorClassifierConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.gesture = gesture
        self.config = config or ErrorClassifierConfig()
        self.seed = seed
        self.model: nn.Sequential | None = None
        self.scaler = nn.StandardScaler()
        self._fitted = False
        self.threshold = 0.5

    # ------------------------------------------------------------------
    def _build_model(self, positive_weight: float) -> nn.Sequential:
        cfg = self.config
        layers: list[nn.Layer] = []
        if cfg.architecture == "conv":
            for filters in cfg.hidden:
                layers.append(nn.Conv1D(filters, kernel_size=3, padding="same"))
                layers.append(nn.ReLU())
            if cfg.use_batch_norm:
                layers.append(nn.BatchNorm())
            layers.append(nn.GlobalAveragePool1D())
        elif cfg.architecture == "lstm":
            for i, units in enumerate(cfg.hidden):
                last = i == len(cfg.hidden) - 1
                layers.append(nn.LSTM(units, return_sequences=not last))
            if cfg.use_batch_norm:
                layers.append(nn.BatchNorm())
        else:
            raise DatasetError(f"unknown architecture {cfg.architecture!r}")
        layers.append(nn.Dense(cfg.dense_units))
        layers.append(nn.ReLU())
        if cfg.dropout > 0:
            layers.append(nn.Dropout(cfg.dropout))
        layers.append(nn.Dense(1))
        model = nn.Sequential(layers, seed=self.seed)
        model.compile(
            loss=nn.SigmoidBinaryCrossEntropy(positive_weight=positive_weight),
            optimizer=nn.Adam(cfg.training.learning_rate),
        )
        return model

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray, verbose: bool = False) -> nn.History:
        """Train on windows ``x`` with binary unsafe labels ``y``.

        The positive class is weighted inversely to its prevalence,
        compensating the strong imbalance of several gesture classes
        (paper Table VII: error rates from 4% to 79%).
        """
        cfg = self.config
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).astype(int).reshape(-1)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise DatasetError("x and y must be non-empty with equal rows")
        if len(np.unique(y)) < 2:
            raise DatasetError(
                "training data needs both safe and unsafe examples"
            )
        if cfg.max_train_windows is not None and x.shape[0] > cfg.max_train_windows:
            rng = np.random.default_rng(self.seed)
            pick = rng.permutation(x.shape[0])[: cfg.max_train_windows]
            x, y = x[pick], y[pick]
            if len(np.unique(y)) < 2:  # pathological subsample; rebalance
                x, y = np.asarray(x), np.asarray(y)
                raise DatasetError("subsample lost one class; lower the cap")
        x = self.scaler.fit_transform(x)
        positive_rate = float(y.mean())
        positive_weight = float(np.clip((1 - positive_rate) / max(positive_rate, 1e-3), 0.2, 10.0))
        x_tr, y_tr, x_val, y_val = nn.train_val_split(
            x, y, cfg.training.validation_fraction, rng=self.seed, stratify=True
        )
        self.model = self._build_model(positive_weight)
        callbacks = [
            nn.LearningRateScheduler(
                nn.StepDecay(
                    cfg.training.learning_rate,
                    factor=cfg.training.lr_decay_factor,
                    every=cfg.training.lr_decay_every,
                )
            ),
            nn.EarlyStopping(patience=cfg.training.early_stopping_patience),
        ]
        history = self.model.fit(
            x_tr,
            y_tr,
            epochs=cfg.training.max_epochs,
            batch_size=cfg.training.batch_size,
            validation_data=(x_val, y_val),
            callbacks=callbacks,
            verbose=verbose,
        )
        self._fitted = True
        return history

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Unsafe probability per window."""
        self._check_fitted()
        assert self.model is not None
        x = self.scaler.transform(np.asarray(x, dtype=float))
        return self.model.predict_proba(x).reshape(-1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Binary unsafe decision per window (threshold 0.5 by default)."""
        return (self.predict_proba(x) >= self.threshold).astype(int)

    def timed_predict_proba(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        """(probabilities, mean milliseconds per window)."""
        start = time.perf_counter()
        probs = self.predict_proba(x)
        elapsed = 1000.0 * (time.perf_counter() - start) / max(x.shape[0], 1)
        return probs, elapsed

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("ErrorClassifier must be fitted first")


class ErrorClassifierLibrary:
    """One :class:`ErrorClassifier` per gesture (the paper's "library").

    Gestures whose training data has a single class (e.g. gestures with
    no rubric errors) are recorded as *constant* classifiers that always
    answer safe — matching the paper, where G10/G11 have "no common
    errors and hence no reaction times".
    """

    def __init__(
        self,
        config: ErrorClassifierConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or ErrorClassifierConfig()
        self.seed = seed
        self.classifiers: dict[Gesture, ErrorClassifier] = {}
        self.constant_gestures: set[Gesture] = set()

    # ------------------------------------------------------------------
    def fit(self, data: WindowedData, verbose: bool = False) -> None:
        """Train a classifier per gesture present in ``data``."""
        present = np.unique(data.gesture)
        for class_idx in present:
            gesture = Gesture.from_class_index(int(class_idx))
            subset = data.for_gesture(gesture)
            if subset.n_windows < 20 or len(np.unique(subset.unsafe)) < 2:
                self.constant_gestures.add(gesture)
                continue
            clf = ErrorClassifier(gesture, self.config, seed=self.seed + int(class_idx))
            clf.fit(subset.x, subset.unsafe, verbose=verbose)
            self.classifiers[gesture] = clf

    def has_classifier(self, gesture: Gesture) -> bool:
        """True when a trained (non-constant) classifier exists."""
        return gesture in self.classifiers

    def predict_proba(self, gesture: Gesture, x: np.ndarray) -> np.ndarray:
        """Unsafe probabilities from the gesture's classifier.

        Constant/unknown gestures yield all-zero probabilities (safe).
        """
        clf = self.classifiers.get(gesture)
        if clf is None:
            return np.zeros(np.asarray(x).shape[0])
        return clf.predict_proba(x)

    def gestures(self) -> list[Gesture]:
        """Gestures with trained classifiers, ascending."""
        return sorted(self.classifiers, key=int)
