"""The Raven II simulator's 277-feature state vector layout.

The paper's Gazebo simulator logs 277 kinematic features per sample
(Section IV-B), a superset of the 19-per-arm JIGSAWS variables.  The real
Raven II ``ravenstate`` message carries motor/joint/Cartesian state for
both arms plus desired (commanded) values and housekeeping fields; this
module defines an explicit, documented layout with the same total width
so downstream code (feature selection, logging, fault injection) works
against named blocks instead of magic offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ShapeError

#: (name, width) blocks of the simulator state vector.  Motor/joint blocks
#: carry 8 degrees of freedom per arm (Raven II convention), Cartesian
#: blocks 3 per arm, orientation blocks a 3x3 rotation per arm.
RAVEN_FEATURE_BLOCKS: tuple[tuple[str, int], ...] = (
    ("runlevel", 1),  # operating state of the control software
    ("sublevel", 1),
    ("last_seq", 1),  # sequence number of the last tele-op packet
    ("dt", 1),  # control-loop period (s)
    ("mpos", 16),  # motor positions, 8 per arm
    ("mvel", 16),  # motor velocities
    ("mpos_d", 16),  # desired motor positions
    ("jpos", 16),  # joint positions
    ("jvel", 16),  # joint velocities
    ("jpos_d", 16),  # desired joint positions
    ("pos", 6),  # end-effector xyz, left then right (mm)
    ("pos_d", 6),  # desired end-effector xyz
    ("ori", 18),  # end-effector rotation matrices, row-major
    ("ori_d", 18),  # desired rotation matrices
    ("grasp", 2),  # jaw angles (rad)
    ("grasp_d", 2),  # desired jaw angles
    ("lin_vel", 6),  # end-effector linear velocities
    ("ang_vel", 6),  # end-effector angular velocities
    ("enc_vals", 16),  # raw encoder counts
    ("enc_offsets", 16),
    ("dac_vals", 16),  # commanded DAC outputs
    ("tau", 16),  # commanded joint torques
    ("force", 6),  # estimated tip forces
    ("jac_vel", 12),  # Jacobian-space velocities, 6 per arm
    ("jac_force", 12),  # Jacobian-space forces
    ("gesture_id", 1),  # operator-recorded current gesture (Section IV-B:
    # "we extended the data structure of the Raven II to include the
    # current surgical gesture")
    ("fault_active", 1),  # 1 while the injector is perturbing the state
    ("time_s", 1),  # simulation clock
    ("reserved", 16),  # padding to the published width
)

#: Total width of the state vector (must equal the paper's 277).
RAVEN_STATE_WIDTH = sum(width for _, width in RAVEN_FEATURE_BLOCKS)


@dataclass(frozen=True)
class RavenStateLayout:
    """Index arithmetic over :data:`RAVEN_FEATURE_BLOCKS`.

    Example
    -------
    >>> layout = RavenStateLayout()
    >>> layout.slice("grasp")
    slice(218, 220, None)
    """

    def __post_init__(self) -> None:
        if RAVEN_STATE_WIDTH != 277:
            raise ConfigurationError(
                f"state layout must total 277 features, got {RAVEN_STATE_WIDTH}"
            )

    def offset(self, block: str) -> int:
        """Column offset of ``block`` within the state vector."""
        position = 0
        for name, width in RAVEN_FEATURE_BLOCKS:
            if name == block:
                return position
            position += width
        raise ConfigurationError(f"unknown state block {block!r}")

    def width(self, block: str) -> int:
        """Width of ``block``."""
        for name, width in RAVEN_FEATURE_BLOCKS:
            if name == block:
                return width
        raise ConfigurationError(f"unknown state block {block!r}")

    def slice(self, block: str) -> slice:
        """Column slice of ``block``."""
        start = self.offset(block)
        return slice(start, start + self.width(block))

    def view(self, state: np.ndarray, block: str) -> np.ndarray:
        """A (writable) view of ``block`` within 1-D or 2-D state data."""
        state = np.asarray(state)
        if state.shape[-1] != RAVEN_STATE_WIDTH:
            raise ShapeError(
                f"state vector must have width {RAVEN_STATE_WIDTH}, "
                f"got {state.shape[-1]}"
            )
        return state[..., self.slice(block)]

    def jigsaws_indices(self, arm: str = "left") -> np.ndarray:
        """Columns holding the 19 JIGSAWS variables for one arm.

        Order matches :class:`repro.kinematics.ManipulatorState.to_vector`:
        position (3), rotation (9), linear velocity (3), angular velocity
        (3), grasper angle (1).
        """
        if arm not in ("left", "right"):
            raise ConfigurationError("arm must be 'left' or 'right'")
        half = 0 if arm == "left" else 1
        pos = self.offset("pos") + 3 * half
        ori = self.offset("ori") + 9 * half
        lin = self.offset("lin_vel") + 3 * half
        ang = self.offset("ang_vel") + 3 * half
        grasp = self.offset("grasp") + half
        return np.array(
            [pos, pos + 1, pos + 2]
            + list(range(ori, ori + 9))
            + [lin, lin + 1, lin + 2]
            + [ang, ang + 1, ang + 2]
            + [grasp]
        )

    def jigsaws_38_indices(self) -> np.ndarray:
        """Columns for the full left+right 38-variable JIGSAWS vector."""
        return np.concatenate(
            [self.jigsaws_indices("left"), self.jigsaws_indices("right")]
        )
