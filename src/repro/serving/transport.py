"""Request/reply message protocol between the shard router and workers.

The sharded service talks to each worker process over one duplex
:func:`multiprocessing.Pipe` connection.  Every interaction is a strict
request → reply pair: the router sends a :class:`Request`, the worker
answers with exactly one :class:`Reply`.  Payloads are restricted to
plain data — numpy arrays, the :class:`~repro.serving.service.SessionEvent`
/ :class:`~repro.serving.service.SessionResult` dataclasses, numbers and
strings — so the wire format stays portable across ``fork`` and
``spawn`` start methods.

Since the shared-memory data plane (:mod:`repro.serving.shm`) took over
the per-frame traffic, this pipe carries **control ops only**: session
lifecycle (``open``/``close``), tick triggers whose event payloads ride
the event ring, migration, stats and shutdown.  ``feed`` remains a pipe
op solely for the ``data_plane="pipe"`` fallback fleet.  Sessions are
identified on the rings by the integer ``route`` id assigned at
``open``/``migrate_in`` time, so the data plane never carries strings.

Worker-side exceptions never kill the worker: they are caught, reduced
to ``(error class name, message)`` and re-raised router-side as the
matching :mod:`repro.errors` type (:func:`raise_remote`), so a
misrouted ``feed`` on a shard behaves exactly like the same call on a
local :class:`~repro.serving.service.MonitorService`.

Receiving goes through :func:`recv_message`, which separates the three
ways a pipe read can go wrong — end-of-stream (peer gone, possibly mid
message), a corrupt or truncated payload inside an intact stream, and a
well-formed object of the wrong type — so both sides of the pipe react
correctly: a router treats all three as a dead worker, while a worker
survives corrupt input (error reply, keep serving) and only exits on a
true end-of-stream.  The remote ingest gateway surfaced these edges:
its network byte stream can truncate anywhere, and its fail-safe
contract leans on the router never mistaking garbage for a reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .. import errors
from ..errors import WorkerError


@dataclass(frozen=True)
class Request:
    """One command from the router to a worker.

    ``op`` selects the operation; the remaining fields are that
    operation's arguments (unused ones keep their defaults).  The
    migration pair added for live fleet elasticity:

    - ``migrate_out`` — export ``session_id``'s complete serving state
      (pending frames included) and evict it; the reply carries the
      :func:`~repro.serving.snapshot.session_to_bytes` archive.
    - ``migrate_in`` — adopt the session archive in ``state``; the
      reply carries the imported session id.
    """

    op: str
    session_id: str | None = None
    frames: Any = None
    record_timeline: bool = True
    collect: bool = True
    #: ``migrate_in`` payload: a session archive produced by
    #: :func:`~repro.serving.snapshot.session_to_bytes` (bytes only —
    #: the no-pickled-objects policy applies to migration too).
    state: bytes | None = None
    #: Integer route id the session is addressed by on the shm rings;
    #: carried by ``open`` and ``migrate_in`` (``None`` under the
    #: pipe-only data plane).
    route: int | None = None


@dataclass(frozen=True)
class Reply:
    """One worker answer.

    ``ok`` distinguishes results from worker-side exceptions; on failure
    ``error_type``/``error`` carry the exception's class name and
    message.  ``has_pending`` piggy-backs the worker's post-operation
    backlog state on every reply so the router can track which shards
    still owe ticks without extra round trips.

    ``ingest_errors`` carries deferred failures of the asynchronous
    frame ring: ``feed()`` no longer waits for a per-call ack, so a
    frame block the worker could not ingest (evicting the session on
    its side) surfaces here as ``(route, message)`` pairs on the next
    exchange, and the router fails those sessions safe — the
    ring-era replacement for a synchronous feed error.
    """

    ok: bool
    value: Any = None
    error_type: str | None = None
    error: str | None = None
    has_pending: bool = False
    ingest_errors: tuple = ()


def error_reply(exc: BaseException, has_pending: bool = False) -> Reply:
    """Reduce a worker-side exception to a wire-format :class:`Reply`."""
    return Reply(
        ok=False,
        error_type=type(exc).__name__,
        error=str(exc),
        has_pending=has_pending,
    )


def recv_message(
    conn,
    expected: type | tuple[type, ...],
    *,
    timeout_s: float | None = None,
    who: str = "peer",
) -> Any:
    """Receive one framed object off a :func:`multiprocessing.Pipe` end,
    validated against the protocol.

    Raises
    ------
    EOFError
        The peer's end is closed — including a message truncated by the
        peer dying mid-write (the pipe's length-prefixed framing turns
        that into end-of-file).  The stream is over; a worker should
        exit its loop, a router should declare the worker dead.
    WorkerError
        The stream is intact but this message is unusable: no reply
        within ``timeout_s``, a payload that does not unpickle (bit
        corruption, a non-pickle writer on the pipe), or a well-formed
        object that is not an ``expected`` instance.  A worker may
        answer with an error reply and keep serving.
    """
    try:
        if timeout_s is not None and not conn.poll(timeout_s):
            raise WorkerError(f"{who} unresponsive after {timeout_s}s")
        message = conn.recv()
    except (WorkerError, EOFError):
        raise
    except OSError as exc:
        # Covers recv() on a broken pipe and poll() on a handle closed
        # underneath us (e.g. close() racing an in-flight request).
        raise EOFError(f"{who}: pipe closed: {exc}") from exc
    except Exception as exc:  # noqa: BLE001
        # Anything the unpickler throws on garbage bytes: UnpicklingError,
        # but also AttributeError/ValueError/... from corrupt opcodes.
        raise WorkerError(
            f"{who}: corrupt or truncated message: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(message, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise WorkerError(
            f"{who}: expected {names}, got {type(message).__name__}"
        )
    return message


def raise_remote(reply: Reply) -> None:
    """Re-raise a failed reply as its original :mod:`repro.errors` type.

    Exception classes outside the library's hierarchy degrade to
    :class:`~repro.errors.WorkerError` carrying the original class name.
    """
    if reply.ok:
        return
    cls = getattr(errors, reply.error_type or "", None)
    if isinstance(cls, type) and issubclass(cls, errors.ReproError):
        raise cls(reply.error or "")
    raise errors.WorkerError(f"{reply.error_type}: {reply.error}")
