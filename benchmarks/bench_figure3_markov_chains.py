"""Benchmark: regenerate paper Figure 3 (task Markov chains).

Fits Markov chains to the demonstrations' gesture sequences and compares
them against the published Figure 3 transition probabilities.
"""

from conftest import run_once

from repro.experiments import figure3


def test_figure3_markov_chains(benchmark, scale):
    results = run_once(benchmark, lambda: figure3.run(scale=scale, seed=0))
    print()
    print(figure3.render(results))

    suturing, block_transfer = results
    # The fitted Suturing chain tracks Figure 3a closely.
    assert suturing.mean_abs_probability_error < 0.12
    # Block Transfer is deterministic: all fitted probabilities are 1.
    assert block_transfer.mean_abs_probability_error < 0.01
