"""Property test: session migration is invisible to the event stream.

Sweeps randomised serving setups — conv / LSTM error-stage
architectures, random window lengths and strides, random feature
widths, both inference backends — and asserts that exporting a session
at a **random frame offset**, round-tripping it through the npz session
codec and importing it into a fresh engine reproduces the never-migrated
session's events *bit-identically* (reference backend) or within the
compiled backend's documented ``atol=1e-6`` score contract (discrete
fields always exact).

The offset is the interesting axis: it lands in every phase of the
window machinery — mid-warm-up (ring not yet full), exactly on a window
boundary, between strides — and the ring/emission counters must survive
each one.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WindowConfig
from repro.serving import (
    MonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    session_from_bytes,
    session_to_bytes,
)

N_FRAMES = 24


@given(
    architecture=st.sampled_from(["conv", "lstm"]),
    hidden=st.sampled_from([(4,), (8,), (4, 4)]),
    window=st.integers(3, 7),
    stride=st.integers(1, 3),
    n_features=st.integers(3, 10),
    seed=st.integers(0, 2**16),
    offset=st.integers(0, N_FRAMES),
    backend=st.sampled_from(["reference", "compiled"]),
)
@settings(max_examples=25, deadline=None)
def test_export_import_at_any_offset_is_bit_identical(
    architecture, hidden, window, stride, n_features, seed, offset, backend
):
    monitor = make_synthetic_monitor(
        n_features=n_features,
        seed=seed,
        gesture_window=WindowConfig(window, stride),
        error_window=WindowConfig(window, 1),
        architecture=architecture,
        hidden=hidden,
    )
    trajectory = make_random_walk_trajectory(
        N_FRAMES, n_features=n_features, seed=seed + 1
    )

    reference = MonitorService(monitor, max_sessions=2, backend=backend)
    reference.open_session("s")
    reference.feed("s", trajectory.frames)
    ref_events = reference.drain()
    ref_result = reference.close_session("s")

    source = MonitorService(monitor, max_sessions=2, backend=backend)
    source.open_session("s")
    source.feed("s", trajectory.frames)
    events = []
    for _ in range(offset):
        events += source.tick()
    state = source.export_session("s", remove=True)
    target = MonitorService(monitor, max_sessions=2, backend=backend)
    target.import_session(session_from_bytes(session_to_bytes(state)))
    events += target.drain()
    result = target.close_session("s")

    # Discrete fields are exact under every backend; so is the order.
    assert [
        (e.session_id, e.frame_index, e.gesture, e.flag) for e in events
    ] == [(e.session_id, e.frame_index, e.gesture, e.flag) for e in ref_events]
    assert np.array_equal(result.gestures, ref_result.gestures)
    if backend == "reference":
        # Bit-identical scores: the ring rows, emission counters and
        # pending backlog moved exactly, and the reference backend is
        # batch-invariant.
        assert [e.score for e in events] == [e.score for e in ref_events]
        assert np.array_equal(
            result.unsafe_scores, ref_result.unsafe_scores
        )
        assert np.array_equal(result.unsafe_flags, ref_result.unsafe_flags)
    else:
        np.testing.assert_allclose(
            [e.score for e in events],
            [e.score for e in ref_events],
            atol=1e-6,
        )
