"""Load-aware placement: shed sessions off hot shards, continuously.

The consistent-hash ring is deliberately load-blind — placement by id
hash keeps routing stateless and resize migrations minimal — but it
means an unlucky key distribution (or a few unusually heavy sessions)
can pile work onto one shard while its neighbors idle.  The hot shard's
tick latency — and with it every one of its sessions' alert latency —
climbs toward the frame deadline long before the *fleet-wide* load
would justify adding capacity.  That skew is exactly the tail-latency
failure mode a real-time monitor cannot afford: resize fixes "too much
total load", not "the load is in the wrong place".

This module is the second control level that fixes the skew:

- :func:`plan_sheds` is the pure *policy* — a function from a
  ``(shard_stats, occupancy)`` snapshot to either one bounded move
  ("take ``n_sessions`` off shard ``hot``, land them on ``cold``") or
  ``None`` when the fleet is in band.  Like
  :func:`~repro.serving.sharded.suggest_shard_count` it owns no I/O and
  is trivially unit-testable.
- :class:`MonitorBalancer` is the *actuator*: a background loop over an
  :class:`~repro.serving.async_frontend.AsyncShardedMonitor` that polls
  per-shard p99 tick latency and occupancy, runs the policy under
  hysteresis (consecutive agreement on the same hot shard, a cooldown
  between applied sheds, a per-cycle migration budget, and per-session
  flap suppression), and applies the move through
  :meth:`AsyncShardedMonitor.shed` — the export→import migration path,
  so event streams stay bit-identical to an unbalanced run.

Together with :class:`~repro.serving.autoscaler.MonitorAutoscaler` this
forms a two-level controller — **resize for capacity, shed for skew** —
and the two levels are explicitly coupled so they never fight: the
autoscaler defers an apply while a shed is mid-flight
(:attr:`MonitorBalancer.shed_in_progress`), and an applied resize calls
:meth:`MonitorBalancer.notify_resize`, which resets the balancer's
hot-streak and starts its cooldown (post-resize stats describe a
topology that no longer exists; re-observe before moving anything).
"""

from __future__ import annotations

import asyncio
import logging
from collections.abc import Callable
from dataclasses import dataclass

from ..errors import ConfigurationError, ReproError
from .async_frontend import AsyncShardedMonitor
from .service import ServiceStats

logger = logging.getLogger(__name__)

__all__ = ["MonitorBalancer", "ShedPlan", "plan_sheds"]


@dataclass(frozen=True)
class ShedPlan:
    """One bounded rebalancing move recommended by :func:`plan_sheds`.

    ``hot``/``cold`` are shard indices, ``n_sessions`` how many sessions
    to move (already clamped to the migration budget, the cold shard's
    free capacity, and half the occupancy gap), and the two p99 figures
    are the evidence the decision was made on — they travel into the
    shed event so STATS clients and the durable log can audit it.
    """

    hot: int
    cold: int
    n_sessions: int
    p99_max_ms: float
    p99_median_ms: float


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def plan_sheds(
    shard_stats: dict[int, ServiceStats],
    occupancy: dict[int, int],
    *,
    skew_ratio: float = 1.5,
    min_p99_ms: float = 1.0,
    max_moves: int = 8,
    max_sessions_per_shard: int | None = None,
) -> ShedPlan | None:
    """Decide whether — and how much — to shed, from one fleet snapshot.

    The policy half of load-aware placement (no I/O; the actuator is
    :class:`MonitorBalancer`).  A shard is *hot* when its p99 tick
    latency exceeds ``skew_ratio`` times the fleet median — a relative
    trigger, so a uniformly loaded fleet near its deadline asks for a
    **resize** (capacity), never a shed (which cannot help).  Latencies
    below ``min_p99_ms`` are treated as noise: on an idle fleet the p99
    ratio between shards is meaningless.

    The move size is occupancy-driven: tick cost scales with resident
    sessions, so the plan moves half the occupancy gap between the hot
    shard and the least-occupied shard, clamped by ``max_moves`` (the
    per-cycle migration budget — each move is an export→import pipe
    exchange that briefly pauses the fleet) and by the cold shard's
    free slots when ``max_sessions_per_shard`` is given.  A hot shard
    whose occupancy is already within one session of the coldest yields
    ``None``: migration cannot improve a fleet that is
    occupancy-balanced, and the guard is what makes repeated
    plan→shed→plan cycles converge even while the latency window still
    remembers the old skew.

    Returns a :class:`ShedPlan` or ``None`` when the fleet is in band.
    """
    if skew_ratio < 1.0:
        raise ConfigurationError("skew_ratio must be >= 1.0")
    if max_moves < 1:
        raise ConfigurationError("max_moves must be >= 1")
    shards = [index for index in shard_stats if index in occupancy]
    if len(shards) < 2:
        return None
    p99 = {index: shard_stats[index].percentile_ms(99.0) for index in shards}
    hot = max(shards, key=lambda index: (p99[index], occupancy[index]))
    median = _median(list(p99.values()))
    if p99[hot] < min_p99_ms:
        return None
    if p99[hot] <= skew_ratio * max(median, 1e-12):
        return None
    cold = min(shards, key=lambda index: (occupancy[index], p99[index], index))
    if cold == hot:
        return None
    gap = occupancy[hot] - occupancy[cold]
    if gap <= 1:
        return None  # occupancy-balanced: a move cannot reduce the skew
    n_sessions = min(max_moves, gap // 2)
    if max_sessions_per_shard is not None:
        n_sessions = min(n_sessions, max_sessions_per_shard - occupancy[cold])
    if n_sessions < 1:
        return None
    return ShedPlan(
        hot=hot,
        cold=cold,
        n_sessions=n_sessions,
        p99_max_ms=p99[hot],
        p99_median_ms=median,
    )


class MonitorBalancer:
    """Poll a fleet's skew and live-shed sessions under hysteresis.

    Parameters
    ----------
    frontend:
        The :class:`AsyncShardedMonitor` to observe and rebalance.
    interval_s:
        Polling cadence of the background loop (:meth:`start`).
    skew_ratio / min_p99_ms:
        The policy's trigger band (see :func:`plan_sheds`).
    max_moves:
        Per-cycle migration budget passed to the policy — an applied
        shed never moves more than this many sessions at once.
    consecutive:
        How many consecutive evaluations must name the *same* hot shard
        before a plan is applied.
    cooldown_s:
        Minimum seconds between two applied sheds — and after a resize
        (:meth:`notify_resize`), so the two controller levels never
        actuate back to back on the same stale window.
    flap_suppress_s:
        A session that was just shed is immune from being shed again
        for this long, so two shards cannot ping-pong the same victims.
    on_shed:
        Optional callback invoked with each applied shed's summary dict
        (how the remote gateway surfaces placement changes in STATS and
        tees ``shed`` markers into the durable event log).

    Use :meth:`step` directly for deterministic, externally-driven
    evaluation (tests, cron-style operators), or :meth:`start` /
    :meth:`stop` for the self-driving loop.
    """

    def __init__(
        self,
        frontend: AsyncShardedMonitor,
        *,
        interval_s: float = 2.0,
        skew_ratio: float = 1.5,
        min_p99_ms: float = 1.0,
        max_moves: int = 8,
        consecutive: int = 2,
        cooldown_s: float = 10.0,
        flap_suppress_s: float = 60.0,
        on_shed: Callable[[dict], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be > 0")
        if skew_ratio < 1.0:
            raise ConfigurationError("skew_ratio must be >= 1.0")
        if max_moves < 1:
            raise ConfigurationError("max_moves must be >= 1")
        if consecutive < 1:
            raise ConfigurationError("consecutive must be >= 1")
        if cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be >= 0")
        if flap_suppress_s < 0:
            raise ConfigurationError("flap_suppress_s must be >= 0")
        self._frontend = frontend
        self.interval_s = float(interval_s)
        self.skew_ratio = float(skew_ratio)
        self.min_p99_ms = float(min_p99_ms)
        self.max_moves = int(max_moves)
        self.consecutive = int(consecutive)
        self.cooldown_s = float(cooldown_s)
        self.flap_suppress_s = float(flap_suppress_s)
        self._on_shed = on_shed
        #: Applied sheds, oldest first (summary dicts).
        self.shed_events: list[dict] = []
        self._streak_shard: int | None = None
        self._streak = 0
        self._last_applied: float | None = None
        self._recently_shed: dict[str, float] = {}
        self._shedding = False
        self._task: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def shed_in_progress(self) -> bool:
        """True while a shed is actively migrating sessions.

        The autoscaler checks this immediately before applying a resize
        and defers if set — the one direction of the two-level coupling
        the balancer owns (the other is :meth:`notify_resize`).
        """
        return self._shedding

    def notify_resize(self, summary: dict | None = None) -> None:
        """A resize was applied: reset hysteresis, start the cooldown.

        Called by :class:`~repro.serving.autoscaler.MonitorAutoscaler`
        (and the gateway's manual resize path).  Post-resize stats
        describe shards that may no longer exist and sessions that just
        moved; the hot-streak built on them is void, and the cooldown
        gives the new topology a full observation window before the
        balancer considers moving anything.
        """
        self._streak_shard = None
        self._streak = 0
        try:
            self._last_applied = asyncio.get_running_loop().time()
        except RuntimeError:  # outside a loop (sync tests): skip cooldown
            self._last_applied = None
        if summary:
            logger.debug("balancer hysteresis reset by resize: %s", summary)

    async def step(
        self,
        shard_stats: dict[int, ServiceStats] | None = None,
        occupancy: dict[int, int] | None = None,
    ) -> dict | None:
        """Run one evaluation; apply the shed if hysteresis allows.

        ``shard_stats`` / ``occupancy`` override the fleet poll
        (deterministic tests / external metric pipelines).  Returns the
        applied shed's summary dict, or ``None`` when nothing was
        applied — in band, streak not yet long enough, cooling down, or
        every candidate victim still flap-suppressed.
        """
        if shard_stats is None:
            shard_stats = await self._frontend.shard_stats()
        if occupancy is None:
            occupancy = self._frontend.shard_occupancy()
        plan = plan_sheds(
            shard_stats,
            occupancy,
            skew_ratio=self.skew_ratio,
            min_p99_ms=self.min_p99_ms,
            max_moves=self.max_moves,
            max_sessions_per_shard=getattr(
                self._frontend.service, "max_sessions_per_shard", None
            ),
        )
        if plan is None:
            self._streak_shard = None
            self._streak = 0
            return None
        if plan.hot != self._streak_shard:
            self._streak_shard = plan.hot
            self._streak = 1
        else:
            self._streak += 1
        if self._streak < self.consecutive:
            return None
        now = asyncio.get_running_loop().time()
        if (
            self._last_applied is not None
            and now - self._last_applied < self.cooldown_s
        ):
            return None
        victims = self._pick_victims(plan, now)
        if not victims:
            return None
        self._shedding = True
        try:
            moved = await self._frontend.shed(victims, plan.cold)
        finally:
            self._shedding = False
        now = asyncio.get_running_loop().time()
        self._last_applied = now
        self._streak_shard = None
        self._streak = 0
        if not moved:
            return None  # every victim closed/failed under our feet
        for session_id in moved:
            self._recently_shed[session_id] = now
        summary = {
            "from": plan.hot,
            "to": plan.cold,
            "sessions": sorted(moved),
            "n": len(moved),
            "p99_max_ms": round(plan.p99_max_ms, 3),
            "p99_median_ms": round(plan.p99_median_ms, 3),
            "trigger": "balancer",
        }
        self.shed_events.append(summary)
        if self._on_shed is not None:
            self._on_shed(summary)
        return summary

    def _pick_victims(self, plan: ShedPlan, now: float) -> list[str]:
        """Select which of the hot shard's sessions the plan moves.

        Flap suppression is applied here: a session shed within the last
        ``flap_suppress_s`` seconds is skipped, so oscillating load
        cannot bounce the same sessions back and forth (the suppression
        map is pruned on the same pass).  Victims are taken in opening
        order — deterministic, so a failure names a reproducible set.
        """
        for session_id, when in list(self._recently_shed.items()):
            if now - when >= self.flap_suppress_s:
                del self._recently_shed[session_id]
        candidates = [
            session_id
            for session_id in self._frontend.sessions_on(plan.hot)
            if session_id not in self._recently_shed
        ]
        return candidates[: plan.n_sessions]

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the background polling loop (idempotent)."""
        if self._task is None and not self._closed:
            self._task = asyncio.create_task(
                self._loop(), name="monitor-balancer"
            )

    async def _loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.interval_s)
            if self._closed:
                return
            try:
                await self.step()
            except ReproError:
                # A mid-shed crash fails its sessions safe through the
                # fleet's own paths; a capacity rejection stopped the
                # batch early.  Either way the next poll re-evaluates.
                continue

    async def stop(self) -> None:
        """End the polling loop.  Idempotent; :meth:`step` keeps working."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass  # the expected outcome of cancel()
            except Exception as exc:  # noqa: BLE001 - a dead loop must not
                # abort the caller's shutdown path, but the error it died
                # with is still worth the log line.
                logger.warning("balancer loop ended with error: %s", exc)
            self._task = None

    async def __aenter__(self) -> "MonitorBalancer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
