"""Fleet analytics over the durable event store.

The paper's evaluation artifacts — per-gesture error rates, per-
procedure timelines, detection-latency distributions — computed from
*live traffic* instead of offline replays: every function here runs
over an :class:`~repro.serving.eventstore.EventStoreReader` (the
replayable on-disk log the serving layers tee into) and returns plain
JSON-shaped dicts, plus CSV/JSON export helpers for downstream
clinical systems.

Conventions: one stored event per monitored frame; ``flag`` marks the
thresholded unsafe decision, so an *error rate* is flagged/total over
the grouping key; events with ``error`` set are fail-safe terminals
(worker crashes, ingest failures) and are excluded from error-rate
denominators — a monitoring outage is an availability incident, not an
unsafe-gesture observation.  Alert latency is the stored per-event
``latency_us`` (frame ingest → event emission), present when the
emitting service measured it (``> 0``).
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .eventstore import EventStoreReader

__all__ = [
    "alert_latency_summary",
    "error_rates_by_gesture",
    "error_rates_by_session",
    "error_rates_by_shard",
    "export_events_csv",
    "export_report_json",
    "failsafe_summary",
    "fleet_report",
]

#: Percentiles reported by :func:`alert_latency_summary`.
LATENCY_PERCENTILES = (50.0, 90.0, 99.0)


def _rate_table(reader: "EventStoreReader", key_fn) -> dict:
    """``{key: {events, flagged, rate}}`` over non-terminal events."""
    table: dict = {}
    for record in reader.iter_records():
        if record.kind != "event":
            continue
        event = record.event
        assert event is not None
        if event.error is not None:
            continue
        row = table.setdefault(key_fn(record), {"events": 0, "flagged": 0})
        row["events"] += 1
        row["flagged"] += int(event.flag)
    for row in table.values():
        row["rate"] = row["flagged"] / row["events"] if row["events"] else 0.0
    # Keys within one table are homogeneous (all gesture ints, or all
    # session-id strings), so a plain sort gives numeric order for
    # gestures instead of the lexicographic "0, 1, 11, 2" trap.
    return dict(sorted(table.items()))


def error_rates_by_gesture(reader: "EventStoreReader") -> dict:
    """Unsafe-flag rate per gesture label: ``{gesture: {events, flagged, rate}}``."""
    return _rate_table(reader, lambda record: int(record.event.gesture))


def error_rates_by_session(reader: "EventStoreReader") -> dict:
    """Unsafe-flag rate per procedure (session id)."""
    return _rate_table(reader, lambda record: record.event.session_id)


def error_rates_by_shard(reader: "EventStoreReader") -> dict:
    """Unsafe-flag rate per emitting shard (``-1`` = unsharded layer)."""
    return _rate_table(reader, lambda record: int(record.shard))


def alert_latency_summary(reader: "EventStoreReader") -> dict:
    """Frame-ingest→event-emission latency distribution, exact percentiles.

    Uses the raw stored samples (``latency_us > 0``) rather than the
    telemetry registry's bucketed estimates, so offline analysis gets
    exact p50/p90/p99.
    """
    samples = np.array(
        [
            record.event.latency_us
            for record in reader.iter_records()
            if record.kind == "event" and record.event.latency_us > 0.0
        ]
    )
    if samples.size == 0:
        return {"count": 0, "mean_us": 0.0} | {
            f"p{int(q)}_us": 0.0 for q in LATENCY_PERCENTILES
        }
    summary = {"count": int(samples.size), "mean_us": float(samples.mean())}
    for q in LATENCY_PERCENTILES:
        summary[f"p{int(q)}_us"] = float(np.percentile(samples, q))
    return summary


def failsafe_summary(reader: "EventStoreReader") -> dict:
    """Fail-safe/crash accounting: terminal events and affected sessions."""
    events = 0
    sessions: dict[str, str] = {}
    for record in reader.iter_records():
        if record.kind != "event":
            continue
        event = record.event
        assert event is not None
        if event.error is not None:
            events += 1
            sessions.setdefault(event.session_id, event.error)
    return {
        "events": events,
        "sessions": len(sessions),
        "by_session": dict(sorted(sessions.items())),
    }


def fleet_report(reader: "EventStoreReader") -> dict:
    """The full aggregate report over one store, JSON-shaped.

    Combines totals, per-gesture / per-session / per-shard error
    rates, the alert-latency distribution, fail-safe counts, and the
    recorded fleet markers (resizes) — everything a downstream system
    needs from one campaign in one document.
    """
    total = flagged = 0
    markers = []
    for record in reader.iter_records():
        if record.kind == "marker":
            markers.append(record.marker)
        elif record.event is not None and record.event.error is None:
            total += 1
            flagged += int(record.event.flag)
    return {
        "events": total,
        "flagged": flagged,
        "flag_rate": flagged / total if total else 0.0,
        "sessions": len(reader.session_ids()),
        "by_gesture": error_rates_by_gesture(reader),
        "by_session": error_rates_by_session(reader),
        "by_shard": error_rates_by_shard(reader),
        "alert_latency": alert_latency_summary(reader),
        "failsafe": failsafe_summary(reader),
        "markers": markers,
    }


def export_report_json(reader: "EventStoreReader", path: str | os.PathLike) -> dict:
    """Write :func:`fleet_report` to ``path`` as JSON; returns the report."""
    report = fleet_report(reader)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


#: Column order of :func:`export_events_csv` rows.
CSV_COLUMNS = (
    "seq",
    "shard",
    "session_id",
    "frame_index",
    "gesture",
    "score",
    "flag",
    "error",
    "latency_us",
)


def export_events_csv(reader: "EventStoreReader", path: str | os.PathLike) -> int:
    """Write every stored event as one CSV row; returns the row count.

    ``score`` is rendered with ``repr`` (shortest round-tripping
    float), so a CSV consumer parsing back to float64 recovers the
    exact stored bits.
    """
    rows = 0
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_COLUMNS)
        for record in reader.iter_records():
            if record.kind != "event":
                continue
            event = record.event
            assert event is not None
            writer.writerow(
                [
                    record.seq,
                    record.shard,
                    event.session_id,
                    event.frame_index,
                    event.gesture,
                    repr(event.score),
                    int(event.flag),
                    "" if event.error is None else event.error,
                    repr(event.latency_us),
                ]
            )
            rows += 1
    return rows
