"""Fleet telemetry registry: counters and histograms with mergeable snapshots.

Every serving layer keeps a :class:`TelemetryRegistry` of named
:class:`Counter` and :class:`Histogram` instruments —
``MonitorService`` counts emitted/flagged events and observes
alert latency (frame ingest → event emission) per tick; the sharded
router adds fail-safe and dropped-log counters; the gateway surfaces
the whole merged tree in ``gateway_stats()`` and therefore in the
STATS wire reply.

The design constraint is the process topology: worker shards live in
other processes, so instruments must *merge* — :meth:`TelemetryRegistry.
snapshot` produces a plain-JSON dict that crosses the worker pipe, and
:meth:`TelemetryRegistry.merge` folds any number of snapshots into an
aggregate registry whose histograms still answer percentile queries
(bucket-wise addition; bounds must agree).  Instruments are plain
Python counters — cheap enough for the tick loop — and are *not*
locked: each registry is owned by one thread/process and crosses
boundaries only as immutable snapshots.
"""

from __future__ import annotations

import bisect

from ..errors import ConfigurationError

__all__ = ["Counter", "Histogram", "TelemetryRegistry"]

#: Default histogram bucket upper bounds: log2-spaced microseconds from
#: 1 µs to ~67 s, a range that covers sub-tick latencies through multi-
#: second stalls.  27 finite buckets + one overflow bucket.
DEFAULT_BOUNDS = tuple(float(2**i) for i in range(27))


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Histogram:
    """A fixed-bucket histogram with percentile estimation.

    ``bounds`` are inclusive upper bounds of the finite buckets, in
    increasing order; observations above the last bound land in the
    overflow bucket.  :meth:`percentile` answers from the cumulative
    bucket counts — the estimate is the smallest bound whose
    cumulative count covers the requested rank (the overflow bucket
    reports the largest finite bound), so merged cross-process
    histograms stay queryable without shipping raw samples.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def mean(self) -> float:
        """Mean of all observations (exact — tracked outside buckets)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucketed ``q``-th percentile (upper-bound estimate)."""
        if not self.count:
            return 0.0
        rank = max(1, int(round(q / 100.0 * self.count)))
        running = 0
        for i, n in enumerate(self.buckets):
            running += n
            if running >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]


class TelemetryRegistry:
    """A named set of instruments with mergeable JSON snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        """Get-or-create the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def snapshot(self) -> dict:
        """Plain-JSON state: crosses pipes, merges, serialises."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "buckets": list(h.buckets),
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean(),
                    "p50": h.percentile(50.0),
                    "p99": h.percentile(99.0),
                }
                for name, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` into this registry (additive)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, state in snapshot.get("histograms", {}).items():
            bounds = tuple(float(b) for b in state["bounds"])
            histogram = self.histogram(name, bounds)
            if histogram.bounds != bounds:
                raise ConfigurationError(
                    f"histogram {name!r}: cannot merge differing bucket bounds"
                )
            for i, n in enumerate(state["buckets"]):
                histogram.buckets[i] += int(n)
            histogram.count += int(state["count"])
            histogram.total += float(state["total"])
