"""Named kinematic feature groups and subset selection.

The paper's erroneous-gesture experiments (Tables V and VI) ablate the
input features: "All" (the full 38-dimensional vector), versus
combinations of Cartesian position (C), rotation matrix (R) and grasper
angle (G).  This module gives each column of the 38-dimensional vector a
stable name and lets callers select subsets by group.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..errors import ConfigurationError, ShapeError
from .state import N_VARIABLES_PER_ARM


class FeatureGroup(str, Enum):
    """Feature groups used in the paper's feature-subset ablations."""

    CARTESIAN = "C"
    ROTATION = "R"
    LINEAR_VELOCITY = "V"
    ANGULAR_VELOCITY = "W"
    GRASPER = "G"

    @classmethod
    def parse(cls, spec: "str | FeatureGroup") -> "FeatureGroup":
        """Parse a single-letter code or enum member into a group."""
        if isinstance(spec, FeatureGroup):
            return spec
        try:
            return cls(spec.upper())
        except (ValueError, AttributeError) as exc:
            valid = ", ".join(member.value for member in cls)
            raise ConfigurationError(
                f"unknown feature group {spec!r}; valid codes: {valid}"
            ) from exc


#: Per-arm column offsets of each feature group within the 19-variable layout.
_GROUP_OFFSETS: dict[FeatureGroup, list[int]] = {
    FeatureGroup.CARTESIAN: list(range(0, 3)),
    FeatureGroup.ROTATION: list(range(3, 12)),
    FeatureGroup.LINEAR_VELOCITY: list(range(12, 15)),
    FeatureGroup.ANGULAR_VELOCITY: list(range(15, 18)),
    FeatureGroup.GRASPER: [18],
}

#: All feature groups, in on-disk column order.
FEATURE_GROUPS: tuple[FeatureGroup, ...] = (
    FeatureGroup.CARTESIAN,
    FeatureGroup.ROTATION,
    FeatureGroup.LINEAR_VELOCITY,
    FeatureGroup.ANGULAR_VELOCITY,
    FeatureGroup.GRASPER,
)

_PER_ARM_NAMES: list[str] = (
    ["pos_x", "pos_y", "pos_z"]
    + [f"rot_{r}{c}" for r in range(3) for c in range(3)]
    + ["vel_x", "vel_y", "vel_z"]
    + ["angvel_x", "angvel_y", "angvel_z"]
    + ["grasper_angle"]
)

#: Human-readable names for every column of the 38-dimensional vector.
ALL_FEATURES: tuple[str, ...] = tuple(
    f"{arm}_{name}" for arm in ("left", "right") for name in _PER_ARM_NAMES
)


def feature_indices(
    groups: "str | FeatureGroup | list[str | FeatureGroup] | None" = None,
) -> np.ndarray:
    """Column indices (into the 38-wide vector) for the requested groups.

    Parameters
    ----------
    groups:
        ``None`` selects everything.  Otherwise a group code (``"C"``),
        a concatenated string of codes (``"CRG"``), a
        :class:`FeatureGroup`, or a list of either.

    Returns
    -------
    numpy.ndarray
        Sorted unique column indices covering both manipulators.
    """
    if groups is None:
        return np.arange(2 * N_VARIABLES_PER_ARM)
    parsed = _parse_groups(groups)
    indices: list[int] = []
    for arm in range(2):
        base = arm * N_VARIABLES_PER_ARM
        for group in parsed:
            indices.extend(base + offset for offset in _GROUP_OFFSETS[group])
    return np.array(sorted(set(indices)), dtype=int)


def feature_names(
    groups: "str | FeatureGroup | list[str | FeatureGroup] | None" = None,
) -> list[str]:
    """Names of the columns selected by ``groups`` (see :func:`feature_indices`)."""
    return [ALL_FEATURES[i] for i in feature_indices(groups)]


def n_features(
    groups: "str | FeatureGroup | list[str | FeatureGroup] | None" = None,
) -> int:
    """Number of columns selected by ``groups``."""
    return int(feature_indices(groups).size)


def select_features(
    data: np.ndarray,
    groups: "str | FeatureGroup | list[str | FeatureGroup] | None" = None,
) -> np.ndarray:
    """Select feature-group columns from kinematics data.

    ``data`` may be 2-D ``(frames, 38)`` or 3-D ``(windows, window, 38)``;
    the last axis must be the 38-wide feature axis.
    """
    data = np.asarray(data)
    if data.ndim < 2 or data.shape[-1] != 2 * N_VARIABLES_PER_ARM:
        raise ShapeError(
            "data must have the 38-wide feature vector on its last axis, "
            f"got shape {data.shape}"
        )
    return data[..., feature_indices(groups)]


def _parse_groups(
    groups: "str | FeatureGroup | list[str | FeatureGroup]",
) -> list[FeatureGroup]:
    if isinstance(groups, FeatureGroup):
        return [groups]
    if isinstance(groups, str):
        return [FeatureGroup.parse(code) for code in groups]
    return [FeatureGroup.parse(item) for item in groups]
