"""Paper Table V: erroneous-gesture classification setups for Suturing.

Evaluates the erroneous-gesture detection step in isolation (perfect
gesture boundaries) under the paper's ablation grid: gesture-specific
vs non-gesture-specific, LSTM vs 1D-CNN, all features vs the
Cartesian+Rotation+Grasper subset — reporting micro-averaged TPR, TNR,
PPV and NPV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import WindowConfig
from ..core import BaselineMonitor, ErrorClassifierLibrary
from ..eval.metrics import BinaryMetrics, binary_metrics
from ..eval.reports import format_table
from ..gestures.vocabulary import Gesture
from ..jigsaws.dataset import SurgicalDataset
from ..jigsaws.synthesis import make_suturing_dataset
from ..kinematics.features import feature_indices
from .common import ExperimentScale, get_scale


@dataclass
class Table5Row:
    """One ablation setup's micro-averaged metrics."""

    setup: str
    model: str
    features: str
    metrics: BinaryMetrics


def _evaluate_setup(
    train: SurgicalDataset,
    test: SurgicalDataset,
    preset: ExperimentScale,
    architecture: str,
    features: str | None,
    gesture_specific: bool,
    seed: int,
    window: WindowConfig,
) -> BinaryMetrics:
    idx = None if features is None else feature_indices(features)
    tr = train.windows(window, feature_indices=idx)
    te = test.windows(window, feature_indices=idx)
    if gesture_specific:
        library = ErrorClassifierLibrary(
            preset.error_config(architecture), seed=seed
        )
        library.fit(tr)
        probs = np.zeros(te.n_windows)
        for class_idx in np.unique(te.gesture):
            gesture = Gesture.from_class_index(int(class_idx))
            mask = te.gesture == class_idx
            probs[mask] = library.predict_proba(gesture, te.x[mask])
    else:
        baseline = BaselineMonitor(
            preset.error_config(architecture, for_baseline=True), seed=seed
        )
        baseline.fit(tr)
        probs = baseline.predict_proba(te.x)
    return binary_metrics(te.unsafe, (probs >= 0.5).astype(int))


#: The paper's Table V grid (setup, architecture, feature subset).
TABLE_V_GRID: tuple[tuple[str, str, str | None], ...] = (
    ("gesture-specific", "lstm", None),
    ("gesture-specific", "lstm", "CRG"),
    ("gesture-specific", "conv", "CRG"),
    ("gesture-specific", "conv", None),
    ("non-gesture-specific", "lstm", None),
)


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    dataset: SurgicalDataset | None = None,
    grid: tuple[tuple[str, str, str | None], ...] = TABLE_V_GRID,
) -> list[Table5Row]:
    """Evaluate the ablation grid on one Suturing LOSO fold."""
    preset = get_scale(scale)
    if dataset is None:
        dataset = make_suturing_dataset(n_demos=preset.suturing_demos, rng=seed)
    train, test = dataset.split_by_trials(held_out_trial)
    window = WindowConfig(5, 1)  # paper: time-window 5, stride 1
    rows = []
    for setup, architecture, features in grid:
        metrics = _evaluate_setup(
            train,
            test,
            preset,
            architecture,
            features,
            gesture_specific=setup == "gesture-specific",
            seed=seed,
            window=window,
        )
        rows.append(
            Table5Row(
                setup=setup,
                model=architecture,
                features=features or "All",
                metrics=metrics,
            )
        )
    return rows


def render(rows: list[Table5Row], title: str | None = None) -> str:
    """ASCII rendering of the ablation grid results."""
    headers = ["Setup", "Model", "Features", "TPR", "TNR", "PPV", "NPV"]
    body = [
        [
            r.setup,
            r.model,
            r.features,
            f"{r.metrics.tpr:.2f}",
            f"{r.metrics.tnr:.2f}",
            f"{r.metrics.ppv:.2f}",
            f"{r.metrics.npv:.2f}",
        ]
        for r in rows
    ]
    return format_table(
        headers,
        body,
        title=title or "Table V: erroneous gesture classification (Suturing, window=5)",
    )
