"""Colour thresholding for marker-based object detection.

The paper uses HSV thresholding to isolate the coloured block in the
video frames before contour detection.  The virtual camera renders flat
RGB colours, so a colour-distance threshold plays the same role.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..simulation.camera import BLOCK_COLOR


def color_distance_mask(
    frame: np.ndarray,
    color: np.ndarray,
    tolerance: float = 0.25,
) -> np.ndarray:
    """Binary mask of pixels within ``tolerance`` (Euclidean RGB) of ``color``.

    Parameters
    ----------
    frame:
        RGB image, shape ``(height, width, 3)``, values in [0, 1].
    color:
        Target RGB colour, shape ``(3,)``.
    tolerance:
        Maximum Euclidean distance in RGB space.
    """
    frame = np.asarray(frame, dtype=float)
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ShapeError(f"frame must be (h, w, 3), got {frame.shape}")
    color = np.asarray(color, dtype=float)
    if color.shape != (3,):
        raise ShapeError(f"color must have shape (3,), got {color.shape}")
    if tolerance <= 0:
        raise ShapeError("tolerance must be positive")
    distance = np.linalg.norm(frame - color[None, None, :], axis=2)
    return distance <= tolerance


def threshold_block(frame: np.ndarray, tolerance: float = 0.25) -> np.ndarray:
    """Mask of the transfer block in a virtual-camera frame."""
    return color_distance_mask(frame, BLOCK_COLOR, tolerance)


def to_grayscale(frame: np.ndarray) -> np.ndarray:
    """Luma conversion of an RGB frame (ITU-R BT.601 weights)."""
    frame = np.asarray(frame, dtype=float)
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ShapeError(f"frame must be (h, w, 3), got {frame.shape}")
    return 0.299 * frame[..., 0] + 0.587 * frame[..., 1] + 0.114 * frame[..., 2]
