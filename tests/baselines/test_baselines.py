"""Tests for the SC-CRF and SDSDL comparator implementations."""

import numpy as np
import pytest

from repro.baselines import DictionaryLearner, LinearSVM, SDSDL, SkipChainCRF, omp_encode
from repro.errors import ConfigurationError, NotFittedError, ShapeError


def blobs(n_per_class=60, n_classes=3, d=4, seed=0):
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for c in range(n_classes):
        centre = np.zeros(d)
        centre[c % d] = 4.0
        xs.append(rng.standard_normal((n_per_class, d)) + centre)
        ys.append(np.full(n_per_class, c))
    return np.concatenate(xs), np.concatenate(ys)


class TestLinearSVM:
    def test_separable_blobs(self):
        x, y = blobs()
        svm = LinearSVM(epochs=5, seed=0).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.95

    def test_decision_function_shape(self):
        x, y = blobs(n_classes=4)
        svm = LinearSVM(seed=0).fit(x, y)
        assert svm.decision_function(x).shape == (x.shape[0], 4)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            LinearSVM().predict(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            LinearSVM().fit(np.zeros((0, 3)), np.zeros(0))


class TestSkipChainCRF:
    def make_sequences(self, n_seqs=8, seed=0):
        rng = np.random.default_rng(seed)
        seqs, labs = [], []
        for _ in range(n_seqs):
            labels = np.repeat([0, 1, 2], 15)
            feats = np.zeros((labels.size, 3))
            feats[np.arange(labels.size), labels] = 2.0
            feats += rng.standard_normal(feats.shape) * 0.8
            seqs.append(feats)
            labs.append(labels)
        return seqs, labs

    def test_learns_segmentation(self):
        seqs, labs = self.make_sequences()
        crf = SkipChainCRF(n_classes=3, skip=5, epochs=4, seed=0)
        crf.fit(seqs[:6], labs[:6])
        acc = np.mean(
            [(crf.predict(s) == y).mean() for s, y in zip(seqs[6:], labs[6:])]
        )
        assert acc > 0.85

    def test_transitions_smooth_noise(self):
        # A per-frame argmax would flicker; the chain should not.
        seqs, labs = self.make_sequences(seed=3)
        crf = SkipChainCRF(n_classes=3, skip=5, epochs=4, seed=0)
        crf.fit(seqs[:6], labs[:6])
        pred = crf.predict(seqs[6])
        switches = int((np.diff(pred) != 0).sum())
        assert switches <= 8  # truth has 2 switches; allow some slack

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            SkipChainCRF(n_classes=3).predict(np.zeros((5, 2)))

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            SkipChainCRF(n_classes=1)
        with pytest.raises(ConfigurationError):
            SkipChainCRF(n_classes=3, skip=0)


class TestDictionaryLearning:
    def test_omp_reconstructs_sparse_signals(self):
        rng = np.random.default_rng(0)
        dictionary = rng.standard_normal((10, 8))
        dictionary /= np.linalg.norm(dictionary, axis=1, keepdims=True)
        codes_true = np.zeros((5, 10))
        for i in range(5):
            codes_true[i, rng.choice(10, 2, replace=False)] = rng.standard_normal(2)
        signals = codes_true @ dictionary
        codes = omp_encode(signals, dictionary, sparsity=2)
        assert np.allclose(codes @ dictionary, signals, atol=1e-8)

    def test_learned_dictionary_reduces_error(self):
        rng = np.random.default_rng(1)
        true_dict = rng.standard_normal((6, 12))
        true_dict /= np.linalg.norm(true_dict, axis=1, keepdims=True)
        codes = rng.standard_normal((200, 6)) * (rng.random((200, 6)) < 0.3)
        signals = codes @ true_dict + rng.normal(0, 0.01, (200, 12))
        learner = DictionaryLearner(n_atoms=6, sparsity=3, n_iterations=6, seed=0)
        learner.fit(signals)
        recon = learner.encode(signals) @ learner.dictionary
        err = np.linalg.norm(signals - recon) / np.linalg.norm(signals)
        assert err < 0.35

    def test_atoms_unit_norm(self):
        rng = np.random.default_rng(2)
        learner = DictionaryLearner(n_atoms=4, sparsity=2, n_iterations=2, seed=0)
        learner.fit(rng.standard_normal((50, 6)))
        norms = np.linalg.norm(learner.dictionary, axis=1)
        assert np.allclose(norms, 1.0)

    def test_encode_requires_fit(self):
        with pytest.raises(NotFittedError):
            DictionaryLearner().encode(np.zeros((2, 4)))


class TestSDSDL:
    def test_classifies_blobs(self):
        x, y = blobs(n_per_class=80, d=6, seed=4)
        model = SDSDL(n_atoms=12, sparsity=3, dict_iterations=4, seed=0)
        model.fit(x, y)
        assert model.accuracy(x, y) > 0.9

    def test_windows_flattened(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((60, 4, 3))
        y = (x[:, :, 0].mean(axis=1) > 0).astype(int)
        model = SDSDL(n_atoms=8, sparsity=2, dict_iterations=3, seed=0)
        model.fit(x, y)
        assert model.predict(x).shape == (60,)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            SDSDL().predict(np.zeros((2, 4)))
