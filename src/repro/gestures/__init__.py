"""Surgical gesture vocabulary, error rubric and task grammars.

This package encodes the operational-context model of the paper:

- :mod:`~repro.gestures.vocabulary` — the JIGSAWS gesture vocabulary
  (G1..G15) with descriptions (paper Table II).
- :mod:`~repro.gestures.rubric` — the gesture-specific common errors and
  their potential kinematic fault causes (paper Table II).
- :mod:`~repro.gestures.markov` — finite-state Markov-chain task models
  (fit/sample/query), the formalism the paper uses for surgical tasks.
- :mod:`~repro.gestures.models` — the concrete Suturing and Block Transfer
  chains of paper Figure 3.
"""

from .markov import MarkovChain
from .models import (
    BLOCK_TRANSFER_GESTURES,
    SUTURING_GESTURES,
    block_transfer_chain,
    suturing_chain,
)
from .rubric import (
    ERROR_RUBRIC,
    ErrorMode,
    FaultCause,
    GestureErrorSpec,
    error_modes_for,
    gestures_with_errors,
)
from .vocabulary import (
    END_TOKEN,
    GESTURE_DESCRIPTIONS,
    START_TOKEN,
    Gesture,
    N_GESTURE_CLASSES,
)

__all__ = [
    "BLOCK_TRANSFER_GESTURES",
    "END_TOKEN",
    "ERROR_RUBRIC",
    "ErrorMode",
    "FaultCause",
    "GESTURE_DESCRIPTIONS",
    "Gesture",
    "GestureErrorSpec",
    "MarkovChain",
    "N_GESTURE_CLASSES",
    "START_TOKEN",
    "SUTURING_GESTURES",
    "block_transfer_chain",
    "error_modes_for",
    "gestures_with_errors",
    "suturing_chain",
]
