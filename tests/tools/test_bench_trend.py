"""Unit tests for the perf-trend gate (``scripts/check_bench_trend.py``).

The gate diffs fresh benchmark JSON against committed baselines and
must fail on a synthetic >= 25% throughput regression, warn at >= 10%,
and ignore improvements and rows present on only one side.  Exercised
against fixture reports shaped like ``BENCH_serving.json`` /
``BENCH_bulk.json``, via both the importable compare functions and the
CLI entry point.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))

from check_bench_trend import (  # noqa: E402 - path set up above
    collect_fps,
    compare_reports,
    main,
    render_markdown,
)


def _baseline_report() -> dict:
    """A miniature BENCH_serving-shaped report."""
    return {
        "meta": {"cpu_count": 4},
        "service": [
            {"sessions": 1, "seq_fps": 500.0, "srv_fps": 800.0},
            {"sessions": 64, "seq_fps": 480.0, "srv_fps": 5000.0},
        ],
        "sharded": [
            {"shards": 1, "sessions": 64, "fps": 2000.0},
            {"shards": 4, "sessions": 64, "fps": 4400.0},
        ],
        "balance": {"scenario": "skewed 40/64 on one shard", "fps": 4800.0},
        "summary": {"sharded_speedup_4": 2.2},
    }


class TestCollectFps:
    def test_leaves_keyed_by_identity_not_position(self):
        leaves = collect_fps(_baseline_report())
        assert leaves["sharded[shards=4,sessions=64].fps"] == 4400.0
        assert leaves["service[sessions=64].srv_fps"] == 5000.0
        assert "summary.sharded_speedup_4" not in leaves  # not an fps leaf

    def test_inserting_a_row_does_not_shift_labels(self):
        report = _baseline_report()
        before = collect_fps(report)
        report["sharded"].insert(
            1, {"shards": 2, "sessions": 64, "fps": 3000.0}
        )
        after = collect_fps(report)
        assert before["sharded[shards=4,sessions=64].fps"] == (
            after["sharded[shards=4,sessions=64].fps"]
        )

    def test_rows_without_identity_fall_back_to_index(self):
        leaves = collect_fps({"rows": [{"fps": 10.0}, {"fps": 20.0}]})
        assert leaves == {"rows[0].fps": 10.0, "rows[1].fps": 20.0}


class TestCompareReports:
    def test_big_regression_fails(self):
        fresh = _baseline_report()
        fresh["sharded"][1]["fps"] = 3000.0  # -32% vs 4400
        rows = compare_reports(_baseline_report(), fresh)
        by_label = {r.label: r for r in rows}
        assert by_label["sharded[shards=4,sessions=64].fps"].status == "fail"

    def test_mid_regression_warns(self):
        fresh = _baseline_report()
        fresh["balance"]["fps"] = 4080.0  # -15% vs 4800
        rows = compare_reports(_baseline_report(), fresh)
        by_label = {r.label: r for r in rows}
        assert by_label["balance.fps"].status == "warn"

    def test_improvement_and_small_drift_are_ok(self):
        fresh = _baseline_report()
        fresh["sharded"][0]["fps"] = 2500.0  # improvement
        fresh["service"][0]["srv_fps"] = 760.0  # -5%
        statuses = {r.label: r.status for r in compare_reports(
            _baseline_report(), fresh
        )}
        assert statuses["sharded[shards=1,sessions=64].fps"] == "ok"
        assert statuses["service[sessions=1].srv_fps"] == "ok"

    def test_new_and_removed_rows_never_gate(self):
        fresh = _baseline_report()
        del fresh["balance"]
        fresh["bulk"] = [{"engine": "bulk", "backend": "reference", "fps": 9.0}]
        rows = compare_reports(_baseline_report(), fresh)
        statuses = {r.label: r.status for r in rows}
        assert statuses["balance.fps"] == "baseline-only"
        assert statuses["bulk[engine=bulk,backend=reference].fps"] == (
            "fresh-only"
        )
        assert "fail" not in statuses.values()

    def test_custom_thresholds(self):
        fresh = _baseline_report()
        fresh["balance"]["fps"] = 4400.0  # -8.3%
        rows = compare_reports(_baseline_report(), fresh, warn=0.05, fail=0.5)
        by_label = {r.label: r for r in rows}
        assert by_label["balance.fps"].status == "warn"


class TestMarkdownSummary:
    def test_table_names_every_row(self):
        fresh = _baseline_report()
        fresh["sharded"][1]["fps"] = 3000.0
        rows = compare_reports(_baseline_report(), fresh)
        text = render_markdown([("BENCH_serving.json", rows)])
        assert "### BENCH_serving.json" in text
        assert "`sharded[shards=4,sessions=64].fps`" in text
        assert "❌ fail" in text


class TestCli:
    def _write_pair(self, tmp_path, fresh) -> list[str]:
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(_baseline_report()))
        fresh_path.write_text(json.dumps(fresh))
        return [f"--pair={baseline_path}:{fresh_path}", "--min-cores=1"]

    def test_synthetic_25pct_regression_exits_nonzero(self, tmp_path):
        fresh = _baseline_report()
        fresh["sharded"][1]["fps"] = 4400.0 * 0.74
        assert main(self._write_pair(tmp_path, fresh)) == 1

    def test_15pct_regression_warns_but_passes(self, tmp_path, capsys):
        fresh = _baseline_report()
        fresh["balance"]["fps"] = 4800.0 * 0.85
        assert main(self._write_pair(tmp_path, fresh)) == 0
        assert "warn:" in capsys.readouterr().out

    def test_identical_reports_pass(self, tmp_path):
        assert main(self._write_pair(tmp_path, _baseline_report())) == 0

    def test_refuses_on_undersized_runner(self, tmp_path, capsys):
        argv = self._write_pair(tmp_path, _baseline_report())
        argv[-1] = "--min-cores=4096"
        assert main(argv) == 1
        assert "REFUSED" in capsys.readouterr().err

    def test_writes_step_summary(self, tmp_path):
        fresh = _baseline_report()
        fresh["sharded"][1]["fps"] = 3000.0
        summary = tmp_path / "summary.md"
        argv = self._write_pair(tmp_path, fresh) + [f"--summary={summary}"]
        assert main(argv) == 1
        assert "Benchmark trend" in summary.read_text()

    def test_malformed_pair_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--pair=only-one-path", "--min-cores=1"])
