"""A fleet of concurrent surgical procedures monitored by one service.

Simulates a hospital deployment of the paper's context-aware monitor:
several robot-assisted procedures run at once, starting and finishing at
different times, and a single :class:`repro.serving.MonitorService`
advances all of them tick by tick — batching each pipeline stage across
every active procedure.  Each session reports its own alert timeline at
the end, along with service-level latency accounting.

By default the monitor uses deterministic synthetic weights so the demo
starts instantly; pass ``--train`` to train a real (tiny) monitor on the
synthetic Suturing dataset first.

Run:  PYTHONPATH=src python examples/multi_stream_monitoring.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.serving import (
    MonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 38


def trained_monitor():
    """A small monitor trained on the synthetic Suturing dataset."""
    from repro.config import MonitorConfig, TrainingConfig, WindowConfig
    from repro.core import ErrorClassifierLibrary, GestureClassifier, SafetyMonitor
    from repro.core.error_classifiers import ErrorClassifierConfig
    from repro.core.gesture_classifier import GestureClassifierConfig
    from repro.jigsaws import make_suturing_dataset

    window = WindowConfig(5, 1)
    train, _ = make_suturing_dataset(n_demos=12, rng=3).split_by_trials(2)
    classifier = GestureClassifier(
        GestureClassifierConfig(
            lstm_units=(32, 16),
            dense_units=16,
            window=window,
            training=TrainingConfig(max_epochs=8, batch_size=128),
            max_train_windows=6000,
        ),
        seed=0,
    )
    classifier.fit(train)
    library = ErrorClassifierLibrary(
        ErrorClassifierConfig(
            architecture="conv",
            hidden=(16,),
            dense_units=8,
            training=TrainingConfig(max_epochs=8, batch_size=128),
            max_train_windows=3000,
        ),
        seed=1,
    )
    library.fit(train.windows(window))
    return SafetyMonitor(
        classifier, library, MonitorConfig(gesture_window=window, error_window=window)
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procedures", type=int, default=6)
    parser.add_argument("--train", action="store_true", help="train a real monitor")
    args = parser.parse_args()
    if args.procedures < 1:
        parser.error("--procedures must be >= 1")

    if args.train:
        print("Training the monitor on synthetic Suturing data ...")
        monitor = trained_monitor()
    else:
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)

    rng = np.random.default_rng(42)
    # Staggered schedule: procedure i enters the OR at `start_tick` and
    # streams `n_frames` kinematics frames (30 Hz) until it completes.
    schedule = [
        {
            "start_tick": int(rng.integers(0, 120)),
            "trajectory": make_random_walk_trajectory(
                int(rng.integers(240, 420)), n_features=N_FEATURES, seed=100 + i
            ),
        }
        for i in range(args.procedures)
    ]

    service = MonitorService(monitor, max_sessions=args.procedures)
    alerts: dict[str, list[int]] = {}
    opened: dict[int, str] = {}

    print(f"Monitoring {args.procedures} concurrent procedures ...")
    tick = 0
    while opened or any("trajectory" in p for p in schedule):
        # Admit procedures whose start time arrived.
        for i, proc in enumerate(schedule):
            if "trajectory" in proc and proc["start_tick"] <= tick:
                session_id = service.open_session(f"OR-{i + 1}")
                service.feed(session_id, proc.pop("trajectory").frames)
                opened[i] = session_id
                alerts[session_id] = []
                print(f"  tick {tick:4d}: {session_id} started")
        for event in service.tick():
            if event.flag:
                alerts[event.session_id].append(event.frame_index)
        # Retire procedures that consumed their whole trajectory.
        for i, session_id in list(opened.items()):
            if service.pending_frames(session_id) == 0:
                result = service.close_session(session_id)
                del opened[i]
                n_alerts = int(result.unsafe_flags.sum())
                print(
                    f"  tick {tick:4d}: {session_id} finished — "
                    f"{result.n_frames} frames, {n_alerts} alert frames"
                )
        tick += 1

    print("\nPer-procedure alert timelines:")
    for session_id in sorted(alerts):
        frames = alerts[session_id]
        if frames:
            spans = f"first at frame {frames[0]}, last at frame {frames[-1]}"
        else:
            spans = "no alerts"
        print(f"  {session_id}: {len(frames)} alert frames ({spans})")

    stats = service.stats
    print(
        f"\nService: {stats.frames_processed} frames in {stats.n_ticks} ticks — "
        f"tick latency p50 {stats.percentile_ms(50):.2f} ms, "
        f"p99 {stats.percentile_ms(99):.2f} ms"
    )


if __name__ == "__main__":
    main()
