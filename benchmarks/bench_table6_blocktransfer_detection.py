"""Benchmark: regenerate paper Table VI (erroneous-gesture step, Block
Transfer).

Same ablation machinery as Table V on the Raven II simulator dataset
(window 10, Cartesian + Grasper features).
"""

from conftest import run_once

from repro.experiments import table6


def test_table6_blocktransfer_detection(benchmark, scale):
    rows = run_once(benchmark, lambda: table6.run(scale=scale, seed=0))
    print()
    print(table6.render(rows))

    for row in rows:
        assert max(row.metrics.tpr, row.metrics.tnr) > 0.5
    # The gesture-specific conv setup should at least match the
    # non-specific one on TNR (the paper reports 0.87 vs 0.85).
    specific = next(r for r in rows if r.setup == "gesture-specific" and r.model == "conv")
    baseline = next(r for r in rows if r.setup == "non-gesture-specific")
    assert specific.metrics.tnr > baseline.metrics.tnr - 0.1
