"""Paper Table IV: gesture classification accuracy in the LOSO setup.

Trains the stacked-LSTM gesture classifier on Suturing, Knot-Tying,
Needle-Passing (synthetic JIGSAWS) and Block Transfer (simulator data),
and the SC-CRF / SDSDL comparators on Suturing, reporting window-level
accuracy per task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import SDSDL, SkipChainCRF
from ..config import WindowConfig
from ..core import GestureClassifier
from ..eval.reports import format_table
from ..gestures.vocabulary import N_GESTURE_CLASSES
from ..jigsaws.dataset import SurgicalDataset
from ..jigsaws.synthesis import make_task_dataset
from .common import ExperimentScale, get_scale, make_blocktransfer_dataset


@dataclass
class Table4Row:
    """Accuracy of one method on one task."""

    method: str
    task: str
    accuracy: float
    train_windows: int
    n_trajectories: int


def _lstm_accuracy(
    dataset: SurgicalDataset,
    preset: ExperimentScale,
    held_out_trial: int,
    seed: int,
) -> tuple[float, int]:
    train, test = dataset.split_by_trials(held_out_trial)
    clf = GestureClassifier(preset.gesture_config(), seed=seed)
    clf.fit(train)
    data = train.windows(WindowConfig(5, 1))
    return clf.accuracy(test), data.n_windows


def _sccrf_accuracy(
    dataset: SurgicalDataset, held_out_trial: int, seed: int, frame_stride: int = 3
) -> float:
    train, test = dataset.split_by_trials(held_out_trial)
    seqs, labs = [], []
    for demo in train.demonstrations:
        frames = demo.trajectory.frames[::frame_stride]
        seqs.append(_standardise(frames))
        labs.append(demo.trajectory.gestures[::frame_stride] - 1)
    crf = SkipChainCRF(n_classes=N_GESTURE_CLASSES, skip=10, epochs=3, seed=seed)
    crf.fit(seqs, labs)
    correct = total = 0
    for demo in test.demonstrations:
        frames = demo.trajectory.frames[::frame_stride]
        pred = crf.predict(_standardise(frames))
        truth = demo.trajectory.gestures[::frame_stride] - 1
        correct += int((pred == truth).sum())
        total += truth.size
    return correct / total


def _sdsdl_accuracy(
    dataset: SurgicalDataset,
    held_out_trial: int,
    seed: int,
    max_windows: int = 6000,
) -> float:
    train, test = dataset.split_by_trials(held_out_trial)
    window = WindowConfig(5, 3)
    tr = train.windows(window)
    te = test.windows(window)
    rng = np.random.default_rng(seed)
    pick = rng.permutation(tr.n_windows)[:max_windows]
    model = SDSDL(n_atoms=48, sparsity=4, dict_iterations=5, seed=seed)
    model.fit(tr.x[pick], tr.gesture[pick])
    pick_test = rng.permutation(te.n_windows)[: max_windows // 2]
    return model.accuracy(te.x[pick_test], te.gesture[pick_test])


def _standardise(frames: np.ndarray) -> np.ndarray:
    return (frames - frames.mean(axis=0)) / (frames.std(axis=0) + 1e-9)


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    include_baselines: bool = True,
    tasks: tuple[str, ...] = (
        "suturing",
        "knot_tying",
        "needle_passing",
        "block_transfer",
    ),
) -> list[Table4Row]:
    """Produce the Table IV rows.

    The paper averages over all five LOSO folds; one representative fold
    is used here by default (pass different ``held_out_trial`` values and
    average externally for the full protocol — the full-fold sweep is
    what ``scale="full"`` benchmark runs do).
    """
    preset = get_scale(scale)
    rows: list[Table4Row] = []
    suturing: SurgicalDataset | None = None
    for task in tasks:
        if task == "block_transfer":
            dataset = make_blocktransfer_dataset(preset, seed=seed)
        else:
            n = preset.suturing_demos if task == "suturing" else None
            dataset = make_task_dataset(task, n_demos=n, rng=seed)
        if task == "suturing":
            suturing = dataset
        accuracy, n_windows = _lstm_accuracy(dataset, preset, held_out_trial, seed)
        rows.append(
            Table4Row(
                method="stacked LSTM (this work)",
                task=task,
                accuracy=accuracy,
                train_windows=n_windows,
                n_trajectories=len(dataset),
            )
        )
    if include_baselines and suturing is not None:
        rows.append(
            Table4Row(
                method="SC-CRF-like",
                task="suturing",
                accuracy=_sccrf_accuracy(suturing, held_out_trial, seed),
                train_windows=0,
                n_trajectories=len(suturing),
            )
        )
        rows.append(
            Table4Row(
                method="SDSDL-like",
                task="suturing",
                accuracy=_sdsdl_accuracy(suturing, held_out_trial, seed),
                train_windows=0,
                n_trajectories=len(suturing),
            )
        )
    return rows


def render(rows: list[Table4Row]) -> str:
    """ASCII rendering of the Table IV rows."""
    headers = ["Method", "Task", "Accuracy", "Train windows", "#Trajectories"]
    body = [
        [r.method, r.task, f"{100 * r.accuracy:.2f}%", r.train_windows or "-", r.n_trajectories]
        for r in rows
    ]
    return format_table(headers, body, title="Table IV: gesture classification (LOSO)")
