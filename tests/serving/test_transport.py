"""Regression tests for the hardened pipe transport.

The remote ingest layer surfaced the partial-message/EOF edge cases of
:func:`repro.serving.transport.recv_message`: a peer can die mid-write
(truncating a framed message), a stream can carry bytes that are not a
pickle at all, and a well-formed object can be of the wrong type.  The
contract under test: end-of-stream (including mid-message truncation)
raises ``EOFError``; corrupt-but-intact streams raise ``WorkerError``
and are survivable — a worker answers with an error reply and keeps
serving.
"""

import multiprocessing as mp
import os
import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, WorkerError
from repro.serving import make_synthetic_monitor, monitor_to_bytes
from repro.serving.remote.protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    MessageReader,
    MessageType,
    PROTOCOL_VERSION,
    decode_ack,
    decode_events,
    decode_frames,
    decode_header,
    decode_json,
    encode_ack,
    encode_events,
    encode_frames,
    encode_json,
    encode_message,
)
from repro.serving.service import SessionEvent
from repro.serving.transport import (
    Reply,
    Request,
    error_reply,
    raise_remote,
    recv_message,
)
from repro.serving.worker import worker_main

N_FEATURES = 6


@pytest.fixture()
def pipe():
    a, b = mp.Pipe(duplex=True)
    yield a, b
    for end in (a, b):
        try:
            end.close()
        except OSError:
            pass


class TestRecvMessage:
    def test_valid_message_passes_type_check(self, pipe):
        a, b = pipe
        a.send(Request("ping"))
        request = recv_message(b, Request, who="test")
        assert request.op == "ping"

    def test_closed_peer_raises_eof(self, pipe):
        a, b = pipe
        a.close()
        with pytest.raises(EOFError):
            recv_message(b, Request, who="test")

    def test_truncated_frame_raises_eof(self, pipe):
        """A peer dying mid-write leaves a length prefix promising more
        bytes than ever arrive: that is end-of-stream, not garbage."""
        a, b = pipe
        # multiprocessing frames messages as a !i length prefix; promise
        # 100 bytes, deliver 3, then vanish.
        os.write(a.fileno(), struct.pack("!i", 100) + b"abc")
        a.close()
        with pytest.raises(EOFError):
            recv_message(b, Request, who="test")

    def test_corrupt_pickle_raises_worker_error(self, pipe):
        a, b = pipe
        a.send_bytes(b"this is not a pickle")
        with pytest.raises(WorkerError, match="corrupt or truncated"):
            recv_message(b, Request, who="test")

    def test_truncated_pickle_raises_worker_error(self, pipe):
        a, b = pipe
        blob = pickle.dumps(Request("feed", session_id="s"))
        a.send_bytes(blob[: len(blob) // 2])
        with pytest.raises(WorkerError, match="corrupt or truncated"):
            recv_message(b, Request, who="test")

    def test_wrong_type_raises_worker_error(self, pipe):
        a, b = pipe
        a.send({"op": "ping"})  # a dict is not a Request
        with pytest.raises(WorkerError, match="expected Request, got dict"):
            recv_message(b, Request, who="test")

    def test_timeout_raises_worker_error(self, pipe):
        _, b = pipe
        with pytest.raises(WorkerError, match="unresponsive"):
            recv_message(b, Reply, timeout_s=0.05, who="shard 3")

    def test_who_names_the_peer(self, pipe):
        a, b = pipe
        a.send_bytes(b"\x80garbage")
        with pytest.raises(WorkerError, match="shard 7"):
            recv_message(b, Request, who="shard 7")


class TestWorkerSurvivesCorruptInput:
    def test_worker_replies_error_and_keeps_serving(self):
        """End to end: garbage on the pipe gets an error reply; the very
        next valid request is served normally — the shard's sessions
        outlive bad input instead of dying with an unpickling crash."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        blob = monitor_to_bytes(monitor)
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main, args=(child, blob, 4), daemon=True
        )
        process.start()
        child.close()
        try:
            parent.send(Request("ping"))
            assert recv_message(parent, Reply, timeout_s=60.0).ok

            parent.send_bytes(b"definitely not a pickled Request")
            reply = recv_message(parent, Reply, timeout_s=60.0)
            assert not reply.ok
            assert reply.error_type == "WorkerError"
            assert "corrupt or truncated" in reply.error

            parent.send({"op": "ping"})  # wrong type, also survivable
            reply = recv_message(parent, Reply, timeout_s=60.0)
            assert not reply.ok

            parent.send(Request("open", session_id="still-alive"))
            reply = recv_message(parent, Reply, timeout_s=60.0)
            assert reply.ok and reply.value == "still-alive"

            parent.send(Request("stop"))
            recv_message(parent, Reply, timeout_s=60.0)
        finally:
            parent.close()
            process.join(30.0)
            if process.is_alive():  # pragma: no cover - cleanup only
                process.terminate()
                process.join()
        assert process.exitcode == 0


class TestErrorReplyRoundTrip:
    def test_error_reply_preserves_type_through_raise_remote(self):
        reply = error_reply(WorkerError("boom"), has_pending=True)
        assert reply.has_pending
        with pytest.raises(WorkerError, match="boom"):
            raise_remote(reply)


# ----------------------------------------------------------------------
# Property-based fuzzing of the TCP wire protocol (PR 7)
# ----------------------------------------------------------------------
# The gateway decodes bytes straight off the public network, so the
# protocol module carries a stronger contract than the pipe transport
# above: *any* input either decodes or raises ProtocolError — never a
# bare struct.error/UnicodeDecodeError/ValueError, never an unbounded
# allocation from a hostile length field, and round-trips are exact.

_session_ids = st.text(min_size=0, max_size=40)

_u64 = st.integers(min_value=0, max_value=2**64 - 1)

_finite_floats = st.floats(allow_nan=False, width=64)

_events = st.builds(
    SessionEvent,
    session_id=_session_ids,
    frame_index=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    gesture=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    score=_finite_floats,
    flag=st.booleans(),
    # The wire collapses a falsy error to "no error" (err_len=0 decodes
    # to None), so an empty string is not round-trippable by design —
    # generate None or a non-empty message, as the engine does.
    error=st.one_of(st.none(), st.text(min_size=1, max_size=120)),
)


def _decode_any(payload: bytes) -> None:
    """Run every payload decoder; only ProtocolError may escape."""
    for decoder in (decode_frames, decode_events, decode_ack, decode_json):
        try:
            decoder(payload)
        except ProtocolError:
            pass


class TestProtocolFuzz:
    @settings(max_examples=50, deadline=None)
    @given(
        sid=_session_ids,
        seq=_u64,
        rows=st.lists(
            st.lists(_finite_floats, min_size=1, max_size=8),
            min_size=1,
            max_size=6,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1),
    )
    def test_frames_round_trip_exactly(self, sid, seq, rows):
        frames = np.array(rows, dtype=np.float64)
        got_sid, got_seq, got = decode_frames(encode_frames(sid, frames, seq))
        assert (got_sid, got_seq) == (sid, seq)
        assert got.dtype == np.float64 and got.shape == frames.shape
        np.testing.assert_array_equal(got, frames)

    @settings(max_examples=50, deadline=None)
    @given(events=st.lists(_events, max_size=8))
    def test_events_round_trip_exactly(self, events):
        decoded = decode_events(encode_events(events))
        assert decoded == events

    @settings(max_examples=50, deadline=None)
    @given(sid=_session_ids, seq=_u64)
    def test_ack_round_trip_exactly(self, sid, seq):
        assert decode_ack(encode_ack(sid, seq)) == (sid, seq)

    @settings(max_examples=50, deadline=None)
    @given(
        obj=st.dictionaries(
            st.text(max_size=20),
            st.one_of(
                st.none(), st.booleans(), st.integers(), st.text(max_size=40)
            ),
            max_size=6,
        )
    )
    def test_json_round_trip_exactly(self, obj):
        assert decode_json(encode_json(obj)) == obj

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash_a_decoder(self, data):
        try:
            decode_header(data.ljust(HEADER_SIZE, b"\x00")[:HEADER_SIZE])
        except ProtocolError:
            pass
        _decode_any(data)

    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(_events, min_size=1, max_size=4),
        cut=st.integers(min_value=0, max_value=10_000),
    )
    def test_truncated_payloads_raise_protocol_error(self, events, cut):
        payload = encode_events(events)
        truncated = payload[: min(cut, len(payload) - 1)]
        with pytest.raises(ProtocolError):
            decode_events(truncated)
        _decode_any(truncated)

    @settings(max_examples=100, deadline=None)
    @given(
        sid=_session_ids,
        seq=_u64,
        flip_at=st.integers(min_value=0, max_value=10_000),
        flip_bits=st.integers(min_value=1, max_value=255),
    )
    def test_bit_flipped_messages_decode_or_reject(
        self, sid, seq, flip_at, flip_bits
    ):
        """Corrupting any single byte of a framed ACK either still parses
        (the flip landed in a don't-care position) or raises
        ProtocolError — from the header check or the payload decoder —
        never anything else and never a hang."""
        message = bytearray(encode_message(MessageType.ACK, encode_ack(sid, seq)))
        message[flip_at % len(message)] ^= flip_bits
        reader = MessageReader()
        reader.feed(bytes(message))
        try:
            for _, payload in reader.messages():
                _decode_any(payload)
        except ProtocolError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(length=st.integers(min_value=0, max_value=2**32 - 1))
    def test_hostile_length_fields_are_capped(self, length):
        """A header may not promise more than MAX_PAYLOAD bytes: the
        reader rejects it outright instead of buffering toward an
        attacker-chosen allocation."""
        header = struct.pack(
            "!BBHI", PROTOCOL_VERSION, int(MessageType.FRAME), 0, length
        )
        if length > MAX_PAYLOAD:
            with pytest.raises(ProtocolError):
                decode_header(header)
        else:
            msg_type, got = decode_header(header)
            assert (msg_type, got) == (MessageType.FRAME, length)

    @settings(max_examples=50, deadline=None)
    @given(
        sid=_session_ids,
        seq=_u64,
        chunk=st.integers(min_value=1, max_value=7),
    )
    def test_reader_is_prefix_safe(self, sid, seq, chunk):
        """Any prefix of a valid stream yields only complete messages —
        a mid-message cut parks the reader at None, never a partial or
        corrupted pop."""
        stream = encode_message(MessageType.ACK, encode_ack(sid, seq))
        for cut in range(len(stream)):
            reader = MessageReader()
            for start in range(0, cut, chunk):
                reader.feed(stream[start : min(start + chunk, cut)])
            assert reader.next_message() is None
        reader = MessageReader()
        reader.feed(stream)
        msg_type, payload = reader.next_message()
        assert msg_type is MessageType.ACK
        assert decode_ack(payload) == (sid, seq)
