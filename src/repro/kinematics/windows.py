"""Sliding-window extraction over kinematics time series (paper Eq. 2).

Both stages of the monitoring pipeline consume fixed-length windows of
consecutive kinematics frames.  :func:`sliding_windows` builds them in
batch for training; :class:`StreamingWindowBatch` maintains them
incrementally for many concurrent online streams at once (the serving
hot path), and :class:`StreamingWindow` is its single-stream wrapper.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..config import WindowConfig
from ..errors import ConfigurationError, ShapeError


@dataclass
class WindowSlotState:
    """Portable snapshot of one stream slot's ring state.

    Produced by :meth:`StreamingWindowBatch.export_slot` and consumed by
    :meth:`StreamingWindowBatch.import_slot` — the unit of session
    migration between serving engines.  ``buffer`` holds the slot's raw
    ring rows (ring order, *not* time order: position depends only on
    ``seen % window``, which travels with the state), so importing into
    any batch built from the same :class:`~repro.config.WindowConfig`
    reproduces the slot bit for bit.
    """

    buffer: np.ndarray  # (window, n_features) raw ring rows
    seen: int
    since_emit: int


def sliding_windows(
    frames: np.ndarray, config: WindowConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Extract overlapping windows from a frame sequence.

    Parameters
    ----------
    frames:
        Array of shape ``(n_frames, n_features)``.
    config:
        Window length and stride.

    Returns
    -------
    windows, end_indices
        ``windows`` has shape ``(n_windows, window, n_features)``;
        ``end_indices[i]`` is the index of the *last* frame in window ``i``
        (the frame whose label the window predicts, so the online monitor
        incurs no look-ahead).
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 2:
        raise ShapeError(f"frames must be 2-D (n_frames, n_features), got {frames.shape}")
    n = config.n_windows(frames.shape[0])
    if n == 0:
        empty = np.empty((0, config.window, frames.shape[1]))
        return empty, np.empty(0, dtype=int)
    starts = np.arange(n) * config.stride
    # Gather via advanced indexing; data volumes here are modest so a copy
    # is preferable to the aliasing pitfalls of stride tricks.
    idx = starts[:, None] + np.arange(config.window)[None, :]
    windows = frames[idx]
    end_indices = starts + config.window - 1
    return windows, end_indices


def sliding_windows_view(
    frames: np.ndarray, config: WindowConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Zero-copy variant of :func:`sliding_windows`.

    Returns the same ``(windows, end_indices)`` pair, but ``windows`` is
    a **read-only strided view** over ``frames``
    (:func:`np.lib.stride_tricks.sliding_window_view`): materialising
    every window of an hour-long procedure costs O(1) memory instead of
    ``window``× the trajectory size.  This is the bulk scoring engine's
    input path (:mod:`repro.serving.bulk`) and feeds the batched
    per-window model passes of the offline pipeline.

    The view aliases ``frames``: rows overlap (each frame appears in up
    to ``window`` windows), so it is marked non-writeable — writing
    through it would corrupt neighbouring windows.  Consumers that need
    ownership must copy (standardisation and advanced-indexing gathers
    already do).  When ``frames`` is not float64 (or not an ndarray) a
    single float conversion copy is made first; the view then aliases
    that conversion, still with no per-window duplication.
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 2:
        raise ShapeError(f"frames must be 2-D (n_frames, n_features), got {frames.shape}")
    n = config.n_windows(frames.shape[0])
    if n == 0:
        empty = np.empty((0, config.window, frames.shape[1]))
        return empty, np.empty(0, dtype=int)
    # (n_frames - window + 1, window, n_features) view, one window per
    # start frame; striding the first axis applies the configured hop.
    view = np.lib.stride_tricks.sliding_window_view(
        frames, config.window, axis=0
    ).transpose(0, 2, 1)[:: config.stride][:n]
    view.flags.writeable = False
    end_indices = np.arange(n) * config.stride + config.window - 1
    return view, end_indices


def window_labels(
    labels: np.ndarray, config: WindowConfig, reduce: str = "last"
) -> np.ndarray:
    """Per-window labels aligned with :func:`sliding_windows`.

    ``reduce`` selects how the per-frame labels within a window collapse to
    one label:

    - ``"last"`` — label of the final frame (causal; default, matches the
      online monitor which predicts the current frame).
    - ``"majority"`` — most frequent label in the window.  Ties break to
      the **lowest** label value; this is a contract, not an accident of
      implementation, so that e.g. a half-safe/half-unsafe binary window
      resolves to 0 (safe) and re-runs are reproducible across numpy
      versions.
    - ``"any"`` — for binary 0/1 labels, 1 if any frame is 1 (the paper
      marks a whole gesture unsafe if any of its samples is erroneous).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    n = config.n_windows(labels.shape[0])
    if n == 0:
        return np.empty(0, dtype=labels.dtype)
    starts = np.arange(n) * config.stride
    if reduce == "last":
        return labels[starts + config.window - 1]
    idx = starts[:, None] + np.arange(config.window)[None, :]
    gathered = labels[idx]
    if reduce == "any":
        return (gathered != 0).any(axis=1).astype(labels.dtype)
    if reduce == "majority":
        # Vectorized per-row mode in O(n_windows * window) memory: sort
        # each window, run-length encode, take each row's longest run.
        # Runs are value-ascending and argmax returns the first maximum,
        # which yields the lowest-label-wins contract.
        ordered = np.sort(gathered, axis=1)
        window = ordered.shape[1]
        starts = np.concatenate(
            [np.ones((n, 1), dtype=bool), ordered[:, 1:] != ordered[:, :-1]],
            axis=1,
        )
        run_ids = np.cumsum(starts, axis=1) - 1  # at most `window` runs/row
        run_lengths = np.zeros((n, window), dtype=np.int64)
        np.add.at(run_lengths, (np.arange(n)[:, None], run_ids), 1)
        best_run = np.argmax(run_lengths, axis=1)
        first_of_best = np.argmax(run_ids == best_run[:, None], axis=1)
        return ordered[np.arange(n), first_of_best]
    raise ShapeError(f"unknown reduce mode {reduce!r}")


class StreamingWindowBatch:
    """Ring-buffered sliding windows over many concurrent streams.

    The serving hot path: a preallocated ``(n_streams, window,
    n_features)`` buffer absorbs one new frame per pushed stream per call
    and reports — with a vectorized readiness mask, no per-stream Python
    state — which streams completed a window on this push.  Stream slots
    advance independently, so sessions that joined at different times can
    share one batch.

    Emission semantics per stream are identical to pushing that stream's
    frames one-by-one through a :class:`StreamingWindow`: the first window
    emits once ``window`` frames arrived, subsequent windows every
    ``stride`` frames after that.
    """

    def __init__(self, config: WindowConfig, n_streams: int, n_features: int) -> None:
        if n_streams < 1:
            raise ConfigurationError("n_streams must be >= 1")
        if n_features < 1:
            raise ConfigurationError("n_features must be >= 1")
        self._config = config
        self._n_streams = int(n_streams)
        self._n_features = int(n_features)
        self._buffer = np.zeros((n_streams, config.window, n_features))
        self._seen = np.zeros(n_streams, dtype=np.int64)
        self._since_emit = np.zeros(n_streams, dtype=np.int64)
        self._window_offsets = np.arange(config.window)

    @property
    def config(self) -> WindowConfig:
        """The window configuration this batch was built with."""
        return self._config

    @property
    def n_streams(self) -> int:
        """Number of stream slots in the buffer."""
        return self._n_streams

    @property
    def n_features(self) -> int:
        """Feature width of each frame."""
        return self._n_features

    @property
    def frames_seen(self) -> np.ndarray:
        """Per-stream count of frames pushed since the last reset (copy)."""
        return self._seen.copy()

    def push(
        self, frames: np.ndarray, stream_ids: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance a set of streams by one frame each.

        Parameters
        ----------
        frames:
            Array of shape ``(n_pushed, n_features)``: one new frame per
            pushed stream, aligned with ``stream_ids``.
        stream_ids:
            Slot indices receiving a frame; defaults to all streams.  Must
            not contain duplicates (each stream advances by exactly one
            frame per call).

        Returns
        -------
        ready, windows
            ``ready`` is a boolean mask aligned with ``stream_ids`` marking
            streams that completed a window on this push; ``windows`` has
            shape ``(ready.sum(), window, n_features)`` with rows in
            ``stream_ids`` order, each window's frames in time order.
        """
        frames = np.asarray(frames, dtype=float)
        ids = self._check_ids(stream_ids)
        if frames.shape != (ids.size, self._n_features):
            raise ShapeError(
                f"frames must have shape ({ids.size}, {self._n_features}), "
                f"got {frames.shape}"
            )
        window = self._config.window
        if ids.size == 0:
            return np.zeros(0, dtype=bool), np.empty((0, window, self._n_features))

        self._buffer[ids, self._seen[ids] % window] = frames
        self._seen[ids] += 1
        seen = self._seen[ids]
        first = seen == window
        follow = seen > window
        self._since_emit[ids[follow]] += 1
        ready = first | (follow & (self._since_emit[ids] >= self._config.stride))
        self._since_emit[ids[ready]] = 0

        ready_ids = ids[ready]
        if ready_ids.size == 0:
            return ready, np.empty((0, window, self._n_features))
        # The oldest frame of stream s lives at ring slot seen[s] % window,
        # so rotating the slot axis restores time order.
        order = (self._seen[ready_ids, None] + self._window_offsets) % window
        return ready, self._buffer[ready_ids[:, None], order]

    def reset(self, stream_ids: np.ndarray | None = None) -> None:
        """Restore fresh-stream state for some (default: all) streams."""
        ids = self._check_ids(stream_ids)
        self._seen[ids] = 0
        self._since_emit[ids] = 0

    def export_slot(self, stream_id: int) -> WindowSlotState:
        """Snapshot one slot's complete ring state (a deep copy).

        Together with :meth:`import_slot` this is the migration
        primitive: emission semantics depend only on ``(seen,
        since_emit)`` and window contents only on the ring rows plus
        ``seen % window``, so the triple reproduces the slot exactly in
        any batch with the same window configuration.
        """
        slot = self._check_ids(np.array([stream_id]))[0]
        return WindowSlotState(
            buffer=self._buffer[slot].copy(),
            seen=int(self._seen[slot]),
            since_emit=int(self._since_emit[slot]),
        )

    def import_slot(self, stream_id: int, state: WindowSlotState) -> None:
        """Restore a slot from an :meth:`export_slot` snapshot.

        The receiving batch must have the same window length and feature
        width the state was exported from (:class:`ShapeError`
        otherwise); the target slot's previous state is overwritten.
        """
        slot = self._check_ids(np.array([stream_id]))[0]
        buffer = np.asarray(state.buffer, dtype=float)
        expected = (self._config.window, self._n_features)
        if buffer.shape != expected:
            raise ShapeError(
                f"slot state buffer must have shape {expected}, "
                f"got {buffer.shape}"
            )
        if state.seen < 0 or state.since_emit < 0:
            raise ShapeError(
                "slot state counters must be non-negative, got "
                f"seen={state.seen}, since_emit={state.since_emit}"
            )
        self._buffer[slot] = buffer
        self._seen[slot] = int(state.seen)
        self._since_emit[slot] = int(state.since_emit)

    def _check_ids(self, stream_ids: np.ndarray | None) -> np.ndarray:
        """Validate stream indices: 1-D, in range, no duplicates."""
        if stream_ids is None:
            return np.arange(self._n_streams)
        ids = np.asarray(stream_ids, dtype=int)
        if ids.ndim != 1:
            raise ShapeError(f"stream_ids must be 1-D, got shape {ids.shape}")
        if ids.size and (ids.min() < 0 or ids.max() >= self._n_streams):
            raise ShapeError(
                f"stream_ids must lie in [0, {self._n_streams}), got "
                f"[{ids.min()}, {ids.max()}]"
            )
        if np.unique(ids).size != ids.size:
            raise ShapeError("stream_ids must not contain duplicates")
        return ids


class StreamingWindow:
    """Incrementally maintained sliding window for one online stream.

    A thin single-stream wrapper over :class:`StreamingWindowBatch`: push
    frames one at a time with :meth:`push`; once ``window`` frames have
    accumulated every subsequent push (at multiples of ``stride``) yields
    a ready window.

    Example
    -------
    >>> sw = StreamingWindow(WindowConfig(window=3, stride=1), n_features=2)
    >>> for t in range(5):
    ...     ready = sw.push(np.full(2, float(t)))
    """

    def __init__(self, config: WindowConfig, n_features: int) -> None:
        self._batch = StreamingWindowBatch(config, 1, n_features)

    @property
    def config(self) -> WindowConfig:
        """The window configuration this stream was built with."""
        return self._batch.config

    @property
    def frames_seen(self) -> int:
        """Total number of frames pushed so far."""
        return int(self._batch.frames_seen[0])

    def push(self, frame: np.ndarray) -> np.ndarray | None:
        """Append a frame; return the current window when one is due.

        Returns ``None`` while the buffer is warming up or between strides.
        """
        frame = np.asarray(frame, dtype=float)
        if frame.shape != (self._batch.n_features,):
            raise ShapeError(
                f"frame must have shape ({self._batch.n_features},), got {frame.shape}"
            )
        ready, windows = self._batch.push(frame[None, :])
        return windows[0] if ready[0] else None

    def reset(self) -> None:
        """Clear the buffer (e.g. at a trajectory boundary)."""
        self._batch.reset()

    def iter_windows(self, frames: np.ndarray) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(end_frame_index, window)`` pairs for a whole sequence.

        Convenience wrapper equivalent to pushing every row of ``frames``.
        """
        frames = np.asarray(frames, dtype=float)
        for t in range(frames.shape[0]):
            ready = self.push(frames[t])
            if ready is not None:
                yield t, ready
