"""Benchmark: regenerate paper Table V (erroneous-gesture step, Suturing).

Ablates gesture-specific vs non-specific, LSTM vs 1D-CNN and feature
subsets with perfect gesture boundaries, printing TPR/TNR/PPV/NPV rows.
"""

from conftest import run_once

from repro.experiments import table5


def test_table5_suturing_detection(benchmark, scale):
    rows = run_once(benchmark, lambda: table5.run(scale=scale, seed=0))
    print()
    print(table5.render(rows))

    # All setups must be meaningfully better than coin flips on at least
    # one side of the confusion matrix (paper band: TPR/TNR ~0.7).
    for row in rows:
        assert max(row.metrics.tpr, row.metrics.tnr) > 0.5
    # The CRG feature subset performs comparably to all features
    # (paper: "similar or better performance").
    conv_rows = {r.features: r for r in rows if r.model == "conv" and "non" not in r.setup}
    if "CRG" in conv_rows and "All" in conv_rows:
        assert conv_rows["CRG"].metrics.tpr > conv_rows["All"].metrics.tpr - 0.15
