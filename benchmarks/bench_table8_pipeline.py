"""Benchmark: regenerate paper Table VIII (overall pipeline evaluation).

Compares perfect-boundary / pipelined / non-context-specific monitoring
on both tasks, printing AUC, F1, reaction time, early-detection rate and
compute time.  Shape targets: perfect boundaries >= pipelined monitor,
context-specific not worse than the baseline, negative mean reaction
times for the pipelined monitor (detection after error onset).
"""

import numpy as np
from conftest import run_once

from repro.experiments import table8


def test_table8_pipeline(benchmark, scale):
    rows = run_once(
        benchmark, lambda: table8.run(scale=scale, seed=0, tasks=("suturing",))
    )
    print()
    print(table8.render(rows))

    by_setup = {r.setup: r for r in rows}
    perfect = by_setup["gesture-specific (perfect boundaries)"]
    pipelined = by_setup["gesture-specific (with gesture classifier)"]
    baseline = by_setup["non-gesture-specific"]

    # Perfect boundaries give the best AUC (paper: 0.83 vs 0.81).
    assert perfect.avg_auc >= pipelined.avg_auc - 0.02
    # Context-specific detection does not lose to the baseline.
    assert pipelined.avg_auc > baseline.avg_auc - 0.05
    # The pipeline has a real compute cost per window.
    assert pipelined.avg_compute_ms > 0.0
    # Early-detection percentage is a valid rate.
    for row in rows:
        if not np.isnan(row.early_detection_pct):
            assert 0.0 <= row.early_detection_pct <= 100.0
