"""Client SDKs for the remote ingest gateway: sync sockets and asyncio.

Two clients over the same wire protocol
(:mod:`~repro.serving.remote.protocol`):

- :class:`RemoteMonitorClient` — blocking sockets, for robot-side
  integrations, scripts and tests that live in synchronous code.  Every
  read transparently answers gateway heartbeats and buffers event
  messages, so control calls (``open_session``, ``close_session``,
  ``gateway_stats``) and the event reader (``next_event``) can
  interleave freely on one connection.
- :class:`AsyncRemoteMonitorClient` — asyncio streams, for
  fleet-scale ingest (the load benchmark drives 64+ of these
  concurrently).  A background reader task demultiplexes the stream:
  events flow to the ``events()`` async iterator, control replies
  resolve the awaiting call, heartbeats are echoed.

Shared semantics:

- ``feed`` is **unacknowledged** at the call site — frames stream at
  full rate and backpressure is TCP itself (``sendall`` /
  ``writer.drain()`` block when the gateway falls behind).  A feed the
  gateway rejects (wrong width, unknown session) arrives as an ERROR
  message and is raised by the *next* call that reads the stream.
- gateway-side failures re-raise as their original
  :mod:`repro.errors` types (same mapping as the shard transport), so
  remote and local engines fail identically at the call site.
- an event with ``error`` set is a terminal fail-safe notice for its
  session (worker crash at the gateway), carrying ``flag=True``.
- **session resume** — when the gateway runs with a resume grace
  window, OPEN acks carry a ``resume_token`` and both clients
  transparently number their FRAME batches, buffer them until the
  gateway's ACK, and count events at wire-decode time.  After a
  disconnect, :meth:`~RemoteMonitorClient.detach_session` captures a
  :class:`ResumeState` (pure local bookkeeping — it works on a dead
  client) and :meth:`~RemoteMonitorClient.resume_session` on a fresh
  connection replays the unacked tail from the gateway's acked seq and
  re-queues carried-over events — no frame or event is lost or
  duplicated across the reconnect.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import socket
from collections import deque
from collections.abc import AsyncIterator
from dataclasses import dataclass, field

import numpy as np

from ... import errors
from ...errors import ProtocolError, WorkerError
from ..service import SessionEvent
from .protocol import (
    HEADER_SIZE,
    MessageReader,
    MessageType,
    decode_ack,
    decode_events,
    decode_header,
    decode_json,
    encode_frames,
    encode_json,
    encode_message,
)

logger = logging.getLogger(__name__)


@dataclass
class ResumeState:
    """Everything needed to resume a session on a new connection.

    Produced by ``detach_session`` (both SDKs), consumed by
    ``resume_session``.  ``buffer`` holds the frame batches the gateway
    never acked, keyed by their wire seq; ``pending_events`` are events
    that were decoded off the old connection but not yet consumed by the
    application — they are re-queued on the resuming client so the
    stream stays gapless.
    """

    session_id: str
    token: str
    next_seq: int  #: frames sent so far (the next batch's seq)
    acked_seq: int  #: frames the gateway had acked at detach time
    events_received: int  #: events decoded off the wire for this session
    buffer: list = field(default_factory=list)  #: [(seq, frames)] unacked
    pending_events: list = field(default_factory=list)


class _SessionTrack:
    """Per-session resume bookkeeping inside a client."""

    __slots__ = ("token", "next_seq", "acked", "buffer", "events_received")

    def __init__(self, token: str | None) -> None:
        self.token = token
        self.next_seq = 0
        self.acked = 0
        self.buffer: deque = deque()  # (seq, frames) awaiting an ACK
        self.events_received = 0

    def record_send(self, seq: int, frames: np.ndarray) -> None:
        self.next_seq = seq + frames.shape[0]
        if self.token is not None:
            self.buffer.append((seq, frames))

    def record_ack(self, acked: int) -> None:
        if acked > self.acked:
            self.acked = acked
        while self.buffer and self.buffer[0][0] + self.buffer[0][1].shape[0] <= self.acked:
            self.buffer.popleft()


def _gateway_exception(info: dict) -> Exception:
    """Rebuild a gateway ERROR payload as its original exception type.

    Mirrors :func:`repro.serving.transport.raise_remote`: names inside
    the :mod:`repro.errors` hierarchy come back as that class, anything
    else degrades to :class:`WorkerError` carrying the original name.
    """
    error_type = info.get("error_type") or ""
    message = info.get("error") or ""
    cls = getattr(errors, error_type, None)
    if isinstance(cls, type) and issubclass(cls, errors.ReproError):
        return cls(message)
    return WorkerError(f"{error_type}: {message}")


class RemoteMonitorClient:
    """Synchronous gateway client over one blocking TCP connection.

    ::

        with RemoteMonitorClient(host, port) as client:
            sid = client.open_session("theatre-7")
            client.feed(sid, frames)                # (n, n_features) float64
            for event in client.events_for(sid, n_frames):
                ...
            summary = client.close_session(sid)     # {"n_frames", "n_flagged"}

    One connection can multiplex many sessions.  All methods may raise
    the gateway's re-mapped :mod:`repro.errors` exceptions; a dead
    gateway surfaces as :class:`WorkerError`.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 60.0) -> None:
        self.timeout_s = timeout_s
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = MessageReader()
        self._events: deque[SessionEvent] = deque()
        #: Reply types still owed by the gateway for requests that were
        #: answered by an *asynchronous* ERROR instead (e.g. a rejected
        #: feed raising out of a stats call); swallowed when they arrive.
        self._stale: deque[MessageType] = deque()
        #: Per-session resume bookkeeping (seq numbering, unacked
        #: buffer, decode-time event counts).
        self._tracks: dict[str, _SessionTrack] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "RemoteMonitorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection.  Sessions still open on it are ended
        fail-safe by the gateway (drain-and-close, ``error`` set)."""
        if not self._closed:
            self._closed = True
            # A close() failing on an already-broken socket is the
            # expected teardown race, not an error worth surfacing.
            with contextlib.suppress(OSError):
                self._sock.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, msg_type: MessageType, payload: bytes = b"") -> None:
        if self._closed:
            raise WorkerError("client is closed")
        try:
            self._sock.sendall(encode_message(msg_type, payload))
        except OSError as exc:
            raise WorkerError(f"gateway connection lost: {exc}") from exc

    def _read_next(self) -> tuple[MessageType, bytes]:
        """One complete message off the stream (blocking)."""
        while True:
            message = self._reader.next_message()
            if message is not None:
                return message
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                raise TimeoutError(
                    f"no gateway message within {self._sock.gettimeout()}s"
                ) from exc
            except OSError as exc:
                raise WorkerError(f"gateway connection lost: {exc}") from exc
            if not data:
                raise WorkerError("gateway closed the connection")
            self._reader.feed(data)

    def _read_until(self, expected: MessageType | None) -> bytes | None:
        """The one demux loop: read until ``expected`` arrives, or —
        with ``expected=None`` — until at least one event is buffered.

        Along the way: heartbeats are echoed, events buffered, and
        mapped ERRORs raised.  An ERROR not attributed to this request
        (``in_reply_to``) is an asynchronous failure — e.g. a rejected
        unacked feed; it is raised here while the still-owed
        ``expected`` reply is marked *stale* so a later read swallows it
        (reply or attributed ERROR alike, FIFO) instead of
        desynchronising the stream.  A read timeout likewise marks the
        owed reply stale before propagating.
        """
        while True:
            if expected is None and self._events:
                return None
            try:
                msg_type, payload = self._read_next()
            except TimeoutError:
                if expected is not None:
                    self._stale.append(expected)
                raise
            if msg_type is MessageType.HEARTBEAT:
                self._send(MessageType.HEARTBEAT)
                continue
            if msg_type is MessageType.EVENT:
                for event in decode_events(payload):
                    track = self._tracks.get(event.session_id)
                    if track is None:
                        # No track means this connection never bound the
                        # session (an OPEN/RESUME ack installs one): the
                        # event is an orphan from a resume attempt that
                        # was abandoned mid-flight — the session lives
                        # (or will live) on another connection, which
                        # receives the event via the resume replay.
                        continue
                    # Counted at decode time, not consumption time: what
                    # a resume must NOT replay is exactly what already
                    # crossed the wire.
                    track.events_received += 1
                    self._events.append(event)
                continue
            if msg_type is MessageType.ACK:
                ack_sid, ack_seq = decode_ack(payload)
                track = self._tracks.get(ack_sid)
                if track is not None:
                    track.record_ack(ack_seq)
                continue
            if self._stale and msg_type is self._stale[0]:
                self._stale.popleft()
                continue
            if msg_type is MessageType.ERROR:
                info = decode_json(payload)
                in_reply_to = info.get("in_reply_to")
                if (
                    in_reply_to is not None
                    and self._stale
                    and in_reply_to == self._stale[0].name
                ):
                    # Replies arrive in request order, so an attributed
                    # ERROR matching the oldest owed reply answers that
                    # abandoned request — swallow it, don't blame the
                    # current one.
                    self._stale.popleft()
                    continue
                if expected is not None and in_reply_to != expected.name:
                    self._stale.append(expected)
                raise _gateway_exception(info)
            if expected is not None and msg_type is expected:
                return payload
            raise ProtocolError(
                f"expected {expected.name} reply, got {msg_type.name}"
                if expected is not None
                else f"unexpected {msg_type.name} while waiting for events"
            )

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(
        self, session_id: str | None = None, record_timeline: bool = False
    ) -> str:
        """Open a session on the gateway; returns the (possibly
        gateway-assigned) session id."""
        self._send(
            MessageType.OPEN,
            encode_json(
                {"session_id": session_id, "record_timeline": record_timeline}
            ),
        )
        ack = decode_json(self._read_until(MessageType.OPEN))
        sid = ack["session_id"]
        self._tracks[sid] = _SessionTrack(ack.get("resume_token"))
        return sid

    def feed(self, session_id: str, frames: np.ndarray) -> None:
        """Stream kinematics rows (see the module docs; acked and
        buffered for resume when the gateway granted a resume token)."""
        frames = np.ascontiguousarray(frames, dtype="<f8")
        if frames.ndim == 1:
            frames = frames[None, :]
        track = self._tracks.get(session_id)
        seq = track.next_seq if track is not None else 0
        self._send(MessageType.FRAME, encode_frames(session_id, frames, seq))
        if track is not None:
            track.record_send(seq, frames)

    def next_event(self) -> SessionEvent:
        """The next event from any of this connection's sessions."""
        self._read_until(None)
        return self._events.popleft()

    def events_for(self, session_id: str, n_events: int) -> list[SessionEvent]:
        """Collect the next ``n_events`` events of one session (events of
        other sessions on this connection stay buffered).

        Returns early when the session's *terminal* fail-safe event
        arrives (``error`` set — a shard crash or gateway-side closure):
        nothing further will ever come for that session, so waiting for
        the full count would only time out and bury the reason.
        """
        collected: list[SessionEvent] = []
        requeue: list[SessionEvent] = []
        try:
            while len(collected) < n_events:
                event = self.next_event()
                if event.session_id == session_id:
                    collected.append(event)
                    if event.error is not None:
                        break
                else:
                    requeue.append(event)
        finally:
            # Restore other sessions' events even when next_event raises
            # (async ERROR, timeout) — they were received, not consumed.
            self._events.extendleft(reversed(requeue))
        return collected

    def close_session(self, session_id: str) -> dict:
        """Close a session (the gateway drains it first); returns the
        summary ``{"session_id", "n_frames", "n_flagged"}``.  Events
        still in flight are buffered for ``next_event``."""
        self._send(
            MessageType.CLOSE, encode_json({"session_id": session_id})
        )
        summary = decode_json(self._read_until(MessageType.CLOSE))
        self._tracks.pop(session_id, None)
        return summary

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def detach_session(self, session_id: str) -> ResumeState:
        """Capture a session's resume state off this client.

        Pure local bookkeeping — no socket traffic — so it works on a
        client whose connection already died, which is the point: after
        a crash/disconnect, detach here, connect a fresh client, and
        :meth:`resume_session` there.  Raises
        :class:`~repro.errors.ProtocolError` when the session has no
        resume state (opened on a gateway without a grace window).
        """
        track = self._tracks.pop(session_id, None)
        if track is None or track.token is None:
            raise ProtocolError(
                f"session {session_id!r} has no resume state "
                "(gateway resume disabled?)"
            )
        pending = [e for e in self._events if e.session_id == session_id]
        if pending:
            self._events = deque(
                e for e in self._events if e.session_id != session_id
            )
        return ResumeState(
            session_id=session_id,
            token=track.token,
            next_seq=track.next_seq,
            acked_seq=track.acked,
            events_received=track.events_received,
            buffer=list(track.buffer),
            pending_events=pending,
        )

    def resume_session(self, state: ResumeState) -> str:
        """Adopt a detached session onto this connection.

        Presents the resume token, learns the gateway's acked seq, and
        replays only the unacked tail of the buffered frames (the
        gateway trims any overlap by seq).  Events the old connection
        decoded but the application never consumed are re-queued first,
        and the gateway follows its RESUME ack with the events the
        client missed — the merged stream is gapless and
        duplicate-free.
        """
        self._send(
            MessageType.RESUME,
            encode_json(
                {
                    "session_id": state.session_id,
                    "token": state.token,
                    "last_event": state.events_received,
                }
            ),
        )
        reply = decode_json(self._read_until(MessageType.RESUME))
        acked = int(reply["acked_seq"])
        track = _SessionTrack(state.token)
        track.next_seq = state.next_seq
        track.acked = acked
        track.events_received = state.events_received
        track.buffer = deque(
            (seq, frames)
            for seq, frames in state.buffer
            if seq + frames.shape[0] > acked
        )
        self._tracks[state.session_id] = track
        # Carried-over events predate anything this connection will
        # deliver for the session (the gateway's replay starts after
        # our last_event), so plain FIFO order is already correct.
        self._events.extend(state.pending_events)
        for seq, frames in list(track.buffer):
            self._send(
                MessageType.FRAME,
                encode_frames(state.session_id, frames, seq),
            )
        return state.session_id

    def gateway_stats(self) -> dict:
        """Fetch :meth:`MonitorGateway.gateway_stats` over the wire."""
        self._send(MessageType.STATS)
        return decode_json(self._read_until(MessageType.STATS))

    def stream_session(
        self,
        frames: np.ndarray,
        session_id: str | None = None,
        chunk_size: int = 64,
        max_in_flight: int = 256,
    ) -> list[SessionEvent]:
        """Convenience: open, feed in chunks, collect every event, close.

        Returns the session's full event list (one per frame, in frame
        order) — the remote analogue of
        :meth:`repro.core.SafetyMonitor.stream` over a whole trajectory.
        Feeding and reading interleave so at most ``max_in_flight``
        events are ever outstanding: a long trajectory fed blind would
        otherwise overflow the gateway's bounded send queue and get
        this client disconnected as a slow consumer.  Raises
        :class:`WorkerError` if the session ends fail-safe mid-stream.
        """
        frames = np.asarray(frames, dtype=float)
        if frames.ndim == 1:
            frames = frames[None, :]
        sid = self.open_session(session_id)
        events: list[SessionEvent] = []
        fed = 0
        for start in range(0, frames.shape[0], chunk_size):
            chunk = frames[start : start + chunk_size]
            self.feed(sid, chunk)
            fed += chunk.shape[0]
            outstanding = fed - len(events)
            if outstanding > max_in_flight:
                events.extend(self.events_for(sid, outstanding - max_in_flight))
                if events and events[-1].error is not None:
                    break
        if not (events and events[-1].error is not None):
            events.extend(self.events_for(sid, frames.shape[0] - len(events)))
        if events and events[-1].error is not None:
            raise WorkerError(
                f"session {sid!r} ended fail-safe: {events[-1].error}"
            )
        self.close_session(sid)
        return events


class AsyncRemoteMonitorClient:
    """Asyncio gateway client: concurrent ingest and a live event stream.

    ::

        client = await AsyncRemoteMonitorClient.connect(host, port)
        sid = await client.open_session("theatre-7")
        await client.feed(sid, frames)
        async for event in client.events():
            ...
        await client.close_session(sid)
        await client.aclose()

    A background reader task demultiplexes the connection; control
    calls are serialised (one in flight at a time), feeds and event
    consumption run freely alongside them.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        timeout_s: float = 60.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.timeout_s = timeout_s
        self._events: asyncio.Queue = asyncio.Queue()
        self._control_lock = asyncio.Lock()
        self._pending: tuple[MessageType, asyncio.Future] | None = None
        self._conn_error: Exception | None = None
        self._tracks: dict[str, _SessionTrack] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="remote-client-reader"
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout_s: float = 60.0
    ) -> "AsyncRemoteMonitorClient":
        """Open a gateway connection; raises :class:`WorkerError` when the
        gateway is unreachable within ``timeout_s``."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise WorkerError(
                f"cannot reach gateway at {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer, timeout_s=timeout_s)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(HEADER_SIZE)
                msg_type, length = decode_header(header)
                payload = (
                    await self._reader.readexactly(length) if length else b""
                )
                if msg_type is MessageType.HEARTBEAT:
                    self._writer.write(encode_message(MessageType.HEARTBEAT))
                    continue
                if msg_type is MessageType.EVENT:
                    for event in decode_events(payload):
                        track = self._tracks.get(event.session_id)
                        if track is None:
                            # Orphan: this connection never bound the
                            # session (see the sync client) — drop it.
                            continue
                        track.events_received += 1
                        self._events.put_nowait(event)
                    continue
                if msg_type is MessageType.ACK:
                    ack_sid, ack_seq = decode_ack(payload)
                    track = self._tracks.get(ack_sid)
                    if track is not None:
                        track.record_ack(ack_seq)
                    continue
                if msg_type is MessageType.ERROR:
                    info = decode_json(payload)
                    exc = _gateway_exception(info)
                    pending = self._pending
                    if (
                        pending is not None
                        and info.get("in_reply_to") == pending[0].name
                        and not pending[1].done()
                    ):
                        self._pending = None
                        pending[1].set_exception(exc)
                    else:
                        # Asynchronous failure (e.g. a rejected unacked
                        # feed): surfaced through the event stream.
                        self._events.put_nowait(exc)
                    continue
                pending = self._pending
                if pending is not None and pending[0] is msg_type:
                    self._pending = None
                    if not pending[1].done():
                        pending[1].set_result(payload)
                    continue
                raise ProtocolError(f"unsolicited {msg_type.name} message")
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            if isinstance(exc, (asyncio.IncompleteReadError, ConnectionError, OSError)):
                exc = WorkerError(f"gateway connection lost: {exc}")
            self._conn_error = exc
            self._resolve_pending_error(exc)
            self._events.put_nowait(_STREAM_END)

    def _resolve_pending_error(self, exc: Exception) -> bool:
        pending = self._pending
        if pending is not None and not pending[1].done():
            self._pending = None
            pending[1].set_exception(exc)
            return True
        return False

    def _check_alive(self) -> None:
        if self._closed:
            raise WorkerError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error

    async def _control(
        self, msg_type: MessageType, payload: bytes, expect: MessageType
    ) -> bytes:
        async with self._control_lock:
            self._check_alive()
            future = asyncio.get_running_loop().create_future()
            self._pending = (expect, future)
            try:
                self._writer.write(encode_message(msg_type, payload))
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                # The request never made it out: retire the pending slot
                # so the reader loop cannot resolve an abandoned future.
                if self._pending is not None and self._pending[1] is future:
                    self._pending = None
                future.cancel()
                raise WorkerError(f"gateway connection lost: {exc}") from exc
            try:
                # Bound the wait like the sync client's socket timeout:
                # a live-but-wedged gateway must not hang callers.
                return await asyncio.wait_for(future, self.timeout_s)
            except asyncio.TimeoutError:
                # The reply may still arrive later; rather than risk
                # attributing it to a future request, declare the
                # connection dead (the gateway fail-safes our sessions).
                self._conn_error = WorkerError(
                    f"no {expect.name} reply within {self.timeout_s}s; "
                    "connection abandoned"
                )
                if self._pending is not None and self._pending[1] is future:
                    self._pending = None
                self._reader_task.cancel()
                self._events.put_nowait(_STREAM_END)
                raise TimeoutError(
                    f"no {expect.name} reply within {self.timeout_s}s"
                ) from None

    # ------------------------------------------------------------------
    async def open_session(
        self, session_id: str | None = None, record_timeline: bool = False
    ) -> str:
        """Open a session; returns the (possibly assigned) session id."""
        payload = await self._control(
            MessageType.OPEN,
            encode_json(
                {"session_id": session_id, "record_timeline": record_timeline}
            ),
            MessageType.OPEN,
        )
        ack = decode_json(payload)
        sid = ack["session_id"]
        self._tracks[sid] = _SessionTrack(ack.get("resume_token"))
        return sid

    async def feed(self, session_id: str, frames: np.ndarray) -> None:
        """Stream kinematics rows; ``await`` applies TCP backpressure
        when the gateway is behind (acked and buffered for resume when
        the gateway granted a resume token)."""
        self._check_alive()
        frames = np.ascontiguousarray(frames, dtype="<f8")
        if frames.ndim == 1:
            frames = frames[None, :]
        track = self._tracks.get(session_id)
        seq = track.next_seq if track is not None else 0
        try:
            self._writer.write(
                encode_message(
                    MessageType.FRAME, encode_frames(session_id, frames, seq)
                )
            )
            if track is not None:
                track.record_send(seq, frames)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise WorkerError(f"gateway connection lost: {exc}") from exc

    async def close_session(self, session_id: str) -> dict:
        """Drain-and-close one session; returns the gateway's summary."""
        payload = await self._control(
            MessageType.CLOSE,
            encode_json({"session_id": session_id}),
            MessageType.CLOSE,
        )
        self._tracks.pop(session_id, None)
        return decode_json(payload)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def detach_session(self, session_id: str) -> ResumeState:
        """Capture a session's resume state (local bookkeeping only —
        works on a client whose connection already died).  See
        :meth:`RemoteMonitorClient.detach_session`."""
        track = self._tracks.pop(session_id, None)
        if track is None or track.token is None:
            raise ProtocolError(
                f"session {session_id!r} has no resume state "
                "(gateway resume disabled?)"
            )
        pending: list[SessionEvent] = []
        keep: list = []
        while True:
            try:
                item = self._events.get_nowait()
            except asyncio.QueueEmpty:
                break
            if (
                isinstance(item, SessionEvent)
                and item.session_id == session_id
            ):
                pending.append(item)
            else:
                keep.append(item)
        for item in keep:
            self._events.put_nowait(item)
        return ResumeState(
            session_id=session_id,
            token=track.token,
            next_seq=track.next_seq,
            acked_seq=track.acked,
            events_received=track.events_received,
            buffer=list(track.buffer),
            pending_events=pending,
        )

    async def resume_session(self, state: ResumeState) -> str:
        """Adopt a detached session onto this connection; replays the
        unacked frame tail.  See
        :meth:`RemoteMonitorClient.resume_session`."""
        # Install the track and re-queue carried-over events *before*
        # the request goes out: the reader task may process the
        # gateway's replayed events the moment the RESUME reply
        # resolves, and they must find the track (decode-time counting)
        # and land behind the carried-over ones.
        track = _SessionTrack(state.token)
        track.next_seq = state.next_seq
        track.acked = state.acked_seq
        track.events_received = state.events_received
        track.buffer = deque(state.buffer)
        self._tracks[state.session_id] = track
        for event in state.pending_events:
            self._events.put_nowait(event)
        try:
            payload = await self._control(
                MessageType.RESUME,
                encode_json(
                    {
                        "session_id": state.session_id,
                        "token": state.token,
                        "last_event": state.events_received,
                    }
                ),
                MessageType.RESUME,
            )
        except BaseException:
            # Rejected: roll back so ``state`` stays valid for a retry
            # on another connection.  No replay event can have arrived
            # (the session was never adopted), so the queue holds at
            # most the events we just added — reclaim them.
            self._tracks.pop(state.session_id, None)
            keep: list = []
            while True:
                try:
                    item = self._events.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not (
                    isinstance(item, SessionEvent)
                    and item.session_id == state.session_id
                ):
                    keep.append(item)
            for item in keep:
                self._events.put_nowait(item)
            raise
        track.record_ack(int(decode_json(payload)["acked_seq"]))
        try:
            for seq, frames in list(track.buffer):
                self._writer.write(
                    encode_message(
                        MessageType.FRAME,
                        encode_frames(state.session_id, frames, seq),
                    )
                )
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise WorkerError(f"gateway connection lost: {exc}") from exc
        return state.session_id

    async def gateway_stats(self) -> dict:
        """Fetch :meth:`MonitorGateway.gateway_stats` over the wire."""
        payload = await self._control(
            MessageType.STATS, b"", MessageType.STATS
        )
        return decode_json(payload)

    async def next_event(self) -> SessionEvent:
        """The next event from any of this connection's sessions."""
        self._check_alive()
        item = await self._events.get()
        if item is _STREAM_END:
            raise self._conn_error or WorkerError("gateway connection lost")
        if isinstance(item, Exception):
            raise item
        return item

    async def events(self) -> AsyncIterator[SessionEvent]:
        """Yield events until the connection ends.  Asynchronous gateway
        ERRORs (e.g. a rejected feed) raise out of the iterator."""
        while True:
            try:
                yield await self.next_event()
            except WorkerError:
                if self._closed or self._conn_error is not None:
                    return
                raise

    async def aclose(self) -> None:
        """Close the connection (gateway fail-safes any open sessions)."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass  # the expected outcome of cancel()
        except Exception as exc:  # noqa: BLE001 - teardown must finish,
            # but a reader that died on something other than our cancel
            # is still logged rather than silently dropped.
            logger.warning("reader task ended with error during close: %s", exc)
        self._writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncRemoteMonitorClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


#: Sentinel the reader task pushes when the connection ends.
_STREAM_END = object()
