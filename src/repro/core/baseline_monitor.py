"""The non-context-specific baseline monitor.

The paper's baseline (Section III / V-B): a single binary classifier
trained on all kinematics windows with safe/unsafe labels and *no* notion
of the current gesture.  It reuses :class:`ErrorClassifier` with
``gesture=None`` so the architecture families match the context-specific
library exactly — the comparison isolates the value of context.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import NotFittedError
from ..jigsaws.dataset import WindowedData
from .error_classifiers import ErrorClassifier, ErrorClassifierConfig


class BaselineMonitor:
    """Single safe/unsafe classifier with no operational context."""

    def __init__(
        self,
        config: ErrorClassifierConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.classifier = ErrorClassifier(gesture=None, config=config, seed=seed)
        self._fitted = False

    def fit(self, data: WindowedData, verbose: bool = False) -> None:
        """Train on every window of the dataset, ignoring gesture labels."""
        self.classifier.fit(data.x, data.unsafe, verbose=verbose)
        self._fitted = True

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Unsafe probability per window."""
        self._check_fitted()
        return self.classifier.predict_proba(x)

    def timed_predict_proba(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        """(probabilities, mean milliseconds per window)."""
        self._check_fitted()
        start = time.perf_counter()
        probs = self.classifier.predict_proba(x)
        elapsed = 1000.0 * (time.perf_counter() - start) / max(np.asarray(x).shape[0], 1)
        return probs, elapsed

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("BaselineMonitor must be fitted first")
