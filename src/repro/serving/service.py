"""Multi-stream monitoring service: the batched online serving engine.

The paper frames deployment as continuous runtime monitoring of live
procedures, which means many simultaneous sessions rather than one
offline replay.  :class:`MonitorService` manages N concurrent trajectory
sessions (open / feed / close lifecycle) against a single trained
:class:`~repro.core.pipeline.SafetyMonitor`.  Each :meth:`MonitorService.tick`
advances every session with pending frames by one frame and runs each
pipeline stage **once** on the windows that became ready across all
sessions — one scaler transform and one model forward per stage per tick,
instead of one per stream — via the ring-buffered
:class:`~repro.kinematics.windows.StreamingWindowBatch`.

Because model inference is batch-size invariant (see
:meth:`repro.nn.Sequential.predict_proba`), a session served here emits
bit-for-bit the same gestures and scores as an isolated
:meth:`~repro.core.pipeline.SafetyMonitor.stream` run over the same
frames — the parity test suite locks this in.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError, DatasetError, ShapeError
from ..gestures.vocabulary import Gesture
from ..kinematics.windows import StreamingWindowBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> serving)
    from ..core.pipeline import SafetyMonitor


@dataclass(frozen=True)
class SessionEvent:
    """One monitored frame of one session.

    Mirrors the tuple yielded by :meth:`SafetyMonitor.stream`:
    ``gesture`` is 0 while the gesture stage is warming up, ``score`` the
    current unsafe probability, ``flag`` the thresholded decision.

    ``error`` is ``None`` for ordinary monitoring events.  The sharded
    service (:class:`~repro.serving.sharded.ShardedMonitorService`) sets
    it on the single *terminal* event it emits per session lost to a
    worker crash; such events carry ``flag=True`` — a failed monitor is
    reported unsafe, never silently safe (fail-safe contract, see
    ``docs/serving.md``).
    """

    session_id: str
    frame_index: int
    gesture: int
    score: float
    flag: bool
    error: str | None = None


@dataclass
class SessionResult:
    """Full per-frame timeline of a closed session."""

    session_id: str
    gestures: np.ndarray
    unsafe_scores: np.ndarray
    unsafe_flags: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of frames the session processed before closing."""
        return int(self.gestures.shape[0])


#: Per-tick latency samples retained for percentile queries.  A service
#: monitoring live procedures ticks indefinitely (~2.6M/day at 30 Hz), so
#: the raw history must be bounded; totals keep counting past the window.
TICK_HISTORY = 65536


@dataclass
class ServiceStats:
    """Latency accounting across ticks (populated by :meth:`tick`).

    ``tick_ms`` holds the most recent :data:`TICK_HISTORY` per-tick
    latencies; ``n_ticks`` and ``frames_processed`` count the full
    service lifetime.
    """

    tick_ms: deque = field(default_factory=lambda: deque(maxlen=TICK_HISTORY))
    n_ticks: int = 0
    frames_processed: int = 0

    def record(self, tick_ms: float, n_frames: int) -> None:
        """Account one executed tick."""
        self.tick_ms.append(tick_ms)
        self.n_ticks += 1
        self.frames_processed += n_frames

    def percentile_ms(self, q: float) -> float:
        """``q``-th percentile of recent per-tick latency in milliseconds."""
        if not self.tick_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.tick_ms), q))

    def mean_ms(self) -> float:
        """Mean recent per-tick latency in milliseconds."""
        return float(np.mean(np.asarray(self.tick_ms))) if self.tick_ms else 0.0


class _Session:
    """Internal per-session state: pending input and output timeline."""

    __slots__ = (
        "id",
        "slot",
        "pending",
        "offset",
        "frames_done",
        "record_timeline",
        "gestures",
        "scores",
    )

    def __init__(self, session_id: str, slot: int, record_timeline: bool) -> None:
        self.id = session_id
        self.slot = slot
        self.pending: deque[np.ndarray] = deque()
        self.offset = 0  # row cursor into the head chunk
        self.frames_done = 0
        self.record_timeline = record_timeline
        self.gestures: list[int] = []
        self.scores: list[float] = []

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    def pending_frames(self) -> int:
        return sum(chunk.shape[0] for chunk in self.pending) - self.offset

    def pop_frame(self) -> np.ndarray:
        head = self.pending[0]
        frame = head[self.offset]
        self.offset += 1
        if self.offset >= head.shape[0]:
            self.pending.popleft()
            self.offset = 0
        return frame


class MonitorService:
    """Serve N concurrent monitoring sessions over one trained monitor.

    Parameters
    ----------
    monitor:
        The trained two-stage :class:`SafetyMonitor` shared by all
        sessions.
    max_sessions:
        Number of preallocated stream slots (concurrently open sessions).

    Lifecycle
    ---------
    :meth:`open_session` reserves a slot, :meth:`feed` enqueues frames
    (any number, any cadence), :meth:`tick` advances every session with
    pending input by exactly one frame and returns the resulting
    :class:`SessionEvent` per advanced session, :meth:`close_session`
    frees the slot and returns the session's full :class:`SessionResult`
    timeline.  :meth:`drain` ticks until no session has pending input.
    """

    def __init__(self, monitor: "SafetyMonitor", max_sessions: int = 64) -> None:
        if max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        self.monitor = monitor
        self.max_sessions = int(max_sessions)
        self.stats = ServiceStats()
        self._sessions: dict[str, _Session] = {}
        self._free_slots: list[int] = list(range(max_sessions - 1, -1, -1))
        self._next_id = 0
        # Window batches are allocated on the first feed, when the
        # kinematics feature width becomes known.
        self._gesture_batch: StreamingWindowBatch | None = None
        self._error_batch: StreamingWindowBatch | None = None
        self._n_features: int | None = None
        self._current_gesture = np.zeros(max_sessions, dtype=np.int64)
        self._current_score = np.zeros(max_sessions)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def n_open_sessions(self) -> int:
        """Number of currently open sessions."""
        return len(self._sessions)

    @property
    def session_ids(self) -> list[str]:
        """Open session ids in opening order."""
        return list(self._sessions)

    @property
    def has_pending(self) -> bool:
        """True while any open session has unprocessed frames."""
        return any(s.has_pending for s in self._sessions.values())

    def pending_frames(self, session_id: str) -> int:
        """Number of fed-but-unprocessed frames of one session."""
        session = self._get(session_id)
        return session.pending_frames() if session.has_pending else 0

    def frames_done(self, session_id: str) -> int:
        """Number of frames one session has processed (ticked) so far."""
        return self._get(session_id).frames_done

    def open_session(
        self, session_id: str | None = None, record_timeline: bool = True
    ) -> str:
        """Reserve a stream slot; returns the session id.

        Parameters
        ----------
        session_id:
            Explicit id (e.g. an operating-theatre identifier), or
            ``None`` for an auto-generated ``session-NNNN`` id that is
            guaranteed not to collide with explicitly taken names.
        record_timeline:
            With ``record_timeline=False`` the session skips accumulating
            its per-frame gesture/score arrays (``close_session`` then
            returns empty timelines) — use for indefinitely long sessions
            whose consumers only read the per-tick :class:`SessionEvent`
            stream, where an unbounded timeline would leak memory.

        Returns
        -------
        str
            The session id to use with :meth:`feed` /
            :meth:`close_session`.

        Raises
        ------
        ConfigurationError
            If ``session_id`` is already open, or all ``max_sessions``
            slots are in use.

        The slot's ring-buffer window state is reset on reuse, so a new
        procedure always starts from a fresh stream.
        """
        if session_id is None:
            session_id = f"session-{self._next_id:04d}"
            self._next_id += 1
            while session_id in self._sessions:  # explicit id took the name
                session_id = f"session-{self._next_id:04d}"
                self._next_id += 1
        elif session_id in self._sessions:
            raise ConfigurationError(f"session {session_id!r} is already open")
        if not self._free_slots:
            raise ConfigurationError(
                f"all {self.max_sessions} session slots are in use"
            )
        slot = self._free_slots.pop()
        self._sessions[session_id] = _Session(session_id, slot, record_timeline)
        self._current_gesture[slot] = 0
        self._current_score[slot] = 0.0
        if self._gesture_batch is not None:
            self._gesture_batch.reset(np.array([slot]))
        if self._error_batch is not None:
            self._error_batch.reset(np.array([slot]))
        return session_id

    def feed(self, session_id: str, frames: np.ndarray) -> None:
        """Enqueue kinematics frames for a session.

        Parameters
        ----------
        session_id:
            An open session (anything else raises ``DatasetError``).
        frames:
            ``(n, n_features)`` kinematics rows, or a single
            ``(n_features,)`` frame; any number, any cadence.  Frames are
            consumed one per :meth:`tick`, in feed order.  The array is
            not copied — callers must not mutate it afterwards.

        Raises
        ------
        ShapeError
            If the frame width disagrees with the width the service was
            bound to on its first feed (or with the monitor's trained
            width, checked eagerly on that first feed).
        DatasetError
            If no session ``session_id`` is open.

        The first successful feed allocates the service's shared ring
        buffers and permanently binds its feature width.
        """
        session = self._get(session_id)
        frames = np.asarray(frames, dtype=float)
        if frames.ndim == 1:
            frames = frames[None, :]
        if frames.ndim != 2:
            raise ShapeError(
                f"frames must be (n, n_features), got shape {frames.shape}"
            )
        if frames.shape[0] == 0:
            return
        self._ensure_buffers(frames.shape[1])
        if frames.shape[1] != self._n_features:
            raise ShapeError(
                f"service is bound to {self._n_features} features, "
                f"got frames with {frames.shape[1]}"
            )
        session.pending.append(frames)

    def close_session(self, session_id: str) -> SessionResult:
        """Free the session's slot and return its full timeline.

        Pending (un-ticked) frames are discarded; call :meth:`drain`
        first to process them.
        """
        session = self._get(session_id)
        del self._sessions[session_id]
        self._free_slots.append(session.slot)
        scores = np.asarray(session.scores)
        return SessionResult(
            session_id=session_id,
            gestures=np.asarray(session.gestures, dtype=int),
            unsafe_scores=scores,
            unsafe_flags=(scores >= self.monitor.threshold).astype(int),
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def tick(self) -> list[SessionEvent]:
        """Advance every session with pending input by one frame.

        Runs the gesture stage **once** over all gesture windows that
        became ready this tick, then the error stage once per distinct
        active gesture over the ready error windows — one scaler
        transform and one model forward per stage per tick, regardless of
        how many sessions advanced.

        Returns
        -------
        list[SessionEvent]
            One event per advanced session, in session opening order;
            empty when no session had pending frames (an idle tick is a
            no-op and is not recorded in :attr:`stats`).  Events report
            gesture 0 and score 0.0 while a session's windows are still
            warming up.

        Each non-empty tick appends one latency sample to :attr:`stats`.
        """
        active = [s for s in self._sessions.values() if s.has_pending]
        if not active:
            return []
        start = time.perf_counter()
        slots = np.array([s.slot for s in active])
        frames = np.stack([s.pop_frame() for s in active])

        assert self._gesture_batch is not None and self._error_batch is not None
        classifier = self.monitor.gesture_classifier
        feature_idx = classifier.config.feature_indices
        g_frames = frames if feature_idx is None else frames[:, feature_idx]
        g_ready, g_windows = self._gesture_batch.push(g_frames, slots)
        if classifier.model is not None and g_ready.any():
            x = classifier.scaler.transform(g_windows)
            self._current_gesture[slots[g_ready]] = classifier.model.predict(x) + 1

        e_ready, e_windows = self._error_batch.push(frames, slots)
        if e_ready.any():
            e_slots = slots[e_ready]
            gestures = self._current_gesture[e_slots]
            known = gestures > 0
            # One predict_proba per distinct gesture, over every session
            # currently in that context.  Gestures without a trained
            # classifier score 0.0 (safe) — never a stale carry-over.
            new_scores = np.zeros(e_slots.size)
            for gesture_number in np.unique(gestures[known]):
                clf = self.monitor.library.classifiers.get(
                    Gesture(int(gesture_number))
                )
                if clf is None:
                    continue
                mask = gestures == gesture_number
                new_scores[mask] = clf.predict_proba(e_windows[mask])
            self._current_score[e_slots[known]] = new_scores[known]

        threshold = self.monitor.threshold
        events = []
        for session in active:
            gesture = int(self._current_gesture[session.slot])
            score = float(self._current_score[session.slot])
            if session.record_timeline:
                session.gestures.append(gesture)
                session.scores.append(score)
            events.append(
                SessionEvent(
                    session_id=session.id,
                    frame_index=session.frames_done,
                    gesture=gesture,
                    score=score,
                    flag=score >= threshold,
                )
            )
            session.frames_done += 1
        self.stats.record(1000.0 * (time.perf_counter() - start), len(active))
        return events

    def drain(self, collect: bool = True) -> list[SessionEvent]:
        """Tick until no session has pending frames.

        With ``collect=False`` events are discarded as they are produced
        (throughput benchmarking); per-session timelines still accumulate.
        """
        events: list[SessionEvent] = []
        while self.has_pending:
            tick_events = self.tick()
            if collect:
                events.extend(tick_events)
        return events

    # ------------------------------------------------------------------
    def _get(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise DatasetError(f"no open session {session_id!r}")
        return session

    def _expected_n_features(self) -> int | None:
        """Kinematics width the monitor was trained for, when derivable.

        The error-stage scalers see full-width frames; the gesture scaler
        only does when no feature subset is configured.  An untrained
        monitor constrains nothing.
        """
        classifier = self.monitor.gesture_classifier
        if (
            classifier.config.feature_indices is None
            and classifier.scaler.mean_ is not None
        ):
            return int(classifier.scaler.mean_.shape[0])
        for clf in self.monitor.library.classifiers.values():
            if clf.scaler.mean_ is not None:
                return int(clf.scaler.mean_.shape[0])
        return None

    def _ensure_buffers(self, n_features: int) -> None:
        if self._gesture_batch is not None:
            return
        expected = self._expected_n_features()
        if expected is not None and n_features != expected:
            raise ShapeError(
                f"monitor was trained for {expected} kinematics features, "
                f"got frames with {n_features}"
            )
        self._n_features = int(n_features)
        classifier_cfg = self.monitor.gesture_classifier.config
        feature_idx = classifier_cfg.feature_indices
        g_features = n_features if feature_idx is None else len(feature_idx)
        self._gesture_batch = StreamingWindowBatch(
            classifier_cfg.window, self.max_sessions, g_features
        )
        self._error_batch = StreamingWindowBatch(
            self.monitor.config.error_window, self.max_sessions, n_features
        )
