"""Benchmark: regenerate paper Figure 8 (example detection timeline).

Runs one held-out demonstration through the trained monitor and prints
the gesture/unsafe timelines with jitter and reaction-time annotations.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figure8


def test_figure8_timeline(benchmark, scale):
    result = run_once(benchmark, lambda: figure8.run(scale=scale, seed=0))
    print()
    print(figure8.render(result))

    trajectory, output = result.trajectory, result.output
    assert output.gestures.shape == (trajectory.n_frames,)
    assert output.unsafe_flags.shape == (trajectory.n_frames,)
    # The demo was chosen to contain at least one erroneous gesture.
    assert trajectory.unsafe is not None and trajectory.unsafe.any()
    # The reaction-time metric is defined (the monitor reacted at all)
    # in the common case; allow nan at smoke scale.
    assert np.isnan(result.mean_reaction_ms) or abs(result.mean_reaction_ms) < 1e5
