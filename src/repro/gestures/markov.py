"""Finite-state Markov-chain task grammars.

The paper models each surgical task as a finite-state Markov chain whose
states are atomic gestures (Section II, Figure 3).  :class:`MarkovChain`
supports the three operations this reproduction needs:

- **fit** a chain from observed gesture sequences (Figure 3 is "derived
  from the analysis of the dry-lab demonstrations");
- **sample** gesture sequences from a chain (the synthetic-data
  generators draw task grammars from the paper's published chains); and
- **query** transition probabilities / export to :mod:`networkx` for
  analysis and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError, GestureError
from .vocabulary import END_TOKEN, START_TOKEN, Gesture


@dataclass
class MarkovChain:
    """A first-order Markov chain over surgical gestures.

    States are :class:`~repro.gestures.vocabulary.Gesture` members plus the
    virtual ``START_TOKEN``/``END_TOKEN`` sentinels.  Probabilities are
    stored sparsely as ``{state: {next_state: p}}``.
    """

    transitions: dict[int, dict[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for state, row in self.transitions.items():
            total = sum(row.values())
            if row and not np.isclose(total, 1.0, atol=1e-6):
                raise ConfigurationError(
                    f"outgoing probabilities from state {state} sum to {total:.4f}"
                )
            if any(p < 0 for p in row.values()):
                raise ConfigurationError("transition probabilities must be >= 0")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, sequences: list[list[int]], smoothing: float = 0.0) -> "MarkovChain":
        """Maximum-likelihood chain from gesture sequences.

        Each sequence is a list of gesture numbers; virtual start/end
        transitions are added automatically.  ``smoothing`` adds a small
        pseudo-count to every *observed-state* pair (add-k smoothing over
        the states seen in the data).
        """
        if not sequences:
            raise ConfigurationError("at least one sequence is required")
        counts: dict[int, dict[int, float]] = {}
        states: set[int] = set()
        for seq in sequences:
            if not seq:
                continue
            path = [START_TOKEN, *[int(g) for g in seq], END_TOKEN]
            states.update(path)
            for a, b in zip(path[:-1], path[1:]):
                counts.setdefault(a, {}).setdefault(b, 0.0)
                counts[a][b] += 1.0
        if not counts:
            raise ConfigurationError("all sequences were empty")
        if smoothing > 0.0:
            targets = sorted(states - {START_TOKEN})
            for state in sorted(states - {END_TOKEN}):
                row = counts.setdefault(state, {})
                for target in targets:
                    row[target] = row.get(target, 0.0) + smoothing
        transitions: dict[int, dict[int, float]] = {}
        for state, row in counts.items():
            total = sum(row.values())
            transitions[state] = {nxt: c / total for nxt, c in row.items()}
        return cls(transitions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def states(self) -> list[int]:
        """All states (including sentinels), sorted with sentinels last."""
        found: set[int] = set(self.transitions)
        for row in self.transitions.values():
            found.update(row)
        gestures = sorted(s for s in found if s not in (START_TOKEN, END_TOKEN))
        out = gestures
        if START_TOKEN in found:
            out = [START_TOKEN, *out]
        if END_TOKEN in found:
            out = [*out, END_TOKEN]
        return out

    def gesture_states(self) -> list[Gesture]:
        """Non-sentinel states as :class:`Gesture` members."""
        return [
            Gesture(s) for s in self.states() if s not in (START_TOKEN, END_TOKEN)
        ]

    def probability(self, current: int, nxt: int) -> float:
        """P(next = ``nxt`` | current = ``current``), 0 if unseen."""
        return self.transitions.get(current, {}).get(nxt, 0.0)

    def successors(self, state: int) -> dict[int, float]:
        """Outgoing transition distribution of ``state`` (possibly empty)."""
        return dict(self.transitions.get(state, {}))

    def sequence_log_likelihood(self, sequence: list[int]) -> float:
        """Log-likelihood of a gesture sequence under the chain.

        Returns ``-inf`` when the sequence uses an unseen transition.
        """
        path = [START_TOKEN, *[int(g) for g in sequence], END_TOKEN]
        total = 0.0
        for a, b in zip(path[:-1], path[1:]):
            p = self.probability(a, b)
            if p <= 0.0:
                return float("-inf")
            total += float(np.log(p))
        return total

    def transition_matrix(self) -> tuple[np.ndarray, list[int]]:
        """Dense row-stochastic matrix and the state ordering used."""
        order = self.states()
        index = {s: i for i, s in enumerate(order)}
        matrix = np.zeros((len(order), len(order)))
        for state, row in self.transitions.items():
            for nxt, p in row.items():
                matrix[index[state], index[nxt]] = p
        return matrix, order

    def to_networkx(self) -> nx.DiGraph:
        """Directed graph with ``probability`` edge attributes."""
        graph = nx.DiGraph()
        for state in self.states():
            graph.add_node(state)
        for state, row in self.transitions.items():
            for nxt, p in row.items():
                if p > 0.0:
                    graph.add_edge(state, nxt, probability=p)
        return graph

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_sequence(
        self,
        rng: int | np.random.Generator | None = None,
        max_length: int = 200,
    ) -> list[Gesture]:
        """Sample a gesture sequence from START to END.

        Raises :class:`GestureError` if END is not reached within
        ``max_length`` gestures (indicating an absorbing loop).
        """
        gen = as_generator(rng)
        state = START_TOKEN
        out: list[Gesture] = []
        for _ in range(max_length):
            row = self.transitions.get(state)
            if not row:
                raise GestureError(f"state {state} has no outgoing transitions")
            nxt_states = list(row)
            probs = np.array([row[s] for s in nxt_states])
            probs = probs / probs.sum()
            state = int(gen.choice(nxt_states, p=probs))
            if state == END_TOKEN:
                if not out:
                    raise GestureError("chain terminated before any gesture")
                return out
            out.append(Gesture(state))
        raise GestureError(f"END not reached within {max_length} gestures")
