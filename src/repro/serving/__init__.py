"""Multi-stream online serving of the safety-monitoring pipeline.

The architectural seam between the paper's single-demonstration replay
and a production deployment monitoring many procedures at once:

- :mod:`~repro.serving.service` — :class:`MonitorService`, the tick-based
  engine that batches ready windows *across* concurrent sessions so each
  pipeline stage runs once per tick instead of once per stream;
- :mod:`~repro.serving.sharded` — :class:`ShardedMonitorService`, the
  scale-out layer fanning sessions across worker processes by
  consistent hashing, each worker running its own ``MonitorService``;
- :mod:`~repro.serving.async_frontend` — :class:`AsyncShardedMonitor`,
  the asyncio ingest/egress façade whose ``feed()``/``events()`` never
  block on a slow shard;
- :mod:`~repro.serving.snapshot` — :func:`monitor_to_bytes` /
  :func:`monitor_from_bytes`, the no-pickled-code monitor archive that
  bootstraps every worker process;
- :mod:`~repro.serving.synthetic` — instant, deterministic synthetic
  monitors and trajectories for parity tests and throughput benchmarks.

:meth:`repro.core.SafetyMonitor.stream` is a thin one-session wrapper
over the same engine, so single-stream, fleet and sharded serving share
one hot path and agree bit for bit.  Every entry point takes a
``backend`` choice (:mod:`repro.nn.backends`): ``"reference"`` keeps
the bit-exact contract, ``"compiled"``/``"compiled-f32"`` run the
folded zero-allocation plans.  See ``docs/architecture.md`` and
``docs/serving.md``.
"""

from .async_frontend import AsyncShardedMonitor
from .service import MonitorService, ServiceStats, SessionEvent, SessionResult
from .sharded import ShardedMonitorService
from .snapshot import monitor_from_bytes, monitor_to_bytes, snapshot_backend
from .synthetic import make_random_walk_trajectory, make_synthetic_monitor

__all__ = [
    "AsyncShardedMonitor",
    "MonitorService",
    "ServiceStats",
    "SessionEvent",
    "SessionResult",
    "ShardedMonitorService",
    "make_random_walk_trajectory",
    "make_synthetic_monitor",
    "monitor_from_bytes",
    "monitor_to_bytes",
    "snapshot_backend",
]
