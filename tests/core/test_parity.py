"""Parity regression tests between the monitor's four execution modes.

The same trained weights can be exercised four ways — batched offline
(:meth:`SafetyMonitor.process`), frame-by-frame
(:meth:`SafetyMonitor.stream`), multi-session batched
(:class:`repro.serving.MonitorService`) and sharded across worker
processes (:class:`repro.serving.ShardedMonitorService`) — and the
serving stack guarantees they agree: gestures and scores are
bit-identical wherever the modes observe the same information (inference
is batch-size invariant, see :mod:`repro.nn.layers.contract`, and
workers bootstrap from lossless monitor snapshots, see
:mod:`repro.serving.snapshot`).
"""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.gestures.vocabulary import Gesture
from repro.kinematics.windows import sliding_windows
from repro.serving import (
    MonitorService,
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 10


def stream_arrays(monitor, trajectory):
    gestures, scores = [], []
    for _, gesture, score, _ in monitor.stream(trajectory):
        gestures.append(gesture)
        scores.append(score)
    return np.asarray(gestures), np.asarray(scores)


class TestStreamProcessParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stream_matches_process_at_ready_frames(self, seed):
        """From the first gesture window on, the online stream yields the
        gestures and scores process() computed in batch — bit for bit."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=seed)
        trajectory = make_random_walk_trajectory(
            140, n_features=N_FEATURES, seed=seed + 50
        )
        output = monitor.process(trajectory)
        gestures, scores = stream_arrays(monitor, trajectory)
        warmup = monitor.gesture_classifier.config.window.window - 1
        assert np.array_equal(gestures[warmup:], output.gestures[warmup:])
        assert np.array_equal(scores[warmup:], output.unsafe_scores[warmup:])
        # Before any window is complete the stream reports no context and
        # a safe score, while process() backfills the first prediction.
        assert np.all(gestures[:warmup] == 0)
        assert np.all(scores[:warmup] == 0.0)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_parity_with_error_stride(self, seed):
        """With stride > 1 the error stage only rescores every stride-th
        frame; both modes hold the last score in between."""
        monitor = make_synthetic_monitor(
            n_features=N_FEATURES,
            seed=seed,
            gesture_window=WindowConfig(4, 1),
            error_window=WindowConfig(6, 3),
        )
        trajectory = make_random_walk_trajectory(
            100, n_features=N_FEATURES, seed=seed + 70
        )
        output = monitor.process(trajectory)
        gestures, scores = stream_arrays(monitor, trajectory)
        assert np.array_equal(gestures[3:], output.gestures[3:])
        # Scores agree at every error-window end frame...
        _, ends = sliding_windows(trajectory.frames, monitor.config.error_window)
        assert np.array_equal(scores[ends], output.unsafe_scores[ends])
        # ...and both modes carry that score forward between strides.
        assert np.array_equal(scores[ends[0] :], output.unsafe_scores[ends[0] :])

    @pytest.mark.parametrize("seed", [0, 1])
    def test_parity_when_error_window_outruns_gesture_window(self, seed):
        """Error windows that complete before the first gesture window see
        no context in either mode: process() must stay causal (not score
        them with backfilled gestures) to match stream() bit for bit."""
        monitor = make_synthetic_monitor(
            n_features=N_FEATURES,
            seed=seed,
            gesture_window=WindowConfig(8, 1),
            error_window=WindowConfig(3, 10),
        )
        trajectory = make_random_walk_trajectory(
            90, n_features=N_FEATURES, seed=seed + 90
        )
        output = monitor.process(trajectory)
        gestures, scores = stream_arrays(monitor, trajectory)
        # The error window ending at frame 2 precedes any gesture context:
        # both modes must call it safe, all the way to the next stride.
        assert np.all(output.unsafe_scores[:12] == 0.0)
        assert np.array_equal(scores, output.unsafe_scores)
        assert np.array_equal(gestures[7:], output.gestures[7:])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_service_reproduces_streams_bit_for_bit(self, seed):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=seed)
        trajectories = [
            make_random_walk_trajectory(60 + 11 * i, n_features=N_FEATURES, seed=i)
            for i in range(4)
        ]
        service = MonitorService(monitor, max_sessions=4)
        ids = []
        for trajectory in trajectories:
            session_id = service.open_session()
            service.feed(session_id, trajectory.frames)
            ids.append(session_id)
        service.drain(collect=False)
        for session_id, trajectory in zip(ids, trajectories):
            result = service.close_session(session_id)
            gestures, scores = stream_arrays(monitor, trajectory)
            assert np.array_equal(result.gestures, gestures)
            assert np.array_equal(result.unsafe_scores, scores)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_service_reproduces_streams_bit_for_bit(self, n_shards):
        """The scaling invariant: distributing the same session set over
        K worker processes changes throughput, never a single event —
        each worker's monitor is rebuilt from snapshot bytes and scores
        the same windows to the same bits as an isolated stream()."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=1)
        trajectories = [
            make_random_walk_trajectory(50 + 9 * i, n_features=N_FEATURES, seed=i)
            for i in range(5)
        ]
        with ShardedMonitorService(
            monitor, n_shards=n_shards, max_sessions_per_shard=8
        ) as service:
            ids = []
            for trajectory in trajectories:
                session_id = service.open_session()
                service.feed(session_id, trajectory.frames)
                ids.append(session_id)
            service.drain(collect=False)
            for session_id, trajectory in zip(ids, trajectories):
                result = service.close_session(session_id)
                gestures, scores = stream_arrays(monitor, trajectory)
                assert np.array_equal(result.gestures, gestures)
                assert np.array_equal(result.unsafe_scores, scores)


class TestMonitorOutputEdgeCases:
    def test_trajectory_shorter_than_error_window(self):
        """No complete window: every score 0, no flags, valid shapes."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        trajectory = make_random_walk_trajectory(3, n_features=N_FEATURES, seed=0)
        output = monitor.process(trajectory, use_true_gestures=True)
        assert output.unsafe_scores.shape == (3,)
        assert np.all(output.unsafe_scores == 0.0)
        assert not output.unsafe_flags.any()
        assert output.error_ms == 0.0

    def test_trajectory_shorter_than_gesture_window_pipelined(self):
        """Pipelined mode on a too-short trajectory: no gesture context
        (all zeros), everything safe, no crash."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        trajectory = make_random_walk_trajectory(4, n_features=N_FEATURES, seed=1)
        output = monitor.process(trajectory)
        assert np.all(output.gestures == 0)
        assert np.all(output.unsafe_scores == 0.0)
        assert not output.unsafe_flags.any()

    def test_missing_classifier_scores_safe_not_stale(self):
        """A gesture without a trained classifier must pull the score to
        0.0 (safe), never carry the previous gesture's score forward."""
        monitor = make_synthetic_monitor(
            n_features=N_FEATURES, seed=0, missing_gestures=(2,), threshold=1e-9
        )
        # Force a context switch G1 -> G2 with perfect boundaries; G1 has
        # a classifier (sigmoid output, never exactly 0), G2 does not.
        trajectory = make_random_walk_trajectory(60, n_features=N_FEATURES, seed=3)
        labels = np.where(np.arange(60) < 30, 1, 2)
        trajectory = trajectory.with_labels(gestures=labels)
        output = monitor.process(trajectory, use_true_gestures=True)
        window = monitor.config.error_window.window
        assert np.all(output.unsafe_scores[window - 1 : 30] > 0.0)
        # Windows ending inside G2 (their final frame selects G2) all safe.
        assert np.all(output.unsafe_scores[30:] == 0.0)
        assert not output.unsafe_flags[30:].any()

    def test_stream_missing_classifier_resets_score(self):
        """Same contract on the online path: when the predicted context
        has no classifier the streamed score drops to 0.0."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        trajectory = make_random_walk_trajectory(200, n_features=N_FEATURES, seed=4)
        output = monitor.process(trajectory)
        gestures, scores = stream_arrays(monitor, trajectory)
        missing = {
            int(g)
            for g in np.unique(output.gestures)
            if g > 0 and not monitor.library.has_classifier(Gesture(int(g)))
        }
        covered = [t for t in range(4, 200) if gestures[t] in missing]
        if not covered:
            pytest.skip("random gesture predictions never hit a missing gesture")
        for t in covered:
            assert scores[t] == 0.0
