"""Tests for repro.kinematics.rotations."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kinematics.rotations import (
    identity_rotation,
    is_rotation_matrix,
    rotation_about_axis,
    rotation_angle_between,
    rotation_from_euler,
    rotation_to_euler,
)


class TestRotationAboutAxis:
    def test_zero_angle_is_identity(self):
        rot = rotation_about_axis(np.array([0.0, 0.0, 1.0]), 0.0)
        assert np.allclose(rot, np.eye(3))

    def test_quarter_turn_about_z(self):
        rot = rotation_about_axis(np.array([0.0, 0.0, 1.0]), np.pi / 2)
        assert np.allclose(rot @ np.array([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], atol=1e-12)

    def test_axis_normalisation(self):
        a = rotation_about_axis(np.array([0.0, 0.0, 2.0]), 0.3)
        b = rotation_about_axis(np.array([0.0, 0.0, 1.0]), 0.3)
        assert np.allclose(a, b)

    def test_is_proper_rotation(self):
        rot = rotation_about_axis(np.array([1.0, 2.0, 3.0]), 1.1)
        assert is_rotation_matrix(rot)

    def test_rejects_zero_axis(self):
        with pytest.raises(ShapeError):
            rotation_about_axis(np.zeros(3), 1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            rotation_about_axis(np.ones(2), 1.0)


class TestEulerRoundTrip:
    @pytest.mark.parametrize(
        "roll,pitch,yaw",
        [(0.1, 0.2, 0.3), (-0.5, 0.4, -1.2), (0.0, 0.0, 0.0), (3.0, -1.0, 2.5)],
    )
    def test_round_trip(self, roll, pitch, yaw):
        rot = rotation_from_euler(roll, pitch, yaw)
        recovered = rotation_from_euler(*rotation_to_euler(rot))
        assert np.allclose(rot, recovered, atol=1e-9)

    def test_always_proper(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            angles = rng.uniform(-np.pi, np.pi, 3)
            assert is_rotation_matrix(rotation_from_euler(*angles))


class TestAngleBetween:
    def test_zero_for_identical(self):
        rot = rotation_from_euler(0.3, -0.2, 0.9)
        assert rotation_angle_between(rot, rot) == pytest.approx(0.0, abs=1e-7)

    def test_matches_constructed_angle(self):
        base = identity_rotation()
        for angle in (0.1, 0.7, 1.5, 3.0):
            other = rotation_about_axis(np.array([0.0, 1.0, 0.0]), angle)
            assert rotation_angle_between(base, other) == pytest.approx(angle, abs=1e-9)

    def test_symmetry(self):
        a = rotation_from_euler(0.2, 0.4, -0.3)
        b = rotation_from_euler(-0.7, 0.1, 0.5)
        assert rotation_angle_between(a, b) == pytest.approx(
            rotation_angle_between(b, a)
        )


class TestIsRotationMatrix:
    def test_identity(self):
        assert is_rotation_matrix(np.eye(3))

    def test_rejects_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        assert not is_rotation_matrix(reflection)

    def test_rejects_scaled(self):
        assert not is_rotation_matrix(2.0 * np.eye(3))

    def test_rejects_wrong_shape(self):
        assert not is_rotation_matrix(np.eye(2))
