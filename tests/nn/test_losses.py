"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.losses import SigmoidBinaryCrossEntropy, SoftmaxCrossEntropy


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.value(logits, np.array([0, 1])) < 1e-4

    def test_uniform_prediction_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((5, 4))
        assert loss.value(logits, np.array([0, 1, 2, 3, 0])) == pytest.approx(
            np.log(4), abs=1e-9
        )

    def test_one_hot_and_index_targets_agree(self):
        loss = SoftmaxCrossEntropy()
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((6, 3))
        y_idx = np.array([0, 1, 2, 0, 1, 2])
        y_hot = np.eye(3)[y_idx]
        assert loss.value(logits, y_idx) == pytest.approx(loss.value(logits, y_hot))
        assert np.allclose(loss.gradient(logits, y_idx), loss.gradient(logits, y_hot))

    def test_gradient_matches_numeric(self):
        loss = SoftmaxCrossEntropy()
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((3, 4))
        y = np.array([1, 3, 0])
        grad = loss.gradient(logits, y)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                up = loss.value(logits, y)
                logits[i, j] -= 2 * eps
                down = loss.value(logits, y)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx((up - down) / (2 * eps), abs=1e-6)

    def test_predict_sums_to_one(self):
        loss = SoftmaxCrossEntropy()
        probs = loss.predict(np.random.default_rng(2).standard_normal((5, 3)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_rejects_out_of_range_labels(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.value(np.zeros((2, 3)), np.array([0, 3]))

    def test_extreme_logits_stable(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1000.0, -1000.0]])
        assert np.isfinite(loss.value(logits, np.array([0])))


class TestSigmoidBinaryCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SigmoidBinaryCrossEntropy()
        assert loss.value(np.array([10.0, -10.0]), np.array([1.0, 0.0])) < 1e-4

    def test_positive_weight_scales_positive_loss(self):
        plain = SigmoidBinaryCrossEntropy(positive_weight=1.0)
        weighted = SigmoidBinaryCrossEntropy(positive_weight=3.0)
        logits = np.array([0.0])
        y_pos = np.array([1.0])
        assert weighted.value(logits, y_pos) == pytest.approx(
            3.0 * plain.value(logits, y_pos)
        )
        y_neg = np.array([0.0])
        assert weighted.value(logits, y_neg) == pytest.approx(
            plain.value(logits, y_neg)
        )

    def test_gradient_matches_numeric(self):
        loss = SigmoidBinaryCrossEntropy(positive_weight=2.0)
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((5, 1))
        y = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
        grad = loss.gradient(logits, y)
        eps = 1e-6
        for i in range(5):
            logits[i, 0] += eps
            up = loss.value(logits, y)
            logits[i, 0] -= 2 * eps
            down = loss.value(logits, y)
            logits[i, 0] += eps
            assert grad[i, 0] == pytest.approx((up - down) / (2 * eps), abs=1e-6)

    def test_gradient_preserves_shape(self):
        loss = SigmoidBinaryCrossEntropy()
        logits = np.zeros((4, 1))
        assert loss.gradient(logits, np.zeros(4)).shape == (4, 1)

    def test_rejects_mismatched_lengths(self):
        loss = SigmoidBinaryCrossEntropy()
        with pytest.raises(ShapeError):
            loss.value(np.zeros(3), np.zeros(4))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ShapeError):
            SigmoidBinaryCrossEntropy(positive_weight=0.0)
