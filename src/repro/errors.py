"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating from this package with a single ``except``
clause while still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ShapeError(ReproError, ValueError):
    """An array argument had an incompatible shape or dimensionality."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before training."""


class DatasetError(ReproError):
    """A dataset is malformed, empty, or inconsistent with its metadata."""


class SimulationError(ReproError):
    """The surgical-robot simulator entered an invalid state."""


class FaultInjectionError(ReproError):
    """A fault specification cannot be applied to the given trajectory."""


class GestureError(ReproError, ValueError):
    """An unknown or out-of-vocabulary surgical gesture was referenced."""


class WorkerError(ReproError, RuntimeError):
    """A serving worker process died, hung, or rejected a request."""


class ProtocolError(ReproError):
    """A remote-ingest wire message was malformed, truncated, or of an
    unsupported protocol version."""
