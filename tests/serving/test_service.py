"""Tests for the multi-stream serving engine (repro.serving)."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.errors import ConfigurationError, DatasetError, ShapeError
from repro.serving import (
    MonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


def stream_reference(monitor, trajectory):
    """Collect (gestures, scores) from an isolated stream() run."""
    gestures, scores = [], []
    for _, gesture, score, _ in monitor.stream(trajectory):
        gestures.append(gesture)
        scores.append(score)
    return np.asarray(gestures), np.asarray(scores)


class TestSessionLifecycle:
    def test_open_feed_tick_close(self, monitor):
        service = MonitorService(monitor, max_sessions=2)
        session_id = service.open_session()
        trajectory = make_random_walk_trajectory(30, n_features=N_FEATURES, seed=1)
        service.feed(session_id, trajectory.frames)
        assert service.pending_frames(session_id) == 30
        events = service.drain()
        assert len(events) == 30
        assert [e.frame_index for e in events] == list(range(30))
        result = service.close_session(session_id)
        assert result.n_frames == 30
        assert result.unsafe_scores.shape == (30,)
        assert set(np.unique(result.unsafe_flags)) <= {0, 1}
        assert service.n_open_sessions == 0

    def test_session_ids_unique_and_custom(self, monitor):
        service = MonitorService(monitor, max_sessions=3)
        a = service.open_session()
        b = service.open_session("theatre-7")
        c = service.open_session()
        assert len({a, b, c}) == 3
        with pytest.raises(ConfigurationError):
            service.open_session("theatre-7")

    def test_auto_ids_skip_explicitly_taken_names(self, monitor):
        service = MonitorService(monitor, max_sessions=3)
        taken = service.open_session("session-0001")
        a = service.open_session()  # session-0000
        b = service.open_session()  # must skip over session-0001
        assert len({taken, a, b}) == 3

    def test_slot_exhaustion(self, monitor):
        service = MonitorService(monitor, max_sessions=1)
        service.open_session()
        with pytest.raises(ConfigurationError):
            service.open_session()

    def test_unknown_session_errors(self, monitor):
        service = MonitorService(monitor, max_sessions=1)
        with pytest.raises(DatasetError):
            service.feed("ghost", np.zeros((3, N_FEATURES)))
        with pytest.raises(DatasetError):
            service.close_session("ghost")

    def test_feature_width_is_bound_on_first_feed(self, monitor):
        service = MonitorService(monitor, max_sessions=2)
        a = service.open_session()
        service.feed(a, np.zeros((2, N_FEATURES)))
        with pytest.raises(ShapeError):
            service.feed(a, np.zeros((2, N_FEATURES + 1)))

    def test_first_feed_validated_against_trained_width(self, monitor):
        """A wrong-width first feed fails immediately, naming the
        monitor's trained width — it must not bind the service to it."""
        service = MonitorService(monitor, max_sessions=1)
        session_id = service.open_session()
        with pytest.raises(ShapeError, match=f"trained for {N_FEATURES}"):
            service.feed(session_id, np.zeros((2, N_FEATURES - 1)))
        # The service is still usable at the correct width.
        service.feed(session_id, np.zeros((2, N_FEATURES)))
        assert service.pending_frames(session_id) == 2

    def test_tick_with_no_pending_is_noop(self, monitor):
        service = MonitorService(monitor, max_sessions=1)
        assert service.tick() == []
        service.open_session()
        assert service.tick() == []
        assert service.stats.n_ticks == 0

    def test_single_frame_feed(self, monitor):
        service = MonitorService(monitor, max_sessions=1)
        session_id = service.open_session()
        service.feed(session_id, np.zeros(N_FEATURES))  # 1-D frame
        events = service.tick()
        assert len(events) == 1
        assert events[0].frame_index == 0


class TestBatchedParity:
    def test_one_session_matches_stream_bit_for_bit(self, monitor):
        trajectory = make_random_walk_trajectory(90, n_features=N_FEATURES, seed=2)
        service = MonitorService(monitor, max_sessions=1)
        session_id = service.open_session()
        service.feed(session_id, trajectory.frames)
        service.drain(collect=False)
        result = service.close_session(session_id)
        ref_gestures, ref_scores = stream_reference(monitor, trajectory)
        assert np.array_equal(result.gestures, ref_gestures)
        assert np.array_equal(result.unsafe_scores, ref_scores)

    def test_n_sessions_reproduce_independent_streams_bit_for_bit(self, monitor):
        """The core serving guarantee: batching windows across N live
        sessions changes throughput, never results."""
        trajectories = [
            make_random_walk_trajectory(60 + 9 * i, n_features=N_FEATURES, seed=10 + i)
            for i in range(6)
        ]
        service = MonitorService(monitor, max_sessions=6)
        ids = []
        for trajectory in trajectories:
            session_id = service.open_session()
            # Feed in two chunks to exercise chunked pending queues.
            half = trajectory.n_frames // 2
            service.feed(session_id, trajectory.frames[:half])
            service.feed(session_id, trajectory.frames[half:])
            ids.append(session_id)
        service.drain(collect=False)
        for session_id, trajectory in zip(ids, trajectories):
            result = service.close_session(session_id)
            ref_gestures, ref_scores = stream_reference(monitor, trajectory)
            assert np.array_equal(result.gestures, ref_gestures)
            assert np.array_equal(result.unsafe_scores, ref_scores)

    def test_staggered_joins_match_streams(self, monitor):
        """Sessions opened mid-flight see exactly their own frames."""
        early = make_random_walk_trajectory(50, n_features=N_FEATURES, seed=20)
        late = make_random_walk_trajectory(40, n_features=N_FEATURES, seed=21)
        service = MonitorService(monitor, max_sessions=2)
        a = service.open_session()
        service.feed(a, early.frames)
        for _ in range(25):
            service.tick()
        b = service.open_session()
        service.feed(b, late.frames)
        service.drain(collect=False)
        result_a = service.close_session(a)
        result_b = service.close_session(b)
        for result, trajectory in ((result_a, early), (result_b, late)):
            ref_gestures, ref_scores = stream_reference(monitor, trajectory)
            assert np.array_equal(result.gestures, ref_gestures)
            assert np.array_equal(result.unsafe_scores, ref_scores)

    def test_slot_reuse_resets_state(self, monitor):
        trajectory = make_random_walk_trajectory(35, n_features=N_FEATURES, seed=30)
        service = MonitorService(monitor, max_sessions=1)
        first = service.open_session()
        service.feed(
            first, make_random_walk_trajectory(23, n_features=N_FEATURES, seed=31).frames
        )
        service.drain(collect=False)
        service.close_session(first)
        second = service.open_session()
        service.feed(second, trajectory.frames)
        service.drain(collect=False)
        result = service.close_session(second)
        ref_gestures, ref_scores = stream_reference(monitor, trajectory)
        assert np.array_equal(result.gestures, ref_gestures)
        assert np.array_equal(result.unsafe_scores, ref_scores)


class TestWarmupAndStats:
    def test_short_session_stays_safe(self, monitor):
        """Fewer frames than one window: no context, no scores, no flags."""
        service = MonitorService(monitor, max_sessions=1)
        session_id = service.open_session()
        service.feed(session_id, np.zeros((3, N_FEATURES)))  # window is 5
        events = service.drain()
        assert all(e.gesture == 0 and e.score == 0.0 and not e.flag for e in events)
        result = service.close_session(session_id)
        assert not result.unsafe_flags.any()

    def test_stats_account_for_every_frame(self, monitor):
        service = MonitorService(monitor, max_sessions=3)
        for i in range(3):
            session_id = service.open_session()
            service.feed(
                session_id,
                make_random_walk_trajectory(
                    10 + i, n_features=N_FEATURES, seed=40 + i
                ).frames,
            )
        service.drain(collect=False)
        assert service.stats.frames_processed == 10 + 11 + 12
        assert service.stats.n_ticks == 12  # longest session drives tick count
        assert service.stats.percentile_ms(99) >= service.stats.percentile_ms(50) >= 0.0

    def test_record_timeline_opt_out(self, monitor):
        """Event-stream-only sessions skip timeline accumulation."""
        trajectory = make_random_walk_trajectory(20, n_features=N_FEATURES, seed=60)
        service = MonitorService(monitor, max_sessions=1)
        session_id = service.open_session(record_timeline=False)
        service.feed(session_id, trajectory.frames)
        events = service.drain()
        assert len(events) == 20  # the event stream is unaffected
        result = service.close_session(session_id)
        assert result.n_frames == 0
        assert result.unsafe_scores.size == 0

    def test_tick_history_is_bounded_but_totals_keep_counting(self):
        from repro.serving import ServiceStats

        stats = ServiceStats(capacity=4)
        for i in range(10):
            stats.record(float(i), 2)
        assert stats.n_ticks == 10
        assert stats.frames_processed == 20
        # The ring keeps the most recent window, chronologically ordered.
        assert stats.tick_ms.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert stats.percentile_ms(50) == 7.5
        assert stats.mean_ms() == 7.5

    def test_stats_pickle_ships_samples_not_the_ring(self):
        """Stats cross the worker pipe; the payload must scale with the
        recorded samples, not the 65536-slot preallocated ring."""
        import pickle

        from repro.serving import ServiceStats

        stats = ServiceStats()
        for i in range(5):
            stats.record(float(i), 1)
        payload = pickle.dumps(stats)
        assert len(payload) < 4096  # full ring would be ~512 KB
        restored = pickle.loads(payload)
        assert restored.capacity == stats.capacity
        assert restored.n_ticks == 5
        assert restored.frames_processed == 5
        assert restored.tick_ms.tolist() == stats.tick_ms.tolist()
        assert restored.percentile_ms(50) == stats.percentile_ms(50)
        restored.record(99.0, 1)  # ring is functional after restore
        assert restored.tick_ms.tolist()[-1] == 99.0

    def test_stats_merge_preserves_recent_window(self):
        """extend_ms folds another window in without touching counters —
        the sharded stats() aggregation path."""
        from repro.serving import ServiceStats

        stats = ServiceStats(capacity=4)
        stats.record(1.0, 1)
        stats.extend_ms([2.0, 3.0])
        assert stats.tick_ms.tolist() == [1.0, 2.0, 3.0]
        assert stats.n_ticks == 1  # counters are record()'s job
        stats.extend_ms(np.arange(10.0))  # overflow keeps the tail
        assert stats.tick_ms.tolist() == [6.0, 7.0, 8.0, 9.0]
        # Wrap-around split write.
        stats.extend_ms([20.0, 21.0, 22.0])
        assert stats.tick_ms.tolist() == [9.0, 20.0, 21.0, 22.0]

    def test_events_match_timeline(self, monitor):
        trajectory = make_random_walk_trajectory(25, n_features=N_FEATURES, seed=50)
        service = MonitorService(monitor, max_sessions=1)
        session_id = service.open_session()
        service.feed(session_id, trajectory.frames)
        events = service.drain()
        result = service.close_session(session_id)
        assert [e.gesture for e in events] == result.gestures.tolist()
        assert [e.score for e in events] == result.unsafe_scores.tolist()
        assert [int(e.flag) for e in events] == result.unsafe_flags.tolist()


class TestBackendSelection:
    """The serving parity matrix under the compiled backends.

    The reference backend carries the existing bit-exact contract (every
    other test in this file runs it); the compiled plans must agree with
    it within atol=1e-6 on scores with identical gesture streams, across
    multi-session fleets, staggered joins and chunked feeds.
    """

    def _fleet_results(self, monitor, trajectories, backend):
        service = MonitorService(
            monitor, max_sessions=len(trajectories), backend=backend
        )
        ids = []
        for trajectory in trajectories:
            session_id = service.open_session()
            half = trajectory.n_frames // 2
            service.feed(session_id, trajectory.frames[:half])
            service.feed(session_id, trajectory.frames[half:])
            ids.append(session_id)
        service.drain(collect=False)
        return [service.close_session(session_id) for session_id in ids]

    @pytest.mark.parametrize("backend", ["compiled", "compiled-f32"])
    def test_fleet_matches_reference_within_tolerance(self, monitor, backend):
        trajectories = [
            make_random_walk_trajectory(50 + 7 * i, n_features=N_FEATURES, seed=70 + i)
            for i in range(5)
        ]
        reference = self._fleet_results(monitor, trajectories, "reference")
        compiled = self._fleet_results(monitor, trajectories, backend)
        atol = 1e-6 if backend == "compiled" else 5e-4
        for ref, comp in zip(reference, compiled):
            assert np.array_equal(ref.gestures, comp.gestures)
            np.testing.assert_allclose(
                comp.unsafe_scores, ref.unsafe_scores, atol=atol
            )

    def test_stream_backend_selection(self, monitor):
        trajectory = make_random_walk_trajectory(40, n_features=N_FEATURES, seed=77)
        reference = list(monitor.stream(trajectory))
        compiled = list(monitor.stream(trajectory, backend="compiled"))
        assert [e[1] for e in reference] == [e[1] for e in compiled]
        np.testing.assert_allclose(
            [e[2] for e in compiled], [e[2] for e in reference], atol=1e-6
        )

    def test_unknown_backend_rejected(self, monitor):
        with pytest.raises(ConfigurationError, match="unknown inference backend"):
            MonitorService(monitor, max_sessions=1, backend="turbo")

    def test_retrained_models_are_picked_up(self):
        """fit() rebinds .model to a new object; the service must serve
        the new weights on the next tick, never a stale backend — the
        pre-backend engine looked the model up every tick."""
        monitor_a = make_synthetic_monitor(n_features=N_FEATURES, seed=7)
        monitor_b = make_synthetic_monitor(n_features=N_FEATURES, seed=8)
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=7)
        service = MonitorService(monitor, max_sessions=1)
        trajectory = make_random_walk_trajectory(40, n_features=N_FEATURES, seed=9)

        def run_session():
            session_id = service.open_session()
            service.feed(session_id, trajectory.frames)
            service.drain(collect=False)
            return service.close_session(session_id)

        first = run_session()
        # "Retrain" both stages: swap in differently-seeded models (and
        # their scalers, as fit() refits those in place).
        monitor.gesture_classifier.model = monitor_b.gesture_classifier.model
        monitor.gesture_classifier.scaler = monitor_b.gesture_classifier.scaler
        monitor.library.classifiers = monitor_b.library.classifiers
        second = run_session()
        ref_a = stream_reference(monitor_a, trajectory)
        ref_b = stream_reference(monitor_b, trajectory)
        assert np.array_equal(first.gestures, ref_a[0])
        assert np.array_equal(first.unsafe_scores, ref_a[1])
        assert np.array_equal(second.gestures, ref_b[0])
        assert np.array_equal(second.unsafe_scores, ref_b[1])

    def test_models_trained_after_construction_are_served(self):
        """A service created before the monitor's stages were trained
        must pick the models up on their first tick — never silently
        stream all-safe events for a now-trained monitor."""
        trained = make_synthetic_monitor(n_features=N_FEATURES, seed=5)
        untrained = make_synthetic_monitor(n_features=N_FEATURES, seed=5)
        untrained.gesture_classifier.model = None
        untrained.library.classifiers = {}
        service = MonitorService(untrained, max_sessions=1)
        # Stages arrive after construction (e.g. trained in place).
        untrained.gesture_classifier.model = trained.gesture_classifier.model
        untrained.library.classifiers = trained.library.classifiers
        trajectory = make_random_walk_trajectory(40, n_features=N_FEATURES, seed=6)
        session_id = service.open_session()
        service.feed(session_id, trajectory.frames)
        service.drain(collect=False)
        result = service.close_session(session_id)
        ref_gestures, ref_scores = stream_reference(trained, trajectory)
        assert np.array_equal(result.gestures, ref_gestures)
        assert np.array_equal(result.unsafe_scores, ref_scores)

    @pytest.mark.parametrize("backend", ["reference", "compiled"])
    def test_gesture_feature_subset_path(self, backend):
        """A gesture stage configured with feature_indices sees exactly
        the selected columns (the preallocated np.take scratch path),
        under both backends."""
        from repro import nn
        from repro.kinematics.windows import sliding_windows

        idx = np.array([1, 4, 8])
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=3)
        classifier = monitor.gesture_classifier
        classifier.config.feature_indices = idx
        classifier.model = classifier._build_model()
        window = classifier.config.window
        classifier.model.build((window.window, idx.size))
        rng = np.random.default_rng(99)
        classifier.scaler = nn.StandardScaler()
        classifier.scaler.fit(
            rng.standard_normal((64, window.window, idx.size))
        )

        trajectory = make_random_walk_trajectory(
            40, n_features=N_FEATURES, seed=4
        )
        service = MonitorService(monitor, max_sessions=1, backend=backend)
        session_id = service.open_session()
        service.feed(session_id, trajectory.frames)
        events = service.drain()

        windows, ends = sliding_windows(trajectory.frames[:, idx], window)
        expected = (
            classifier.model.predict(classifier.scaler.transform(windows)) + 1
        )
        got = [e.gesture for e in events]
        assert got[: window.window - 1] == [0] * (window.window - 1)
        assert got[window.window - 1 :] == expected.tolist()

    def test_compiled_tick_reuses_backend_scratch(self, monitor):
        """Steady-state ticks drive every model forward through the same
        preallocated plan buffers — the no-per-tick-allocation contract
        at the service level."""
        service = MonitorService(monitor, max_sessions=4, backend="compiled")
        for i in range(4):
            session_id = service.open_session()
            service.feed(
                session_id,
                make_random_walk_trajectory(
                    30, n_features=N_FEATURES, seed=90 + i
                ).frames,
            )
        for _ in range(10):  # warm up past both stages' windows
            service.tick()
        backends = [
            service._gesture_backend[1],
            *(backend for _, backend in service._error_backends.values()),
        ]
        pointers = {
            id(b): [buf.__array_interface__["data"][0] for buf in b.scratch_arrays()]
            for b in backends
        }
        service.drain(collect=False)
        for b in backends:
            assert [
                buf.__array_interface__["data"][0] for buf in b.scratch_arrays()
            ] == pointers[id(b)]


class TestSyntheticMonitor:
    def test_deterministic_across_builds(self):
        a = make_synthetic_monitor(n_features=6, seed=7)
        b = make_synthetic_monitor(n_features=6, seed=7)
        trajectory = make_random_walk_trajectory(40, n_features=6, seed=8)
        out_a = a.process(trajectory)
        out_b = b.process(trajectory)
        assert np.array_equal(out_a.gestures, out_b.gestures)
        assert np.array_equal(out_a.unsafe_scores, out_b.unsafe_scores)

    def test_missing_gestures_have_no_classifier(self):
        monitor = make_synthetic_monitor(
            n_features=6, seed=0, missing_gestures=(2, 9)
        )
        from repro.gestures.vocabulary import Gesture

        assert not monitor.library.has_classifier(Gesture.G2)
        assert not monitor.library.has_classifier(Gesture.G9)
        assert monitor.library.has_classifier(Gesture.G1)

    def test_custom_windows(self):
        monitor = make_synthetic_monitor(
            n_features=6,
            seed=0,
            gesture_window=WindowConfig(4, 1),
            error_window=WindowConfig(8, 2),
        )
        trajectory = make_random_walk_trajectory(40, n_features=6, seed=1)
        events = list(monitor.stream(trajectory))
        assert len(events) == 40
        # Error scores first appear at the first 8-frame window boundary.
        assert all(score == 0.0 for _, _, score, _ in events[:7])
