"""Per-manipulator and whole-robot kinematic state (JIGSAWS schema).

The JIGSAWS kinematics recordings expose 19 variables per robot
manipulator (paper Section IV-A):

==================  =====  ==========================================
Variable group      Count  Contents
==================  =====  ==========================================
Cartesian position      3  end-effector x, y, z (metres)
Rotation matrix         9  flattened 3x3 end-effector orientation
Linear velocity         3  end-effector vx, vy, vz (m/s)
Angular velocity        3  end-effector wx, wy, wz (rad/s)
Grasper angle           1  jaw opening angle (radians)
==================  =====  ==========================================

:class:`ManipulatorState` is a typed view over those 19 numbers and
:class:`RobotState` bundles the left and right manipulators into the
38-dimensional feature vector the paper's models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError
from .rotations import identity_rotation, is_rotation_matrix

#: Number of kinematic variables recorded per manipulator.
N_VARIABLES_PER_ARM = 19

_POSITION_SLICE = slice(0, 3)
_ROTATION_SLICE = slice(3, 12)
_LINEAR_VELOCITY_SLICE = slice(12, 15)
_ANGULAR_VELOCITY_SLICE = slice(15, 18)
_GRASPER_INDEX = 18


@dataclass
class ManipulatorState:
    """Kinematic state of a single robot manipulator.

    Attributes
    ----------
    position:
        End-effector Cartesian position, shape ``(3,)``.
    rotation:
        End-effector orientation as a 3x3 rotation matrix.
    linear_velocity:
        End-effector linear velocity, shape ``(3,)``.
    angular_velocity:
        End-effector angular velocity, shape ``(3,)``.
    grasper_angle:
        Jaw opening angle in radians; larger means more open.
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    rotation: np.ndarray = field(default_factory=identity_rotation)
    linear_velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    angular_velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    grasper_angle: float = 0.0

    def __post_init__(self) -> None:
        self.position = _as_vec3(self.position, "position")
        self.linear_velocity = _as_vec3(self.linear_velocity, "linear_velocity")
        self.angular_velocity = _as_vec3(self.angular_velocity, "angular_velocity")
        self.rotation = np.asarray(self.rotation, dtype=float)
        if self.rotation.shape != (3, 3):
            raise ShapeError(
                f"rotation must have shape (3, 3), got {self.rotation.shape}"
            )
        self.grasper_angle = float(self.grasper_angle)

    def to_vector(self) -> np.ndarray:
        """Flatten to the 19-dimensional JIGSAWS ordering."""
        vec = np.empty(N_VARIABLES_PER_ARM)
        vec[_POSITION_SLICE] = self.position
        vec[_ROTATION_SLICE] = self.rotation.reshape(9)
        vec[_LINEAR_VELOCITY_SLICE] = self.linear_velocity
        vec[_ANGULAR_VELOCITY_SLICE] = self.angular_velocity
        vec[_GRASPER_INDEX] = self.grasper_angle
        return vec

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "ManipulatorState":
        """Inverse of :meth:`to_vector`."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (N_VARIABLES_PER_ARM,):
            raise ShapeError(
                f"vector must have shape ({N_VARIABLES_PER_ARM},), got {vector.shape}"
            )
        return cls(
            position=vector[_POSITION_SLICE].copy(),
            rotation=vector[_ROTATION_SLICE].reshape(3, 3).copy(),
            linear_velocity=vector[_LINEAR_VELOCITY_SLICE].copy(),
            angular_velocity=vector[_ANGULAR_VELOCITY_SLICE].copy(),
            grasper_angle=float(vector[_GRASPER_INDEX]),
        )

    def has_valid_rotation(self, atol: float = 1e-6) -> bool:
        """True when the stored orientation is a proper rotation matrix."""
        return is_rotation_matrix(self.rotation, atol=atol)

    def copy(self) -> "ManipulatorState":
        """Deep copy of this state."""
        return ManipulatorState.from_vector(self.to_vector())


@dataclass
class RobotState:
    """Joint state of the two patient-side manipulators.

    The paper's models take the concatenation of the left then right
    manipulator vectors (38 features) as input.
    """

    left: ManipulatorState = field(default_factory=ManipulatorState)
    right: ManipulatorState = field(default_factory=ManipulatorState)

    def to_vector(self) -> np.ndarray:
        """Concatenate left and right manipulator vectors (38 features)."""
        return np.concatenate([self.left.to_vector(), self.right.to_vector()])

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "RobotState":
        """Inverse of :meth:`to_vector`."""
        vector = np.asarray(vector, dtype=float)
        expected = 2 * N_VARIABLES_PER_ARM
        if vector.shape != (expected,):
            raise ShapeError(f"vector must have shape ({expected},), got {vector.shape}")
        return cls(
            left=ManipulatorState.from_vector(vector[:N_VARIABLES_PER_ARM]),
            right=ManipulatorState.from_vector(vector[N_VARIABLES_PER_ARM:]),
        )

    def copy(self) -> "RobotState":
        """Deep copy of this state."""
        return RobotState(left=self.left.copy(), right=self.right.copy())


def _as_vec3(value: np.ndarray, name: str) -> np.ndarray:
    value = np.asarray(value, dtype=float)
    if value.shape != (3,):
        raise ShapeError(f"{name} must have shape (3,), got {value.shape}")
    return value
