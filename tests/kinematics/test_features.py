"""Tests for repro.kinematics.features."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.kinematics.features import (
    ALL_FEATURES,
    FeatureGroup,
    feature_indices,
    feature_names,
    n_features,
    select_features,
)


class TestFeatureIndices:
    def test_all_features_count(self):
        assert len(ALL_FEATURES) == 38
        assert feature_indices(None).shape == (38,)

    def test_cartesian_selects_both_arms(self):
        idx = feature_indices("C")
        assert idx.tolist() == [0, 1, 2, 19, 20, 21]

    def test_grasper(self):
        assert feature_indices("G").tolist() == [18, 37]

    def test_crg_combination(self):
        # Cartesian (3) + rotation (9) + grasper (1) per arm = 13 x 2.
        assert n_features("CRG") == 26

    def test_cg_combination(self):
        # The paper's Block Transfer feature set: Cartesian + grasper.
        assert n_features("CG") == 8

    def test_case_insensitive(self):
        assert np.array_equal(feature_indices("crg"), feature_indices("CRG"))

    def test_list_input(self):
        idx = feature_indices([FeatureGroup.CARTESIAN, "G"])
        assert np.array_equal(idx, feature_indices("CG"))

    def test_duplicates_collapse(self):
        assert np.array_equal(feature_indices("CC"), feature_indices("C"))

    def test_unknown_code_raises(self):
        with pytest.raises(ConfigurationError):
            feature_indices("X")


class TestFeatureNames:
    def test_names_align_with_indices(self):
        names = feature_names("G")
        assert names == ["left_grasper_angle", "right_grasper_angle"]

    def test_all_names_unique(self):
        assert len(set(ALL_FEATURES)) == len(ALL_FEATURES)


class TestSelectFeatures:
    def test_2d_selection(self):
        data = np.arange(2 * 38).reshape(2, 38).astype(float)
        out = select_features(data, "G")
        assert out.shape == (2, 2)
        assert out[0].tolist() == [18.0, 37.0]

    def test_3d_selection(self):
        data = np.zeros((4, 5, 38))
        assert select_features(data, "C").shape == (4, 5, 6)

    def test_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            select_features(np.zeros((3, 37)), "C")

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            select_features(np.zeros(38), "C")
