"""Training callbacks: history recording, early stopping, LR scheduling."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .schedules import ConstantSchedule


class Callback:
    """Training hooks; override any subset.

    ``on_epoch_end`` returning ``True`` requests that training stop.
    """

    def on_train_begin(self, model) -> None:  # noqa: ANN001 - avoid import cycle
        """Called once before the first epoch."""

    def on_epoch_begin(self, model, epoch: int) -> None:  # noqa: ANN001
        """Called at the start of each epoch."""

    def on_epoch_end(self, model, epoch: int, logs: dict[str, float]) -> bool:  # noqa: ANN001
        """Called with the epoch's metric dict; return True to stop."""
        return False

    def on_train_end(self, model) -> None:  # noqa: ANN001
        """Called once after the final epoch."""


class History(Callback):
    """Records the per-epoch metric dicts (Keras-style ``history``)."""

    def __init__(self) -> None:
        self.epochs: list[dict[str, float]] = []

    def on_train_begin(self, model) -> None:  # noqa: ANN001
        self.epochs = []

    def on_epoch_end(self, model, epoch: int, logs: dict[str, float]) -> bool:  # noqa: ANN001
        self.epochs.append(dict(logs))
        return False

    def series(self, key: str) -> list[float]:
        """Metric values for ``key`` across epochs (missing -> nan)."""
        return [e.get(key, float("nan")) for e in self.epochs]


class EarlyStopping(Callback):
    """Stop when a monitored metric has not improved for ``patience`` epochs.

    Also restores the best parameter values seen, matching the Keras
    ``restore_best_weights=True`` behaviour the paper relies on to address
    over-fitting (Section III).
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 5,
        min_delta: float = 0.0,
        restore_best_weights: bool = True,
    ) -> None:
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if min_delta < 0.0:
            raise ConfigurationError("min_delta must be >= 0")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best_weights = bool(restore_best_weights)
        self.best: float = float("inf")
        self.best_epoch: int = -1
        self._wait = 0
        self._best_params: list[np.ndarray] | None = None
        self.stopped_epoch: int | None = None

    def on_train_begin(self, model) -> None:  # noqa: ANN001
        self.best = float("inf")
        self.best_epoch = -1
        self._wait = 0
        self._best_params = None
        self.stopped_epoch = None

    def on_epoch_end(self, model, epoch: int, logs: dict[str, float]) -> bool:  # noqa: ANN001
        current = logs.get(self.monitor)
        if current is None or not np.isfinite(current):
            return False
        if current < self.best - self.min_delta:
            self.best = float(current)
            self.best_epoch = epoch
            self._wait = 0
            if self.restore_best_weights:
                self._best_params = [p.copy() for p in model.state_arrays()]
            return False
        self._wait += 1
        if self._wait >= self.patience:
            self.stopped_epoch = epoch
            return True
        return False

    def on_train_end(self, model) -> None:  # noqa: ANN001
        if self.restore_best_weights and self._best_params is not None:
            for param, best in zip(model.state_arrays(), self._best_params):
                param[...] = best


class LearningRateScheduler(Callback):
    """Set the optimiser's learning rate from a schedule at each epoch."""

    def __init__(self, schedule: ConstantSchedule) -> None:
        self.schedule = schedule

    def on_epoch_begin(self, model, epoch: int) -> None:  # noqa: ANN001
        model.optimizer.learning_rate = self.schedule.rate_for_epoch(epoch)
