"""Paper Table VI: erroneous-gesture classification for Block Transfer.

Same ablation machinery as Table V, applied to the Raven II simulator
dataset with the paper's Block Transfer settings: input window of 10,
Cartesian + Grasper features.
"""

from __future__ import annotations

from ..config import WindowConfig
from ..jigsaws.dataset import SurgicalDataset
from .common import ExperimentScale, get_scale, make_blocktransfer_dataset
from .table5 import Table5Row, _evaluate_setup, render as _render

#: The paper's Table VI grid: (setup, architecture, features).
TABLE_VI_GRID: tuple[tuple[str, str, str | None], ...] = (
    ("gesture-specific", "conv", "CG"),
    ("gesture-specific", "lstm", "CG"),
    ("non-gesture-specific", "conv", "CG"),
)


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    dataset: SurgicalDataset | None = None,
    grid: tuple[tuple[str, str, str | None], ...] = TABLE_VI_GRID,
) -> list[Table5Row]:
    """Evaluate the Block Transfer ablation grid on one fold."""
    preset = get_scale(scale)
    if dataset is None:
        dataset = make_blocktransfer_dataset(preset, seed=seed)
    train, test = dataset.split_by_trials(held_out_trial)
    window = WindowConfig(10, 1)  # paper: time-window 10, stride 1
    rows = []
    for setup, architecture, features in grid:
        metrics = _evaluate_setup(
            train,
            test,
            preset,
            architecture,
            features,
            gesture_specific=setup == "gesture-specific",
            seed=seed,
            window=window,
        )
        rows.append(
            Table5Row(
                setup=setup,
                model=architecture,
                features=features or "All",
                metrics=metrics,
            )
        )
    return rows


def render(rows: list[Table5Row]) -> str:
    """ASCII rendering of the Block Transfer grid results."""
    return _render(
        rows,
        title="Table VI: erroneous gesture classification (Block Transfer, window=10)",
    )
