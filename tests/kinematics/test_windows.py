"""Tests for repro.kinematics.windows."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.errors import ShapeError
from repro.kinematics.windows import StreamingWindow, sliding_windows, window_labels


def ramp_frames(n: int, d: int = 2) -> np.ndarray:
    return np.arange(n * d, dtype=float).reshape(n, d)


class TestSlidingWindows:
    def test_shapes_and_ends(self):
        windows, ends = sliding_windows(ramp_frames(10), WindowConfig(4, 2))
        assert windows.shape == (4, 4, 2)
        assert ends.tolist() == [3, 5, 7, 9]

    def test_content(self):
        frames = ramp_frames(6)
        windows, _ = sliding_windows(frames, WindowConfig(3, 1))
        assert np.array_equal(windows[0], frames[0:3])
        assert np.array_equal(windows[-1], frames[3:6])

    def test_too_short_sequence(self):
        windows, ends = sliding_windows(ramp_frames(3), WindowConfig(5, 1))
        assert windows.shape == (0, 5, 2)
        assert ends.size == 0

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            sliding_windows(np.arange(10.0), WindowConfig(3, 1))


class TestWindowLabels:
    def test_last_reduce(self):
        labels = np.array([1, 1, 2, 2, 3, 3])
        out = window_labels(labels, WindowConfig(3, 1), reduce="last")
        assert out.tolist() == [2, 2, 3, 3]

    def test_any_reduce(self):
        labels = np.array([0, 1, 0, 0, 0])
        out = window_labels(labels, WindowConfig(3, 1), reduce="any")
        assert out.tolist() == [1, 1, 0]

    def test_majority_reduce(self):
        labels = np.array([5, 5, 7, 7, 7])
        out = window_labels(labels, WindowConfig(5, 1), reduce="majority")
        assert out.tolist() == [7]

    def test_alignment_with_windows(self):
        frames = ramp_frames(20)
        labels = np.arange(20)
        cfg = WindowConfig(4, 3)
        _, ends = sliding_windows(frames, cfg)
        out = window_labels(labels, cfg, reduce="last")
        assert np.array_equal(out, labels[ends])

    def test_unknown_reduce(self):
        with pytest.raises(ShapeError):
            window_labels(np.zeros(5, dtype=int), WindowConfig(2, 1), reduce="mean")


class TestStreamingWindow:
    def test_matches_batch_extraction(self):
        frames = ramp_frames(25, 3)
        cfg = WindowConfig(5, 2)
        batch_windows, batch_ends = sliding_windows(frames, cfg)
        stream = StreamingWindow(cfg, n_features=3)
        seen = list(stream.iter_windows(frames))
        assert [t for t, _ in seen] == batch_ends.tolist()
        for (_, win), batch in zip(seen, batch_windows):
            assert np.array_equal(win, batch)

    def test_warmup_returns_none(self):
        stream = StreamingWindow(WindowConfig(4, 1), n_features=1)
        for t in range(3):
            assert stream.push(np.array([float(t)])) is None
        assert stream.push(np.array([3.0])) is not None

    def test_reset(self):
        stream = StreamingWindow(WindowConfig(2, 1), n_features=1)
        stream.push(np.array([0.0]))
        stream.reset()
        assert stream.frames_seen == 0
        assert stream.push(np.array([1.0])) is None

    def test_rejects_wrong_width(self):
        stream = StreamingWindow(WindowConfig(2, 1), n_features=2)
        with pytest.raises(ShapeError):
            stream.push(np.zeros(3))
