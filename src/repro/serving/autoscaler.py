"""The autoscaling actuator: apply ``suggest_shard_count`` to a live fleet.

:func:`~repro.serving.sharded.suggest_shard_count` has always been the
*policy* half of autoscaling — a pure function turning a
``shard_stats()`` snapshot into a recommended shard count.
:class:`MonitorAutoscaler` is the *actuator* half: a background loop
over an :class:`~repro.serving.async_frontend.AsyncShardedMonitor` that
polls the fleet's per-shard tick latency, runs the policy, and applies
the recommendation through :meth:`AsyncShardedMonitor.resize` — live
session migration, no fleet rebuild, no dropped frame.

Two layers of hysteresis keep the fleet from thrashing:

- the policy's own watermark band (scale down only so far that the
  projected load cannot immediately trigger the next scale-up), and
- the actuator's: a recommendation must repeat for ``consecutive``
  evaluations before it is applied, and at least ``cooldown_s`` must
  have passed since the previous applied resize.

Every applied resize is recorded in :attr:`MonitorAutoscaler.resize_events`
(and reported through ``on_resize``, which is how the remote gateway
makes resizes visible to STATS clients — see
:meth:`repro.serving.remote.MonitorGateway.gateway_stats`).

The autoscaler is the *capacity* level of a two-level controller; the
*skew* level — :class:`~repro.serving.balancer.MonitorBalancer`, which
sheds sessions off hot shards — attaches through
:attr:`MonitorAutoscaler.balancer` so the two never actuate against
each other (shed in flight defers a pending resize; an applied resize
resets the balancer's hysteresis).
"""

from __future__ import annotations

import asyncio
import logging
from collections.abc import Callable

from ..errors import ConfigurationError, ReproError
from .async_frontend import AsyncShardedMonitor
from .service import ServiceStats
from .sharded import FRAME_INTERVAL_MS, suggest_shard_count

logger = logging.getLogger(__name__)


class MonitorAutoscaler:
    """Poll a fleet's stats and live-resize it under hysteresis.

    Parameters
    ----------
    frontend:
        The :class:`AsyncShardedMonitor` to observe and resize.
    interval_s:
        Polling cadence of the background loop (:meth:`start`).
    min_shards / max_shards:
        Clamp passed through to :func:`suggest_shard_count` (and the
        bounds any applied resize respects).
    consecutive:
        How many consecutive evaluations must agree on the *same*
        target (different from the current count) before it is applied.
    cooldown_s:
        Minimum seconds between two applied resizes.
    frame_interval_ms / high_watermark / low_watermark:
        The policy's deadline and watermark band (see
        :func:`suggest_shard_count`).
    on_resize:
        Optional callback invoked with each applied resize's summary
        dict (the :meth:`ShardedMonitorService.resize` return value plus
        ``"trigger": "autoscaler"``).

    Use :meth:`step` directly for a deterministic, externally-driven
    evaluation (tests, cron-style operators), or :meth:`start` /
    :meth:`stop` for the self-driving loop.
    """

    def __init__(
        self,
        frontend: AsyncShardedMonitor,
        *,
        interval_s: float = 5.0,
        min_shards: int = 1,
        max_shards: int = 8,
        consecutive: int = 2,
        cooldown_s: float = 30.0,
        frame_interval_ms: float = FRAME_INTERVAL_MS,
        high_watermark: float = 0.5,
        low_watermark: float = 0.1,
        on_resize: Callable[[dict], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be > 0")
        if consecutive < 1:
            raise ConfigurationError("consecutive must be >= 1")
        if cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be >= 0")
        if max_shards < min_shards:
            raise ConfigurationError("max_shards must be >= min_shards")
        self._frontend = frontend
        self.interval_s = float(interval_s)
        self.min_shards = int(min_shards)
        self.max_shards = int(max_shards)
        self.consecutive = int(consecutive)
        self.cooldown_s = float(cooldown_s)
        self.frame_interval_ms = float(frame_interval_ms)
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self._on_resize = on_resize
        #: The skew half of the two-level controller, when one is
        #: attached (set by whoever wires the fleet together — see
        #: ``MonitorGateway.start``).  A shed in flight defers a
        #: pending resize, and every applied resize resets the
        #: balancer's hysteresis via
        #: :meth:`~repro.serving.balancer.MonitorBalancer.notify_resize`
        #: — the coupling that keeps resize-for-capacity and
        #: shed-for-skew from fighting over the same stale window.
        self.balancer = None
        #: Applied resizes, oldest first (summary dicts).
        self.resize_events: list[dict] = []
        self._streak_target: int | None = None
        self._streak = 0
        self._last_applied: float | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Current live shard count of the observed fleet."""
        return self._frontend.n_shards

    async def step(
        self, shard_stats: dict[int, ServiceStats] | None = None
    ) -> int | None:
        """Run one evaluation; apply the resize if hysteresis allows.

        ``shard_stats`` overrides the fleet poll (deterministic tests /
        external metric pipelines).  Returns the applied target shard
        count, or ``None`` when nothing was applied — in band, streak
        not yet long enough, or still cooling down.
        """
        if shard_stats is None:
            shard_stats = await self._frontend.shard_stats()
        current = self._frontend.n_shards
        # Clamp the raw recommendation ourselves so clamping can never
        # invert its direction: a fleet already *above* max_shards whose
        # load asks for MORE capacity must be held, not shrunk to the
        # cap while overloaded.
        raw = suggest_shard_count(
            shard_stats,
            frame_interval_ms=self.frame_interval_ms,
            high_watermark=self.high_watermark,
            low_watermark=self.low_watermark,
            min_shards=self.min_shards,
            max_shards=None,
        )
        target = min(raw, self.max_shards)
        if target == current or (raw > current and target < current):
            self._streak_target = None
            self._streak = 0
            return None
        if target != self._streak_target:
            self._streak_target = target
            self._streak = 1
        else:
            self._streak += 1
        if self._streak < self.consecutive:
            return None
        now = asyncio.get_running_loop().time()
        if (
            self._last_applied is not None
            and now - self._last_applied < self.cooldown_s
        ):
            return None
        if self.balancer is not None and self.balancer.shed_in_progress:
            # A shed is mid-migration: applying a resize now would
            # re-place sessions the balancer is moving this instant.
            # Defer — the streak survives, so the resize applies on the
            # next evaluation once the shed has landed.
            return None
        summary = await self._frontend.resize(target)
        self._last_applied = asyncio.get_running_loop().time()
        self._streak_target = None
        self._streak = 0
        event = dict(summary, trigger="autoscaler")
        self.resize_events.append(event)
        if self.balancer is not None:
            self.balancer.notify_resize(event)
        if self._on_resize is not None:
            self._on_resize(event)
        return target

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the background polling loop (idempotent)."""
        if self._task is None and not self._closed:
            self._task = asyncio.create_task(
                self._loop(), name="monitor-autoscaler"
            )

    async def _loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.interval_s)
            if self._closed:
                return
            try:
                await self.step()
            except ReproError:
                # A mid-resize crash fails its sessions safe through the
                # fleet's own paths; a capacity rejection leaves the
                # fleet serving.  Either way the next poll re-evaluates.
                continue

    async def stop(self) -> None:
        """End the polling loop.  Idempotent; :meth:`step` keeps working."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass  # the expected outcome of cancel()
            except Exception as exc:  # noqa: BLE001 - a dead loop must not
                # abort the caller's shutdown path, but the error it died
                # with is still worth the log line.
                logger.warning("autoscaler loop ended with error: %s", exc)
            self._task = None

    async def __aenter__(self) -> "MonitorAutoscaler":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
