"""The concrete task grammars of paper Figure 3.

``suturing_chain`` encodes the Suturing Markov chain the paper derived
from the JIGSAWS dry-lab demonstrations (Figure 3a) and
``block_transfer_chain`` the deterministic Block Transfer chain
(Figure 3b: G2 -> G12 -> G6 -> G5 -> G11 with probability 1).

Transition probabilities are transcribed from Figure 3a.  Where a row in
the figure does not sum exactly to one (rounded published values), the
residual mass is assigned to the row's dominant transition so each row is
a valid distribution — the adjustment is always below 0.03.
"""

from __future__ import annotations

from .markov import MarkovChain
from .vocabulary import END_TOKEN, START_TOKEN, Gesture

#: Gestures observed in the Suturing task (G7 never occurs).
SUTURING_GESTURES: tuple[Gesture, ...] = (
    Gesture.G1,
    Gesture.G2,
    Gesture.G3,
    Gesture.G4,
    Gesture.G5,
    Gesture.G6,
    Gesture.G8,
    Gesture.G9,
    Gesture.G10,
    Gesture.G11,
)

#: Gestures of the Block Transfer task in execution order (Figure 3b).
BLOCK_TRANSFER_GESTURES: tuple[Gesture, ...] = (
    Gesture.G2,
    Gesture.G12,
    Gesture.G6,
    Gesture.G5,
    Gesture.G11,
)


def suturing_chain() -> MarkovChain:
    """Suturing task grammar (paper Figure 3a).

    The chain captures the canonical flow Start -> G1 -> G2 -> G3 -> G6 ->
    G4 -> G2 ... -> G11 -> End along with the lower-probability variations
    (restarts via G5, orientation fixes via G8, tightening via G9, ...).
    """
    transitions: dict[int, dict[int, float]] = {
        START_TOKEN: {
            Gesture.G1: 0.74,
            Gesture.G5: 0.21,
            Gesture.G8: 0.05,
        },
        Gesture.G1: {
            Gesture.G2: 0.97,
            Gesture.G4: 0.03,
        },
        Gesture.G2: {
            Gesture.G3: 0.96,
            Gesture.G6: 0.02,
            Gesture.G8: 0.01,
            Gesture.G5: 0.01,
        },
        Gesture.G3: {
            Gesture.G6: 0.93,
            Gesture.G2: 0.01,
            Gesture.G8: 0.05,
            Gesture.G4: 0.01,
        },
        Gesture.G4: {
            Gesture.G2: 0.62,
            Gesture.G8: 0.21,
            Gesture.G10: 0.13,
            Gesture.G3: 0.01,
            Gesture.G6: 0.01,
            Gesture.G11: 0.02,
        },
        Gesture.G5: {
            Gesture.G2: 0.76,
            Gesture.G8: 0.22,
            Gesture.G3: 0.02,
        },
        Gesture.G6: {
            Gesture.G4: 0.89,
            Gesture.G9: 0.02,
            Gesture.G10: 0.03,
            Gesture.G11: 0.04,
            Gesture.G2: 0.01,
            Gesture.G8: 0.01,
        },
        Gesture.G8: {
            Gesture.G2: 0.92,
            Gesture.G3: 0.08,
        },
        Gesture.G9: {
            Gesture.G10: 0.08,
            Gesture.G11: 0.67,
            Gesture.G2: 0.08,
            Gesture.G4: 0.17,
        },
        Gesture.G10: {
            Gesture.G11: 0.50,
            Gesture.G4: 0.50,
        },
        Gesture.G11: {
            END_TOKEN: 1.00,
        },
    }
    return MarkovChain(transitions)


def block_transfer_chain() -> MarkovChain:
    """Block Transfer task grammar (paper Figure 3b).

    Every demonstration follows the same five-gesture sequence, so all
    transition probabilities are 1.
    """
    transitions: dict[int, dict[int, float]] = {
        START_TOKEN: {Gesture.G2: 1.0},
        Gesture.G2: {Gesture.G12: 1.0},
        Gesture.G12: {Gesture.G6: 1.0},
        Gesture.G6: {Gesture.G5: 1.0},
        Gesture.G5: {Gesture.G11: 1.0},
        Gesture.G11: {END_TOKEN: 1.0},
    }
    return MarkovChain(transitions)
