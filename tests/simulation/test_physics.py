"""Tests for repro.simulation.physics and workspace."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.physics import GrasperPhysics, PhysicsEngine, PhysicsOutcome
from repro.simulation.workspace import Block, Receptacle, Workspace


class TestWorkspace:
    def test_receptacle_contains(self):
        receptacle = Receptacle(position=np.array([10.0, 0.0, 0.0]), radius_mm=5.0)
        assert receptacle.contains(np.array([12.0, 3.0, 40.0]))
        assert not receptacle.contains(np.array([16.0, 0.0, 0.0]))

    def test_block_resting_z(self):
        block = Block(size_mm=12.0)
        assert block.resting_z == pytest.approx(6.0)

    def test_in_bounds(self):
        ws = Workspace(extent_mm=50.0)
        assert ws.in_bounds(np.array([49.0, -49.0, 10.0]))
        assert not ws.in_bounds(np.array([51.0, 0.0, 0.0]))

    def test_copy_is_deep(self):
        ws = Workspace()
        clone = ws.copy()
        clone.block.position[0] = 99.0
        assert ws.block.position[0] != 99.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            Receptacle(radius_mm=0.0)
        with pytest.raises(ConfigurationError):
            Block(size_mm=-1.0)


class TestGrasperPhysics:
    def test_threshold_sampling_bounded_below(self):
        physics = GrasperPhysics(hold_threshold_rad=0.4, hold_threshold_std=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            threshold = physics.sample_hold_threshold(rng)
            assert threshold > physics.grasp_close_rad

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ConfigurationError):
            GrasperPhysics(grasp_close_rad=1.0, hold_threshold_rad=0.5)


class TestPhysicsEngine:
    def make_engine(self):
        ws = Workspace()
        physics = GrasperPhysics(hold_threshold_std=0.0)
        return ws, PhysicsEngine(ws, physics, rng=0)

    def test_grasp_requires_proximity_and_closure(self):
        ws, engine = self.make_engine()
        far = ws.block.position + np.array([50.0, 0.0, 0.0])
        engine.step(far, 0.1, "left")
        assert not engine.block_held
        engine.step(ws.block.position, 0.9, "left")  # near but open
        assert not engine.block_held
        engine.step(ws.block.position, 0.1, "left")  # near and closed
        assert engine.block_held
        assert engine.grasp_frame == 2

    def test_block_follows_grasper(self):
        ws, engine = self.make_engine()
        engine.step(ws.block.position, 0.1, "left")
        carry = np.array([0.0, 0.0, 40.0])
        engine.step(carry, 0.1, "left")
        assert np.allclose(ws.block.position, carry)

    def test_release_above_threshold(self):
        ws, engine = self.make_engine()
        engine.step(ws.block.position, 0.1, "left")
        carry = np.array([10.0, 5.0, 40.0])
        engine.step(carry, 0.1, "left")
        engine.step(carry, 1.2, "left")  # open wide -> release
        assert not engine.block_held
        assert ws.block.position[2] == pytest.approx(ws.block.resting_z)
        assert engine.release_frame == 2

    def test_no_regrasp_after_release(self):
        ws, engine = self.make_engine()
        engine.step(ws.block.position, 0.1, "left")
        engine.step(ws.block.position, 1.2, "left")  # release
        engine.step(ws.block.position, 0.1, "left")  # try again
        assert not engine.block_held

    def test_outcome_never_grasped(self):
        __, engine = self.make_engine()
        engine.step(np.array([90.0, 90.0, 50.0]), 0.1, "left")
        assert engine.outcome() == PhysicsOutcome.NEVER_GRASPED

    def test_outcome_dropoff_when_never_released(self):
        ws, engine = self.make_engine()
        engine.step(ws.block.position, 0.1, "left")
        assert engine.outcome() == PhysicsOutcome.DROPOFF_FAILURE

    def test_outcome_block_drop_before_window(self):
        ws, engine = self.make_engine()
        engine.step(ws.block.position, 0.1, "left")  # frame 0: grasp
        engine.step(np.array([0.0, 0.0, 40.0]), 1.3, "left")  # frame 1: drop
        assert engine.outcome(drop_window=(5, 10)) == PhysicsOutcome.BLOCK_DROP

    def test_outcome_success_in_window(self):
        ws, engine = self.make_engine()
        target = ws.receptacle.position + np.array([0.0, 0.0, 20.0])
        engine.step(ws.block.position, 0.1, "left")  # 0: grasp
        engine.step(target, 0.1, "left")  # 1: carry
        engine.step(target, 1.3, "left")  # 2: release over receptacle
        assert engine.outcome(drop_window=(2, 10)) == PhysicsOutcome.SUCCESS

    def test_outcome_late_release_is_dropoff(self):
        ws, engine = self.make_engine()
        target = ws.receptacle.position + np.array([0.0, 0.0, 20.0])
        engine.step(ws.block.position, 0.1, "left")
        for _ in range(8):
            engine.step(target, 0.1, "left")
        engine.step(target, 1.3, "left")  # released at frame 9
        # Window (2, 10): release at 9 > 2 + 0.45 * 8.
        assert engine.outcome(drop_window=(2, 10)) == PhysicsOutcome.DROPOFF_FAILURE

    def test_outcome_wrong_position(self):
        ws, engine = self.make_engine()
        away = ws.receptacle.position + np.array([40.0, 0.0, 20.0])
        engine.step(ws.block.position, 0.1, "left")
        engine.step(away, 0.1, "left")
        engine.step(away, 1.3, "left")  # release early in window, off target
        assert engine.outcome(drop_window=(2, 20)) == PhysicsOutcome.WRONG_POSITION
