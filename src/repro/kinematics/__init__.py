"""Kinematic state representation shared by both surgical platforms.

This package defines the 19-variable-per-manipulator kinematics schema of
the JIGSAWS dataset (Cartesian position, rotation matrix, linear and
angular velocity, grasper angle), rotation-matrix utilities, named feature
groups used for the paper's feature-subset ablations, sliding-window
extraction (Equation 2 of the paper) and trajectory containers.
"""

from .features import (
    ALL_FEATURES,
    FEATURE_GROUPS,
    FeatureGroup,
    feature_indices,
    feature_names,
    n_features,
    select_features,
)
from .rotations import (
    identity_rotation,
    is_rotation_matrix,
    rotation_about_axis,
    rotation_angle_between,
    rotation_from_euler,
    rotation_to_euler,
)
from .state import ManipulatorState, RobotState, N_VARIABLES_PER_ARM
from .trajectory import Trajectory
from .windows import (
    StreamingWindow,
    StreamingWindowBatch,
    sliding_windows,
    window_labels,
)

__all__ = [
    "ALL_FEATURES",
    "FEATURE_GROUPS",
    "FeatureGroup",
    "ManipulatorState",
    "N_VARIABLES_PER_ARM",
    "RobotState",
    "StreamingWindow",
    "StreamingWindowBatch",
    "Trajectory",
    "feature_indices",
    "feature_names",
    "identity_rotation",
    "is_rotation_matrix",
    "n_features",
    "rotation_about_axis",
    "rotation_angle_between",
    "rotation_from_euler",
    "rotation_to_euler",
    "select_features",
    "sliding_windows",
    "window_labels",
]
