"""Multi-stream online serving of the safety-monitoring pipeline.

The architectural seam between the paper's single-demonstration replay
and a production deployment monitoring many procedures at once:

- :mod:`~repro.serving.service` — :class:`MonitorService`, the tick-based
  engine that batches ready windows *across* concurrent sessions so each
  pipeline stage runs once per tick instead of once per stream;
- :mod:`~repro.serving.sharded` — :class:`ShardedMonitorService`, the
  scale-out layer fanning sessions across worker processes by
  consistent hashing, each worker running its own ``MonitorService``,
  plus :func:`suggest_shard_count`, the autoscaling policy over
  ``shard_stats()``, and the elasticity actuators ``add_shard`` /
  ``remove_shard`` / ``resize`` that live-migrate sessions (state,
  pending frames and all) instead of closing them;
- :mod:`~repro.serving.autoscaler` — :class:`MonitorAutoscaler`, the
  loop that applies ``suggest_shard_count`` recommendations through
  ``resize`` under hysteresis;
- :mod:`~repro.serving.balancer` — :func:`plan_sheds` /
  :class:`MonitorBalancer`, the second control level: resize fixes
  capacity, the balancer fixes *skew* by continuously shedding
  sessions off hot shards through the live-migration path (placement
  overlay keeps routing with the moved sessions), with hysteresis,
  per-cycle migration budgets and flap suppression so the two levels
  never fight;
- :mod:`~repro.serving.async_frontend` — :class:`AsyncShardedMonitor`,
  the asyncio ingest/egress façade whose ``feed()``/``events()`` never
  block on a slow shard;
- :mod:`~repro.serving.remote` — the network front door:
  :class:`MonitorGateway` serves the engines over TCP with a compact
  binary wire protocol, bounded per-connection send queues
  (backpressure) and fail-safe disconnect semantics;
  :class:`RemoteMonitorClient` / :class:`AsyncRemoteMonitorClient` are
  the SDKs and :class:`GatewayRunner` the sync-world bridge;
- :mod:`~repro.serving.snapshot` — :func:`monitor_to_bytes` /
  :func:`monitor_from_bytes`, the no-pickled-code monitor archive that
  bootstraps every worker process;
- :mod:`~repro.serving.bulk` — :class:`BulkScorer` and the
  :func:`score_procedure` / :func:`score_procedures` conveniences, the
  *offline* workload: whole recorded procedures scored in one fused
  batch per pipeline stage (one GEMM per Dense stage) over zero-copy
  strided window views, bit-identical to the looped
  ``SafetyMonitor.process`` under the reference backend;
- :mod:`~repro.serving.eventstore` — :class:`EventStoreWriter` /
  :class:`EventStoreReader`, the durable observability plane: an
  append-only, schema-versioned, segmented on-disk event log every
  serving layer can tee its :class:`SessionEvent` stream into through
  a non-blocking bounded ring (a full ring is a counted drop, never a
  stalled tick), replayable bit-identically after the fact;
- :mod:`~repro.serving.telemetry` — :class:`TelemetryRegistry`, the
  counters/histograms registry threaded service → sharded router →
  gateway and surfaced in the STATS wire reply;
- :mod:`~repro.serving.analytics` — offline queries over a stored log
  (error rates by gesture/session/shard, alert-latency percentiles,
  fail-safe summaries) plus JSON/CSV export;
- :mod:`~repro.serving.synthetic` — instant, deterministic synthetic
  monitors and trajectories for parity tests and throughput benchmarks.

:meth:`repro.core.SafetyMonitor.stream` is a thin one-session wrapper
over the same engine, so single-stream, fleet, sharded and remote
serving share one hot path and agree bit for bit.  Every entry point
takes a ``backend`` choice (:mod:`repro.nn.backends`): ``"reference"``
keeps the bit-exact contract, ``"compiled"``/``"compiled-f32"`` run the
folded zero-allocation plans.  See ``docs/architecture.md``,
``docs/serving.md`` and ``docs/remote.md``.
"""

from .async_frontend import AsyncShardedMonitor
from .autoscaler import MonitorAutoscaler
from .balancer import MonitorBalancer, ShedPlan, plan_sheds
from .bulk import BulkScorer, score_procedure, score_procedures
from .eventstore import EventStoreReader, EventStoreWriter, StoredRecord
from .remote import (
    AsyncRemoteMonitorClient,
    GatewayRunner,
    MonitorGateway,
    RemoteMonitorClient,
    ResumeState,
)
from .service import (
    MonitorService,
    ServiceStats,
    SessionEvent,
    SessionResult,
    SessionState,
)
from .sharded import ShardedMonitorService, suggest_shard_count
from .snapshot import (
    monitor_from_bytes,
    monitor_to_bytes,
    session_from_bytes,
    session_to_bytes,
    snapshot_backend,
)
from .synthetic import make_random_walk_trajectory, make_synthetic_monitor
from .telemetry import Counter, Histogram, TelemetryRegistry

__all__ = [
    "AsyncRemoteMonitorClient",
    "AsyncShardedMonitor",
    "BulkScorer",
    "Counter",
    "EventStoreReader",
    "EventStoreWriter",
    "GatewayRunner",
    "Histogram",
    "MonitorAutoscaler",
    "MonitorBalancer",
    "MonitorGateway",
    "MonitorService",
    "RemoteMonitorClient",
    "ResumeState",
    "ServiceStats",
    "SessionEvent",
    "SessionResult",
    "SessionState",
    "ShardedMonitorService",
    "ShedPlan",
    "StoredRecord",
    "TelemetryRegistry",
    "make_random_walk_trajectory",
    "make_synthetic_monitor",
    "monitor_from_bytes",
    "monitor_to_bytes",
    "plan_sheds",
    "score_procedure",
    "score_procedures",
    "session_from_bytes",
    "session_to_bytes",
    "snapshot_backend",
    "suggest_shard_count",
]
