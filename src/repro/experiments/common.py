"""Shared experiment infrastructure: scale presets and component training.

The paper's models were trained on a GPU over the full JIGSAWS/simulator
datasets; this reproduction runs on CPU with a from-scratch numpy
framework, so every experiment accepts a scale preset controlling data
volume and model width.  ``full`` approximates the paper's data sizes
(39 Suturing demos, 651 fault injections); ``fast`` gives the same
qualitative results in minutes; ``smoke`` exists for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..config import MonitorConfig, TrainingConfig, WindowConfig
from ..core import (
    BaselineMonitor,
    ErrorClassifierLibrary,
    GestureClassifier,
    SafetyMonitor,
)
from ..core.error_classifiers import ErrorClassifierConfig
from ..core.gesture_classifier import GestureClassifierConfig
from ..errors import ConfigurationError
from ..faults.campaign import generate_fault_free_demos, run_campaign
from ..faults.outcomes import gesture_error_labels
from ..jigsaws.dataset import Demonstration, SurgicalDataset
from ..jigsaws.synthesis import make_suturing_dataset
from ..kinematics.trajectory import Trajectory
from ..simulation.physics import PhysicsOutcome


@dataclass(frozen=True)
class ExperimentScale:
    """Data/model scale of an experiment run."""

    name: str
    #: Suturing demonstrations (paper: 39).
    suturing_demos: int
    #: Fault-injection campaign fraction (paper grid scale; 1.0 = 651).
    campaign_scale: float
    #: Block Transfer simulator kinematics rate (Hz).
    raven_rate_hz: float
    #: Gesture classifier LSTM widths.
    gesture_lstm: tuple[int, ...]
    gesture_dense: int
    gesture_epochs: int
    gesture_max_windows: int
    #: Error classifier widths.
    error_hidden: tuple[int, ...]
    error_dense: int
    error_epochs: int
    error_max_windows: int
    baseline_max_windows: int
    batch_size: int = 128
    learning_rate: float = 1e-3

    def gesture_config(
        self, window: WindowConfig | None = None
    ) -> GestureClassifierConfig:
        """Gesture-classifier configuration at this scale."""
        return GestureClassifierConfig(
            lstm_units=self.gesture_lstm,
            dense_units=self.gesture_dense,
            window=window or WindowConfig(5, 1),
            training=TrainingConfig(
                learning_rate=self.learning_rate,
                max_epochs=self.gesture_epochs,
                batch_size=self.batch_size,
            ),
            max_train_windows=self.gesture_max_windows,
        )

    def error_config(
        self, architecture: str = "conv", for_baseline: bool = False
    ) -> ErrorClassifierConfig:
        """Error-classifier configuration at this scale."""
        return ErrorClassifierConfig(
            architecture=architecture,
            hidden=self.error_hidden,
            dense_units=self.error_dense,
            training=TrainingConfig(
                learning_rate=self.learning_rate,
                max_epochs=self.error_epochs,
                batch_size=self.batch_size,
            ),
            max_train_windows=(
                self.baseline_max_windows if for_baseline else self.error_max_windows
            ),
        )


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        suturing_demos=12,
        campaign_scale=0.05,
        raven_rate_hz=30.0,
        gesture_lstm=(32, 16),
        gesture_dense=16,
        gesture_epochs=8,
        gesture_max_windows=6000,
        error_hidden=(16, 8),
        error_dense=8,
        error_epochs=8,
        error_max_windows=3000,
        baseline_max_windows=8000,
    ),
    "fast": ExperimentScale(
        name="fast",
        suturing_demos=39,
        campaign_scale=0.25,
        raven_rate_hz=30.0,
        gesture_lstm=(48, 24),
        gesture_dense=24,
        gesture_epochs=10,
        gesture_max_windows=12000,
        error_hidden=(24, 12),
        error_dense=12,
        error_epochs=20,
        error_max_windows=8000,
        baseline_max_windows=24000,
    ),
    "full": ExperimentScale(
        name="full",
        suturing_demos=39,
        campaign_scale=1.0,
        raven_rate_hz=50.0,
        gesture_lstm=(96, 48),
        gesture_dense=48,
        gesture_epochs=15,
        gesture_max_windows=40000,
        error_hidden=(48, 24),
        error_dense=24,
        error_epochs=30,
        error_max_windows=20000,
        baseline_max_windows=60000,
    ),
}


def get_scale(scale: "str | ExperimentScale" = "fast") -> ExperimentScale:
    """Resolve a preset name or pass through an explicit scale."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from exc


# ----------------------------------------------------------------------
# Suturing components
# ----------------------------------------------------------------------
@dataclass
class SuturingComponents:
    """Everything one Suturing LOSO fold trains."""

    train: SurgicalDataset
    test: SurgicalDataset
    gesture_classifier: GestureClassifier
    library: ErrorClassifierLibrary
    baseline: BaselineMonitor
    window: WindowConfig = field(default_factory=lambda: WindowConfig(5, 1))

    def monitor(self) -> SafetyMonitor:
        """The assembled context-aware safety monitor."""
        return SafetyMonitor(
            self.gesture_classifier,
            self.library,
            MonitorConfig(gesture_window=self.window, error_window=self.window),
        )


def train_suturing_fold(
    scale: "str | ExperimentScale" = "fast",
    held_out_trial: int = 2,
    seed: int = 0,
    architecture: str = "conv",
    dataset: SurgicalDataset | None = None,
) -> SuturingComponents:
    """Generate data and train all components for one LOSO fold."""
    preset = get_scale(scale)
    if dataset is None:
        dataset = make_suturing_dataset(n_demos=preset.suturing_demos, rng=seed)
    train, test = dataset.split_by_trials(held_out_trial)
    window = WindowConfig(5, 1)

    gesture = GestureClassifier(preset.gesture_config(window), seed=seed)
    gesture.fit(train)

    data = train.windows(window)
    library = ErrorClassifierLibrary(preset.error_config(architecture), seed=seed + 1)
    library.fit(data)
    baseline = BaselineMonitor(
        preset.error_config(architecture, for_baseline=True), seed=seed + 2
    )
    baseline.fit(data)
    return SuturingComponents(
        train=train,
        test=test,
        gesture_classifier=gesture,
        library=library,
        baseline=baseline,
        window=window,
    )


# ----------------------------------------------------------------------
# Block Transfer dataset from the simulator + fault campaign
# ----------------------------------------------------------------------
def make_blocktransfer_dataset(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    n_fault_free: int = 20,
) -> SurgicalDataset:
    """Build the Raven II Block Transfer dataset.

    Runs fault-free demonstrations plus a (scaled) fault-injection
    campaign, labels erroneous gestures from the injection records and
    physical outcomes (paper Section IV-B), and returns everything as a
    :class:`SurgicalDataset` whose trajectories carry the 38-variable
    JIGSAWS-style features.

    Demonstrations are assigned round-robin "trial" indices 1..5 so the
    same LOSO machinery applies.
    """
    preset = get_scale(scale)
    rng = np.random.default_rng(seed)
    demos: list[Demonstration] = []

    base = generate_fault_free_demos(
        n_demos=n_fault_free, sample_rate_hz=preset.raven_rate_hz, rng=rng
    )
    from ..simulation.robot import RavenSimulator

    simulator = RavenSimulator(camera=None, rng=rng)
    counter = 0
    for commands in base:
        result = simulator.run(commands, record_video=False)
        if result.outcome != PhysicsOutcome.SUCCESS:
            continue
        trajectory = result.kinematics_trajectory()
        trajectory.unsafe = np.zeros(trajectory.n_frames, dtype=int)
        trajectory.metadata["faulty"] = False
        demos.append(
            Demonstration(
                trajectory=trajectory,
                subject=commands.metadata.get("operator", "subject_a"),
                trial=(counter % 5) + 1,
                task="block_transfer",
            )
        )
        counter += 1

    campaign = run_campaign(
        scale=preset.campaign_scale,
        base_demos=base,
        sample_rate_hz=preset.raven_rate_hz,
        rng=rng,
        keep_results=True,
    )
    for result in campaign.results:
        trajectory = result.kinematics_trajectory()
        trajectory.unsafe = gesture_error_labels(result)
        trajectory.metadata["faulty"] = True
        trajectory.metadata["outcome"] = result.outcome.value
        demos.append(
            Demonstration(
                trajectory=trajectory,
                subject=result.metadata.get("operator", "subject_a"),
                trial=(counter % 5) + 1,
                task="block_transfer",
            )
        )
        counter += 1
    return SurgicalDataset(demos, task="block_transfer")


def trajectories_with_outputs(
    monitor: SafetyMonitor,
    dataset: SurgicalDataset,
    use_true_gestures: bool = False,
    bulk: bool = True,
    backend: str = "reference",
) -> list[tuple[Trajectory, "object"]]:
    """Run the monitor over every demonstration of a dataset.

    Scoring goes through the bulk offline engine by default (one fused
    batch per pipeline stage per demonstration — see
    :mod:`repro.serving.bulk`); with the default ``"reference"`` backend
    the outputs are bit-identical to the looped ``process()``
    (``bulk=False``), so every table/figure number is unchanged.
    """
    pairs = []
    for demo in dataset.demonstrations:
        output = monitor.process(
            demo.trajectory,
            use_true_gestures=use_true_gestures,
            bulk=bulk,
            backend=backend if bulk else None,
        )
        pairs.append((demo.trajectory, output))
    return pairs
