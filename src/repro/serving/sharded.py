"""Sharded multi-process serving: fan sessions out across worker processes.

:class:`ShardedMonitorService` scales the single-process
:class:`~repro.serving.service.MonitorService` past one core and one
GIL: N worker processes each run their own ``MonitorService`` tick loop
over a private :func:`multiprocessing.Pipe`, and the router places every
session on a shard by **consistent hashing** of its session id
(:class:`_HashRing`), so placement is deterministic, independent of open
order, and minimally disturbed when a shard leaves the ring.

Parity is the design invariant: because each worker rebuilds the same
monitor from the same snapshot bytes and inference is batch-size
invariant (:mod:`repro.nn.layers.contract`), a session served by a
K-shard service emits bit-identical :class:`SessionEvent` streams to the
same session on one local ``MonitorService`` — the sharded parity suite
(``tests/serving/test_sharded.py``, ``tests/core/test_parity.py``)
locks this in for K ∈ {1, 2, 4}.

Failure semantics are fail-safe: when a worker process dies, its
sessions are not silently dropped — each one surfaces a terminal
:class:`SessionEvent` with ``error`` set and ``flag=True`` (a monitoring
outage on a surgical robot must read as *unsafe*, see
``docs/serving.md``), the sessions move to :attr:`failed_sessions`, and
the dead shard leaves the hash ring so new sessions rebalance onto the
survivors while healthy shards keep ticking.

Data moves over the **shared-memory data plane** (:mod:`.shm`): each
shard owns a frame ring ``feed()`` writes into without a reply round
trip (a full ring is the back-pressure signal) and an event ring whose
batches ``tick()``/``drain()`` read in place, so the pipe carries only
control ops.  Sessions are addressed on the rings by their global
opening ``order`` — the same integer that merges event streams — and
frame widths are validated router-side against the snapshot
(:func:`~repro.serving.snapshot.snapshot_n_features`), so a bad
``feed`` still raises synchronously.  Frame blocks the *worker*
rejects after that (the safety net) surface as deferred
``ingest_errors`` on the next exchange and fail the session safe.
``data_plane="pipe"`` restores the original ack-per-feed pipe plane.

The fleet is also **elastic** without dropping a frame:
:meth:`ShardedMonitorService.add_shard` / :meth:`remove_shard` /
:meth:`resize` move live sessions between workers by exporting their
complete serving state — pending frames, window ring contents, sticky
gesture/score context (:meth:`MonitorService.export_session` via the
:mod:`~repro.serving.snapshot` session codec) — and importing it on the
consistent-hash target, so a fleet resized mid-stream reproduces the
static single-service event stream bit for bit under the reference
backend (``tests/serving/test_elasticity.py``).
"""

from __future__ import annotations

import bisect
import contextlib
import hashlib
import itertools
import logging
import math
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.pipeline import SafetyMonitor
from ..errors import ConfigurationError, DatasetError, ShapeError, WorkerError
from ..nn.backends import DEFAULT_BACKEND, validate_backend_name
from .service import ServiceStats, SessionEvent, SessionResult
from .telemetry import TelemetryRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .eventstore import EventStoreWriter
from .shm import (
    DEFAULT_EVENT_RING_BYTES,
    DEFAULT_FRAME_RING_BYTES,
    ShmRing,
    write_frames_blocking,
)
from .snapshot import (
    monitor_to_bytes,
    session_snapshot_id,
    snapshot_backend,
    snapshot_n_features,
)
from .transport import Reply, Request, raise_remote, recv_message
from .worker import worker_main

logger = logging.getLogger(__name__)

#: Frame interval of the paper's 30 Hz kinematics stream — the tick
#: deadline :func:`suggest_shard_count` sizes fleets against.
FRAME_INTERVAL_MS = 1000.0 / 30.0


def _stable_hash(key: str) -> int:
    """Process-independent 128-bit hash (``hash()`` is salted per run)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest(), "big")


def suggest_shard_count(
    shard_stats: dict[int, ServiceStats],
    *,
    frame_interval_ms: float = FRAME_INTERVAL_MS,
    high_watermark: float = 0.5,
    low_watermark: float = 0.1,
    min_shards: int = 1,
    max_shards: int | None = None,
) -> int:
    """Recommend a shard count from observed per-shard tick latency.

    A pure function over a :meth:`ShardedMonitorService.shard_stats`
    snapshot (no IPC, no side effects) — the policy half of the ROADMAP
    autoscaling item, usable from a cron job, the gateway's stats loop,
    or an operator script:

    - the serving deadline is one frame interval (33.3 ms at the
      paper's 30 Hz); the *busiest* shard's p99 tick latency is the
      signal, because consistent hashing makes the hottest shard the
      first to miss the deadline;
    - above ``high_watermark`` (fraction of the interval) the fleet
      scales **up** proportionally to the overshoot — tick cost is
      roughly linear in resident sessions, so doubling shards roughly
      halves the hottest shard's batch;
    - below ``low_watermark`` the fleet scales **down**, but only as far
      as keeps the *projected* busiest p99 (linear consolidation of
      today's load onto fewer workers) under half the high watermark, so
      a scale-down never triggers the next scale-up by itself;
    - inside the band the current count is kept (hysteresis).

    Shards with no recorded ticks count as idle.  The result is clamped
    to ``[min_shards, max_shards]``; an empty ``shard_stats`` returns
    ``min_shards``.
    """
    if not 0 < low_watermark < high_watermark <= 1.0:
        raise ConfigurationError(
            "need 0 < low_watermark < high_watermark <= 1"
        )
    if frame_interval_ms <= 0:
        raise ConfigurationError("frame_interval_ms must be > 0")
    if min_shards < 1:
        raise ConfigurationError("min_shards must be >= 1")
    if max_shards is not None and max_shards < min_shards:
        raise ConfigurationError("max_shards must be >= min_shards")

    def clamp(count: int) -> int:
        count = max(count, min_shards)
        if max_shards is not None:
            count = min(count, max_shards)
        return count

    n_shards = len(shard_stats)
    if n_shards == 0:
        return clamp(min_shards)
    busiest_ms = max(
        (s.percentile_ms(99) for s in shard_stats.values()), default=0.0
    )
    high_ms = high_watermark * frame_interval_ms
    low_ms = low_watermark * frame_interval_ms
    if busiest_ms > high_ms:
        return clamp(int(math.ceil(n_shards * busiest_ms / high_ms)))
    if busiest_ms < low_ms and n_shards > min_shards:
        if busiest_ms <= 0.0:
            return clamp(min_shards)
        target = int(math.ceil(n_shards * busiest_ms / (0.5 * high_ms)))
        return clamp(min(n_shards, target))
    return clamp(n_shards)


class _HashRing:
    """Consistent-hash ring with virtual nodes.

    Each shard contributes ``replicas`` points on the ring; a key lands
    on the first point clockwise from its own hash.  Removing a shard
    only re-homes the keys that pointed at it — the property that makes
    drain-and-rebalance cheap.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigurationError("hash ring needs >= 1 replica per shard")
        self.replicas = replicas
        self._points: list[tuple[int, int]] = []  # (hash, shard), sorted

    def add(self, shard: int) -> None:
        for r in range(self.replicas):
            point = (_stable_hash(f"shard-{shard}:vnode-{r}"), shard)
            bisect.insort(self._points, point)

    def remove(self, shard: int) -> None:
        self._points = [p for p in self._points if p[1] != shard]

    def place(self, key: str) -> int:
        if not self._points:
            raise WorkerError("no live shards left in the hash ring")
        i = bisect.bisect_left(self._points, (_stable_hash(key), -1))
        if i == len(self._points):
            i = 0  # wrap around the ring
        return self._points[i][1]

    def __len__(self) -> int:
        return len(self._points)


@dataclass
class _SessionRecord:
    """Router-side bookkeeping for one placed session."""

    shard: int
    order: int  # global opening order; merge key for event streams
    events_seen: int = 0
    record_timeline: bool = True


class _ShardHandle:
    """Router-side view of one worker process, its pipe and its rings."""

    def __init__(
        self,
        index: int,
        process,
        conn,
        frame_ring: ShmRing | None = None,
        event_ring: ShmRing | None = None,
    ) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: Router-owned shm rings (``None`` under ``data_plane="pipe"``).
        #: The router creates them in ``_spawn_shard`` and is the only
        #: side that ever unlinks — on stop, on crash, on removal.
        self.frame_ring = frame_ring
        self.event_ring = event_ring
        #: route id -> session id, for decoding event-ring batches.
        self.routes: dict[int, str] = {}
        #: ``(route, message)`` ingest failures stashed off replies until
        #: the next tick/drain converts them to fail-safe events.
        self.pending_ingest: list[tuple[int, str]] = []
        self.alive = True
        self.failure: str | None = None
        #: True while the worker may still have un-ticked frames; updated
        #: from the ``has_pending`` field piggy-backed on every reply,
        #: and set eagerly by every frame-ring write.
        self.maybe_pending = False

    def send(self, request: Request) -> None:
        try:
            self.conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerError(f"shard {self.index} pipe broken: {exc}") from exc

    def recv(self, timeout_s: float | None) -> Reply:
        try:
            reply: Reply = recv_message(
                self.conn,
                Reply,
                timeout_s=timeout_s,
                who=f"shard {self.index}",
            )
        except WorkerError:
            # Unresponsive, or a corrupt/truncated/foreign reply — the
            # worker cannot be trusted to stay in protocol either way.
            raise
        except EOFError as exc:
            exitcode = self.process.exitcode
            raise WorkerError(
                f"shard {self.index} worker died (exitcode {exitcode})"
            ) from exc
        self.maybe_pending = reply.has_pending
        if reply.ingest_errors:
            self.pending_ingest.extend(reply.ingest_errors)
        return reply

    def request(self, request: Request, timeout_s: float | None) -> Reply:
        self.send(request)
        return self.recv(timeout_s)

    def destroy_rings(self) -> None:
        """Detach and unlink this shard's shm segments.  Idempotent."""
        for ring in (self.frame_ring, self.event_ring):
            if ring is not None:
                ring.destroy()

    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Best-effort graceful stop; escalates to terminate, then kill."""
        if self.alive:
            try:
                self.send(Request("stop"))
                self.recv(join_timeout_s)
            except WorkerError as exc:
                # Not silent: the worker gets escalated to terminate()
                # below either way, but record *why* the graceful path
                # failed — a stop that routinely escalates is a bug.
                logger.warning(
                    "shard %d stop handshake failed: %s", self.index, exc
                )
        try:
            self.conn.close()
        except OSError as exc:
            logger.warning(
                "shard %d pipe close failed during stop: %s", self.index, exc
            )
        self.process.join(join_timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(join_timeout_s)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join()
        self.alive = False
        self.destroy_rings()


class ShardedMonitorService:
    """Serve sessions across N worker processes behind one façade.

    Parameters
    ----------
    monitor:
        Trained :class:`SafetyMonitor`; snapshotted once
        (:func:`~repro.serving.snapshot.monitor_to_bytes`) and shipped to
        every worker.  Pass ``monitor_bytes`` instead to reuse an
        existing snapshot (e.g. loaded from disk).
    n_shards:
        Number of worker processes.
    max_sessions_per_shard:
        Slot capacity of each worker's :class:`MonitorService`.
        Consistent hashing spreads sessions statistically, not evenly —
        leave headroom (see ``docs/serving.md``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` where
        available (fast) and falls back to ``spawn``.
    request_timeout_s:
        Per-request timeout on worker replies.  ``None`` (default) waits
        indefinitely; set it to surface *hung* workers as crashes.  Dead
        workers are detected immediately regardless (broken pipe).
    backend:
        Inference backend every worker's engine runs (see
        :data:`repro.nn.backends.BACKEND_NAMES`).  ``None`` resolves to
        the choice embedded in ``monitor_bytes`` (see
        :func:`~repro.serving.snapshot.monitor_to_bytes`), falling back
        to ``"reference"``.  All K shards of this service — including
        any spawned later — run the resolved plan, which is also
        embedded in the snapshot when the service serialises a live
        ``monitor`` itself.  Caller-supplied ``monitor_bytes`` are
        shipped verbatim: an explicit ``backend`` override applies to
        this fleet without rewriting the archive's own metadata.
    data_plane:
        ``"shm"`` (default) moves frames and events over per-shard
        shared-memory rings (:mod:`.shm`): ``feed()`` is a zero-ack ring
        write with ring-full back-pressure, and tick/drain event batches
        are read out of shared memory instead of being pickled.
        ``"pipe"`` restores the original everything-over-the-pipe plane
        (the pre-ring behaviour, kept for environments without POSIX
        shared memory).
    frame_ring_bytes / event_ring_bytes:
        Per-shard ring capacities under ``data_plane="shm"``; see
        :data:`~repro.serving.shm.DEFAULT_FRAME_RING_BYTES`.  Sizing
        bounds the un-ingested backlog a shard will buffer before
        ``feed()`` blocks.
    event_store:
        Optional :class:`~repro.serving.eventstore.EventStoreWriter`
        the router tees every delivered event into — live tick/drain
        events (tagged with their shard index), fail-safe crash and
        ingest-failure terminals, and a ``"resize"`` marker per
        :meth:`resize` — each exactly once, at the point it enters the
        merged stream.  Leave ``None`` when a gateway in front owns
        the tee.  Note ``drain(collect=False)`` discards live events
        inside the workers, so nothing reaches the tee for them.

    The façade mirrors the :class:`MonitorService` lifecycle —
    ``open_session`` / ``feed`` / ``tick`` / ``drain`` /
    ``close_session`` — and adds shard lifecycle: :meth:`add_shard` /
    :meth:`remove_shard` / :meth:`resize` (live migration — sessions and
    their un-ticked frames move between workers, nothing closes),
    :attr:`failed_sessions` and :meth:`close`.  It also exposes a
    per-shard sub-surface (:meth:`tick_shard`,
    :meth:`shard_maybe_pending`, …) used by the asyncio front-end
    (:class:`~repro.serving.async_frontend.AsyncShardedMonitor`).
    """

    def __init__(
        self,
        monitor: SafetyMonitor | None = None,
        n_shards: int = 2,
        max_sessions_per_shard: int = 64,
        *,
        monitor_bytes: bytes | None = None,
        start_method: str | None = None,
        request_timeout_s: float | None = None,
        hash_replicas: int = 64,
        backend: str | None = None,
        data_plane: str = "shm",
        frame_ring_bytes: int = DEFAULT_FRAME_RING_BYTES,
        event_ring_bytes: int = DEFAULT_EVENT_RING_BYTES,
        event_store: "EventStoreWriter | None" = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if data_plane not in ("shm", "pipe"):
            raise ConfigurationError(
                f'data_plane must be "shm" or "pipe", got {data_plane!r}'
            )
        if max_sessions_per_shard < 1:
            raise ConfigurationError("max_sessions_per_shard must be >= 1")
        if (monitor is None) == (monitor_bytes is None):
            raise ConfigurationError(
                "pass exactly one of monitor / monitor_bytes"
            )
        if backend is not None:
            backend = validate_backend_name(backend)
        if monitor_bytes is None:
            assert monitor is not None
            self.backend = backend or DEFAULT_BACKEND
            # Embed the resolved choice so this snapshot — and anything
            # bootstrapped from it later — keeps running the same plan.
            monitor_bytes = monitor_to_bytes(monitor, backend=self.backend)
        else:
            # A snapshot written by a newer (or tampered) producer may
            # carry a name this version does not know — fail here with a
            # clear error rather than letting every worker die at spawn.
            self.backend = validate_backend_name(
                backend or snapshot_backend(monitor_bytes) or DEFAULT_BACKEND
            )
        self.monitor_bytes = monitor_bytes
        self.max_sessions_per_shard = int(max_sessions_per_shard)
        self.request_timeout_s = request_timeout_s
        self.data_plane = data_plane
        self.frame_ring_bytes = int(frame_ring_bytes)
        self.event_ring_bytes = int(event_ring_bytes)
        # Router-side feed validation width: with the asynchronous frame
        # ring there is no reply to carry a worker-side ShapeError, so
        # the router enforces the trained width up front (same eager
        # check MonitorService runs on its first feed).
        self._n_features = (
            snapshot_n_features(monitor_bytes) if data_plane == "shm" else None
        )
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._ring = _HashRing(replicas=hash_replicas)
        #: Placement overlay: sessions shed off a hot shard are pinned
        #: to their landing shard here, overriding the (load-blind)
        #: consistent-hash ring for every later placement decision.
        #: See :meth:`_place` / :meth:`shed`.
        self._overlay: dict[str, int] = {}
        self._shards: dict[int, _ShardHandle] = {}
        self._sessions: dict[str, _SessionRecord] = {}
        self.failed_sessions: dict[str, str] = {}
        self.event_store = event_store
        #: Router-side instruments: cumulative event accounting that no
        #: resize or crash can reset (the per-shard ServiceStats die
        #: with their workers; these live with the router).
        self.telemetry = TelemetryRegistry()
        #: Counter/latency baseline folded in from retired shards
        #: (graceful ``remove_shard``), so :meth:`stats` is monotonic
        #: across resizes instead of forgetting retired workers.
        self._retired_stats = ServiceStats()
        self._retired_telemetry = TelemetryRegistry()
        self._started = time.monotonic()
        self._undelivered: list[tuple[int, SessionEvent]] = []
        self._order = itertools.count()
        self._next_id = 0
        self._next_shard_index = n_shards  # indices are never reused
        self._closed = False
        self._lock = threading.Lock()  # guards crash bookkeeping
        for index in range(n_shards):
            self._spawn_shard(index)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_shard(self, index: int) -> None:
        frame_ring = event_ring = None
        if self.data_plane == "shm":
            frame_ring = ShmRing(self.frame_ring_bytes)
            event_ring = ShmRing(self.event_ring_bytes)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            process = self._ctx.Process(
                target=worker_main,
                args=(
                    child_conn,
                    self.monitor_bytes,
                    self.max_sessions_per_shard,
                    self.backend,
                    frame_ring.name if frame_ring is not None else None,
                    event_ring.name if event_ring is not None else None,
                ),
                name=f"monitor-shard-{index}",
                daemon=True,
            )
            process.start()
        except Exception:
            for ring in (frame_ring, event_ring):
                if ring is not None:
                    ring.destroy()
            raise
        child_conn.close()
        handle = _ShardHandle(index, process, parent_conn, frame_ring, event_ring)
        try:
            reply = handle.request(Request("ping"), timeout_s=60.0)
        except WorkerError as exc:
            handle.stop()  # also unlinks the rings just created
            raise WorkerError(f"shard {index} failed to start: {exc}") from exc
        raise_remote(reply)
        self._shards[index] = handle
        self._ring.add(index)

    def _fail_shard(
        self, handle: _ShardHandle, reason: str
    ) -> list[tuple[int, SessionEvent]]:
        """Mark a shard dead; fail its sessions; emit terminal events.

        Returns ``(order, event)`` pairs so callers can merge the crash
        events into whatever stream they are currently delivering.  The
        events carry ``flag=True``: losing the monitor mid-procedure is
        treated as unsafe, never as silently safe.
        """
        with self._lock:
            if not handle.alive:
                return []
            handle.alive = False
            handle.failure = reason
            self._ring.remove(handle.index)
            handle.routes.clear()
            out: list[tuple[int, SessionEvent]] = []
            for session_id in [
                s for s, r in self._sessions.items() if r.shard == handle.index
            ]:
                record = self._sessions.pop(session_id)
                self._overlay.pop(session_id, None)
                self.failed_sessions[session_id] = reason
                out.append(
                    (
                        record.order,
                        SessionEvent(
                            session_id=session_id,
                            frame_index=record.events_seen,
                            gesture=0,
                            score=0.0,
                            flag=True,
                            error=reason,
                        ),
                    )
                )
        if out:
            # Fail-safe terminals are accounted (and persisted) at
            # creation, not at delivery — the _undelivered queue may
            # deliver them later, but they must never tee twice.
            self.telemetry.counter("failsafe_events").inc(len(out))
            if self.event_store is not None:
                self.event_store.append_batch(
                    [event for _, event in out], shard=handle.index
                )
        try:
            handle.conn.close()
        except OSError as exc:
            # The close itself failing is secondary to the crash being
            # handled, but never silent — it would mask fd leaks.
            logger.warning(
                "closing pipe of failed shard %d: %s", handle.index, exc
            )
        if handle.process.is_alive():
            handle.process.terminate()
        # Unlink the dead shard's segments now: crash is one of the three
        # unlink paths (stop, removal, crash), so no /dev/shm entry ever
        # waits for close().  The terminated worker's own mapping stays
        # valid until it exits; unlink only removes the name.
        handle.destroy_rings()
        return out

    def _flush_undelivered(self) -> list[tuple[int, SessionEvent]]:
        with self._lock:
            flushed = self._undelivered
            self._undelivered = []
        return flushed

    def _reap_dead(self) -> list[tuple[int, SessionEvent]]:
        """Fail shards whose process died while nobody was talking to it.

        A broken pipe only surfaces on the next exchange, and idle
        shards are never contacted — this cheap liveness poll (no IPC)
        makes every tick/drain notice such deaths promptly.
        """
        pairs: list[tuple[int, SessionEvent]] = []
        for handle in self._live_shards():
            if not handle.process.is_alive():
                pairs.extend(
                    self._fail_shard(
                        handle,
                        f"shard {handle.index} worker died "
                        f"(exitcode {handle.process.exitcode})",
                    )
                )
        return pairs

    def _live_shards(self) -> list[_ShardHandle]:
        return [h for h in self._shards.values() if h.alive]

    # ------------------------------------------------------------------
    # Elasticity: live migration, add/remove/resize
    # ------------------------------------------------------------------
    def _shard_occupancy(self, index: int) -> int:
        """Number of open sessions routed to one shard (no IPC)."""
        with self._lock:
            return sum(1 for r in self._sessions.values() if r.shard == index)

    def shard_occupancy(self) -> dict[int, int]:
        """Open-session count per live shard (no IPC).

        The occupancy half of the balancer's input: paired with
        :meth:`shard_stats` it is what
        :func:`~repro.serving.balancer.plan_sheds` consumes.
        """
        with self._lock:
            occupancy = {handle.index: 0 for handle in self._live_shards()}
            for record in self._sessions.values():
                if record.shard in occupancy:
                    occupancy[record.shard] += 1
        return occupancy

    def sessions_on(self, index: int) -> list[str]:
        """Open session ids routed to one shard, in opening order (no IPC)."""
        with self._lock:
            pairs = [
                (r.order, s)
                for s, r in self._sessions.items()
                if r.shard == index
            ]
        return [session_id for _, session_id in sorted(pairs)]

    def _place(self, session_id: str) -> int:
        """Consistent-hash placement with the shed overlay applied.

        Sessions shed off a hot shard (:meth:`shed`) are pinned to their
        landing shard, so every later placement decision — park/resume
        re-import (:meth:`resolve_import`), re-open of the same id
        (:meth:`resolve_placement`), and the minimal-slice rebalance of
        :meth:`add_shard` — follows the migration instead of snapping
        back to the load-blind ring.  A pin whose target is gone
        (crashed or removed) is dropped and the session falls back to
        plain ring placement.
        """
        pinned = self._overlay.get(session_id)
        if pinned is not None:
            handle = self._shards.get(pinned)
            if handle is not None and handle.alive:
                return pinned
            self._overlay.pop(session_id, None)
        return self._ring.place(session_id)

    def shed(self, session_ids: list[str], to_shard: int) -> dict[str, int]:
        """Migrate named sessions onto an explicit shard and pin them.

        The load-aware placement actuator
        (:class:`~repro.serving.balancer.MonitorBalancer` calls this
        through the asyncio front-end): each session is live-migrated
        via the export→import path — pending frames and window state
        intact, so ticks after the shed are bit-identical to an
        unbalanced run — and pinned to ``to_shard`` in the placement
        overlay so future :meth:`feed` routing, park/resume round trips
        and ``add_shard`` rebalances all follow the move.

        Designed to race safely with a continuously evolving fleet:
        sessions closed or failed since the plan was computed are
        skipped, a full target stops the batch (``ConfigurationError``
        would hit every remaining session too), and worker crashes
        fail their sessions safe through the usual paths.  Returns
        ``{session_id: previous shard}`` for the sessions actually
        moved.

        Raises :class:`~repro.errors.WorkerError` only for a dead or
        unknown ``to_shard`` — a plan aimed at a shard that no longer
        exists is a caller bug, not a race to absorb.
        """
        self._check_open()
        target = self._shards.get(to_shard)
        if target is None or not target.alive:
            raise WorkerError(f"shard {to_shard} is not live")
        moved: dict[str, int] = {}
        for session_id in list(session_ids):
            with self._lock:
                record = self._sessions.get(session_id)
            if record is None:
                continue  # closed or failed since the plan was computed
            source = record.shard
            if source == to_shard:
                with self._lock:
                    self._overlay[session_id] = to_shard
                continue
            try:
                self._migrate_session(session_id, to_shard)
            except ConfigurationError:
                break  # target is full: no later migration can land either
            except WorkerError:
                if not target.alive:
                    break  # target died; the crash path failed the session
                continue  # source died; its sessions already failed safe
            with self._lock:
                self._overlay[session_id] = to_shard
            moved[session_id] = source
        if moved:
            self.telemetry.counter("sheds").inc()
            self.telemetry.counter("sessions_shed").inc(len(moved))
            if self.event_store is not None:
                self.event_store.append_marker(
                    "shed",
                    {"to": to_shard, "moved": dict(sorted(moved.items()))},
                )
        return moved

    def _migrate_session(self, session_id: str, target_index: int) -> None:
        """Move one live session between shards: export → import.

        No drain happens and none is needed — the exported
        :class:`~repro.serving.service.SessionState` carries the
        session's pending frames and window ring state, so the next
        :meth:`tick` advances it on the target exactly as it would have
        on the source (the resize-parity guarantee).

        Failure semantics: a full target raises ``ConfigurationError``
        *before* anything is exported (the session stays where it was);
        a source worker dying mid-export fails that shard's sessions
        through the usual crash path; a target worker dying after the
        export fail-safes the in-limbo session (terminal ``error`` event,
        :attr:`failed_sessions`) — its state died with the pipe.
        """
        record = self._record(session_id)
        source = self._shards[record.shard]
        target = self._shards.get(target_index)
        if target is None or not target.alive:
            raise WorkerError(f"shard {target_index} is not live")
        if target is source:
            return
        if self._shard_occupancy(target_index) >= self.max_sessions_per_shard:
            raise ConfigurationError(
                f"shard {target_index} is full "
                f"({self.max_sessions_per_shard} slots); cannot migrate "
                f"session {session_id!r} onto it"
            )
        try:
            reply = source.request(
                Request("migrate_out", session_id=session_id),
                self.request_timeout_s,
            )
            raise_remote(reply)
        except WorkerError as exc:
            self._queue_crash(source, str(exc))
            raise WorkerError(
                f"session {session_id!r} lost mid-migration: {exc}"
            ) from exc
        state_bytes = reply.value
        source.routes.pop(record.order, None)
        try:
            reply = target.request(
                Request(
                    "migrate_in",
                    state=state_bytes,
                    # The session keeps its global order as its route id
                    # on the target's rings — the merge key never moves.
                    route=(
                        record.order if target.frame_ring is not None else None
                    ),
                ),
                self.request_timeout_s,
            )
            raise_remote(reply)
        except WorkerError as exc:
            # Exported but never landed: the state is gone with the
            # target's pipe.  Fail the session safe rather than let it
            # vanish silently.
            self._queue_crash(target, str(exc))
            reason = f"lost migrating to shard {target_index}: {exc}"
            with self._lock:
                if session_id in self._sessions:
                    limbo = self._sessions.pop(session_id)
                    self._overlay.pop(session_id, None)
                    self.failed_sessions[session_id] = reason
                    limbo_event = SessionEvent(
                        session_id=session_id,
                        frame_index=limbo.events_seen,
                        gesture=0,
                        score=0.0,
                        flag=True,
                        error=reason,
                    )
                    self._undelivered.append((limbo.order, limbo_event))
                    self.telemetry.counter("failsafe_events").inc()
                    if self.event_store is not None:
                        self.event_store.append(limbo_event, shard=target_index)
            raise WorkerError(
                f"session {session_id!r} lost mid-migration: {exc}"
            ) from exc
        with self._lock:
            record.shard = target_index
            if target.frame_ring is not None:
                target.routes[record.order] = session_id

    def remove_shard(self, index: int) -> dict[str, int]:
        """Migrate every session off one shard, then retire the worker.

        The shard leaves the hash ring first, each of its sessions is
        re-placed on the remaining ring and live-migrated there —
        pending frames, window state and timeline intact, **no drain,
        no dropped frame, no closed session** — and the worker process
        is stopped.  Returns ``{session_id: new shard index}`` for the
        migrated sessions.

        Raises
        ------
        WorkerError
            If this is the last live shard — sessions would have
            nowhere to go, and a zero-shard service could serve nothing.
        ConfigurationError
            If a re-placement target has no free slot; the ring is
            restored and the shard keeps serving (sessions already
            migrated stay where they landed — they remain correctly
            routed either way).
        """
        handle = self._shards.get(index)
        if handle is None:
            raise ConfigurationError(f"no shard {index}")
        moved: dict[str, int] = {}
        if handle.alive:
            if len(self._live_shards()) <= 1:
                raise WorkerError(
                    "cannot remove the last live shard: its sessions "
                    "would have nowhere to migrate (resize to >= 1 "
                    "shard, or close the service)"
                )
            self._ring.remove(index)
            with self._lock:
                # A shed target being retired releases its pins: the
                # sessions fall back to ring placement below — fail-safe
                # for the balancer, no session is ever stranded on a pin
                # to a shard that no longer exists.
                for session_id in [
                    s for s, pin in self._overlay.items() if pin == index
                ]:
                    del self._overlay[session_id]
                on_shard = [
                    s for s, r in self._sessions.items() if r.shard == index
                ]
            for session_id in on_shard:
                target = self._place(session_id)
                try:
                    self._migrate_session(session_id, target)
                except WorkerError:
                    if not handle.alive:
                        # The source died: its remaining sessions were
                        # failed safe by the crash path; stop migrating.
                        break
                    continue  # a target died; its crash is queued — go on
                except Exception:
                    # Capacity (ConfigurationError) or any unexpected
                    # rejection: keep serving, placements restored.
                    self._ring.add(index)
                    raise
                else:
                    moved[session_id] = target
            if handle.alive:
                self._retire_shard_counters(handle)
                handle.stop()
        del self._shards[index]
        return moved

    def _retire_shard_counters(self, handle: _ShardHandle) -> None:
        """Fold a retiring shard's lifetime counters into the baseline.

        Without this, every graceful scale-down silently *shrank* the
        aggregate :meth:`stats` and telemetry — the retired worker's
        ``n_ticks``/``frames_processed``/``events_emitted`` vanished
        with its pipe.  Fetched best-effort: a shard that dies during
        its own retirement interview simply contributes nothing.
        """
        try:
            final = self.stats_of(handle.index)
        except WorkerError:
            return
        base = self._retired_stats
        base.n_ticks += final.n_ticks
        base.frames_processed += final.frames_processed
        base.events_emitted += final.events_emitted
        base.extend_ms(final.tick_ms)
        try:
            self._retired_telemetry.merge(self.telemetry_of(handle.index))
        except WorkerError:
            return

    def add_shard(self) -> int:
        """Spawn one new worker and rebalance the minimal hash slice.

        The new shard joins the ring under a never-reused index, and
        only the sessions whose consistent-hash placement *changed* —
        exactly the keys the new ring points at it — are live-migrated
        onto it (frames and window state intact).  Everything else is
        untouched: that minimality is the point of consistent hashing.

        Returns the new shard's index.
        """
        self._check_open()
        index = self._next_shard_index
        self._spawn_shard(index)
        self._next_shard_index = index + 1
        with self._lock:
            records = list(self._sessions.items())
        for session_id, record in records:
            with self._lock:
                if self._sessions.get(session_id) is not record:
                    continue  # failed or closed since the snapshot
            target = self._place(session_id)
            if target == record.shard:
                continue
            try:
                self._migrate_session(session_id, target)
            except WorkerError:
                # Crash bookkeeping (source or target) already queued the
                # fail-safe events; keep rebalancing the survivors.  A
                # dead new shard has left the ring, so later placements
                # simply stop moving.
                continue
        return index

    def resize(self, target_k: int) -> dict:
        """Live-resize the fleet to ``target_k`` shards (the actuator).

        Applies :meth:`add_shard` / :meth:`remove_shard` until the live
        shard count matches — this is what turns a
        :func:`suggest_shard_count` recommendation into reality without
        a fleet rebuild and without interrupting a single session
        (:class:`~repro.serving.autoscaler.MonitorAutoscaler` runs this
        loop under hysteresis).  Scale-down retires the highest-index
        shards first; indices are never reused.

        Returns a summary dict: ``{"from", "to", "added", "removed",
        "migrated"}`` (``migrated`` counts sessions that changed shard).
        """
        if target_k < 1:
            raise ConfigurationError("target_k must be >= 1")
        self._check_open()
        before = self.n_shards
        with self._lock:
            placement = {s: r.shard for s, r in self._sessions.items()}
        added: list[int] = []
        removed: list[int] = []
        while self.n_shards < target_k:
            added.append(self.add_shard())
        while self.n_shards > target_k:
            victim = max(h.index for h in self._live_shards())
            self.remove_shard(victim)
            removed.append(victim)
        with self._lock:
            migrated = sum(
                1
                for s, r in self._sessions.items()
                if placement.get(s, r.shard) != r.shard
            )
        summary = {
            "from": before,
            "to": self.n_shards,
            "added": added,
            "removed": removed,
            "migrated": migrated,
        }
        self.telemetry.counter("resizes").inc()
        if self.event_store is not None:
            self.event_store.append_marker("resize", summary)
        return summary

    def close(self) -> None:
        """Stop every worker process (graceful ``stop``, then terminate).

        Does **not** drain: call :meth:`drain` first if un-ticked frames
        must still be processed, and :meth:`close_session` for the
        timelines.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._shards.values():
            handle.stop()
        self._shards.clear()

    def __enter__(self) -> "ShardedMonitorService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception as exc:  # noqa: BLE001 - a destructor must not
            # raise, but the failure is still recorded (debug level: at
            # interpreter shutdown even logging may be torn down, hence
            # the inner suppress).
            with contextlib.suppress(Exception):
                logger.debug("close() during __del__ failed: %s", exc)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of live shards (dead workers are excluded)."""
        return len(self._live_shards())

    @property
    def shard_indices(self) -> list[int]:
        """Indices of live shards."""
        return [h.index for h in self._live_shards()]

    def shard_of(self, session_id: str) -> int:
        """Shard index an open session lives on."""
        return self._record(session_id).shard

    def resolve_placement(self, session_id: str | None = None) -> tuple[str, int]:
        """Allocate/validate a session id and compute its shard (no IPC).

        Split from :meth:`open_on_shard` so the asyncio front-end can
        take the target shard's lock *before* the blocking pipe call.
        """
        self._check_open()
        if session_id is None:
            session_id = f"session-{self._next_id:04d}"
            self._next_id += 1
            while session_id in self._sessions or session_id in self.failed_sessions:
                session_id = f"session-{self._next_id:04d}"
                self._next_id += 1
        elif session_id in self._sessions:
            raise ConfigurationError(f"session {session_id!r} is already open")
        return session_id, self._place(session_id)

    def open_on_shard(
        self, session_id: str, shard: int, record_timeline: bool = True
    ) -> str:
        """Open a resolved placement on its shard (the IPC half)."""
        handle = self._shards.get(shard)
        if handle is None or not handle.alive:
            raise WorkerError(f"shard {shard} is not live")
        # The global opening order doubles as the session's route id on
        # the shm rings, so it is allocated *before* the open request and
        # shipped with it (a failed open just burns a counter value).
        order = next(self._order)
        try:
            reply = handle.request(
                Request(
                    "open",
                    session_id=session_id,
                    record_timeline=record_timeline,
                    route=order if handle.frame_ring is not None else None,
                ),
                self.request_timeout_s,
            )
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise
        raise_remote(reply)
        with self._lock:  # _fail_shard may iterate from another thread
            self._sessions[session_id] = _SessionRecord(
                shard=shard,
                order=order,
                record_timeline=record_timeline,
            )
            if handle.frame_ring is not None:
                handle.routes[order] = session_id
        # An explicit re-open of a crash-failed id starts a new life for
        # it (the gateway's crash recovery does exactly this); the stale
        # failure record must not shadow the new session.
        self.failed_sessions.pop(session_id, None)
        return session_id

    # ------------------------------------------------------------------
    # Session lifecycle (MonitorService-mirroring façade)
    # ------------------------------------------------------------------
    @property
    def n_open_sessions(self) -> int:
        """Number of currently open (non-failed) sessions."""
        return len(self._sessions)

    @property
    def session_ids(self) -> list[str]:
        """Open session ids in global opening order."""
        with self._lock:  # snapshot; opens/crashes may run concurrently
            return list(self._sessions)

    @property
    def has_pending(self) -> bool:
        """True while any live shard may still have un-ticked frames."""
        return any(h.maybe_pending for h in self._live_shards())

    def open_session(
        self, session_id: str | None = None, record_timeline: bool = True
    ) -> str:
        """Place a session on its consistent-hash shard and open it there.

        Semantics mirror :meth:`MonitorService.open_session`; capacity is
        per shard, so a full target shard raises ``ConfigurationError``
        even when other shards have room (placement is by hash, not by
        load — see ``docs/serving.md`` for sizing guidance).
        """
        session_id, shard = self.resolve_placement(session_id)
        return self.open_on_shard(session_id, shard, record_timeline)

    def feed(self, session_id: str, frames: np.ndarray) -> None:
        """Enqueue kinematics frames on the session's shard.

        Under the shm data plane this is a single copy into the shard's
        frame ring — **no reply round trip**.  Back-pressure replaces the
        ack: a full ring blocks until the worker frees space (bounded by
        ``request_timeout_s`` when set).  Shape and width are validated
        here, synchronously, against the snapshot's trained width;
        anything the worker itself rejects later surfaces on the next
        :meth:`tick`/:meth:`drain` as that session's fail-safe terminal
        event.

        Raises :class:`~repro.errors.WorkerError` if the session was lost
        to a worker crash (failed sessions are never silently re-opened),
        :class:`~repro.errors.ShapeError` on a frame-width mismatch.
        """
        self._check_open()
        record = self._record(session_id)
        handle = self._shards[record.shard]
        if handle.frame_ring is None:  # data_plane="pipe": ack'd round trip
            try:
                reply = handle.request(
                    Request(
                        "feed", session_id=session_id, frames=np.asarray(frames)
                    ),
                    self.request_timeout_s,
                )
            except WorkerError as exc:
                self._queue_crash(handle, str(exc))
                raise WorkerError(
                    f"session {session_id!r} lost: {exc}"
                ) from exc
            raise_remote(reply)
            return
        frames = np.asarray(frames, dtype=float)
        if frames.ndim == 1:
            frames = frames[None, :]
        if frames.ndim != 2:
            raise ShapeError(
                f"frames must be (n, n_features), got shape {frames.shape}"
            )
        if frames.shape[0] == 0:
            return
        if self._n_features is not None and frames.shape[1] != self._n_features:
            raise ShapeError(
                f"monitor was trained for {self._n_features} kinematics "
                f"features, got frames with {frames.shape[1]}"
            )
        if not handle.process.is_alive():
            reason = (
                f"shard {handle.index} worker died "
                f"(exitcode {handle.process.exitcode})"
            )
            self._queue_crash(handle, reason)
            raise WorkerError(f"session {session_id!r} lost: {reason}")
        try:
            write_frames_blocking(
                handle.frame_ring,
                record.order,
                frames,
                alive=handle.process.is_alive,
                timeout_s=self.request_timeout_s,
                who=f"shard {handle.index}",
            )
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise WorkerError(f"session {session_id!r} lost: {exc}") from exc
        handle.maybe_pending = True

    def tick_shard(self, index: int) -> list[SessionEvent]:
        """Advance one shard by one frame per pending session.

        Returns that shard's events (session opening order) plus any
        queued crash events; a crash of *this* shard is converted to its
        sessions' terminal events rather than an exception, so callers
        can keep ticking the survivors.
        """
        pairs = self._flush_undelivered() + self._reap_dead()
        handle = self._shards.get(index)
        if handle is not None and handle.alive:
            try:
                reply = handle.request(Request("tick"), self.request_timeout_s)
                raise_remote(reply)
                for tick_events in self._collect_ticks(handle, reply.value):
                    pairs.extend(self._account_events(tick_events))
            except WorkerError as exc:
                pairs.extend(self._fail_shard(handle, str(exc)))
        pairs.extend(self._ingest_failures())
        pairs.sort(key=lambda p: p[0])
        return [event for _, event in pairs]

    def tick(self) -> list[SessionEvent]:
        """Advance every live shard by one frame per pending session.

        Requests are broadcast before replies are collected, so shards
        compute their ticks concurrently; events merge in global session
        opening order — the same order one :class:`MonitorService` over
        the same sessions would produce.  Dead shards surface as
        terminal per-session events, never as an exception.
        """
        pairs = self._flush_undelivered() + self._reap_dead()
        targets = [h for h in self._live_shards() if h.maybe_pending]
        sent: list[_ShardHandle] = []
        for handle in targets:
            try:
                handle.send(Request("tick"))
                sent.append(handle)
            except WorkerError as exc:
                pairs.extend(self._fail_shard(handle, str(exc)))
        for handle in sent:
            try:
                reply = handle.recv(self.request_timeout_s)
                raise_remote(reply)
                for tick_events in self._collect_ticks(handle, reply.value):
                    pairs.extend(self._account_events(tick_events))
            except WorkerError as exc:
                pairs.extend(self._fail_shard(handle, str(exc)))
        pairs.extend(self._ingest_failures())
        pairs.sort(key=lambda p: p[0])
        return [event for _, event in pairs]

    def drain(self, collect: bool = True) -> list[SessionEvent]:
        """Tick every shard until no live shard has pending frames.

        Each worker drains its own backlog in a single round trip, so K
        shards drain concurrently.  With ``collect=True`` the per-tick
        event lists are interleaved tick-by-tick across shards (matching
        a single service's drain order); with ``collect=False`` only
        crash events (if any) are returned — those are never dropped.
        """
        pairs = self._flush_undelivered() + self._reap_dead()
        tick_lists: dict[int, list[tuple[int, SessionEvent]]] = {}
        targets = [h for h in self._live_shards() if h.maybe_pending]
        sent = []
        for handle in targets:
            try:
                handle.send(Request("drain", collect=collect))
                sent.append(handle)
            except WorkerError as exc:
                pairs.extend(self._fail_shard(handle, str(exc)))
        for handle in sent:
            try:
                reply = handle.recv(self.request_timeout_s)
                raise_remote(reply)
                n_ring, overflow, progress = reply.value
                ticks = self._collect_ticks(handle, (n_ring, overflow))
                for k, tick_events in enumerate(ticks):
                    tick_lists.setdefault(k, []).extend(
                        self._account_events(tick_events)
                    )
                # Authoritative per-session frame counts from the worker:
                # keeps crash-event frame indices exact even when events
                # were not collected (collect=False returns no ticks).
                for session_id, frames_done in progress.items():
                    record = self._sessions.get(session_id)
                    if record is not None:
                        record.events_seen = frames_done
            except WorkerError as exc:
                pairs.extend(self._fail_shard(handle, str(exc)))
        pairs.extend(self._ingest_failures())
        events = [event for _, event in sorted(pairs, key=lambda p: p[0])]
        for k in sorted(tick_lists):
            events.extend(
                event for _, event in sorted(tick_lists[k], key=lambda p: p[0])
            )
        return events

    def close_session(self, session_id: str) -> SessionResult:
        """Free the session's slot on its shard; return its timeline.

        A session lost to a crash raises :class:`WorkerError` naming the
        failure (its id stays in :attr:`failed_sessions`).
        """
        self._check_open()
        record = self._record(session_id)
        handle = self._shards[record.shard]
        try:
            reply = handle.request(
                Request("close", session_id=session_id), self.request_timeout_s
            )
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise WorkerError(f"session {session_id!r} lost: {exc}") from exc
        raise_remote(reply)
        with self._lock:
            del self._sessions[session_id]
            self._overlay.pop(session_id, None)
            handle.routes.pop(record.order, None)
        return reply.value

    # ------------------------------------------------------------------
    # Session export / import (gateway resume + external checkpointing)
    # ------------------------------------------------------------------
    def export_session(self, session_id: str) -> bytes:
        """Remove a live session from the fleet, returning its state.

        The returned bytes are the :func:`session_to_bytes` archive —
        pending frames and window ring state included — so a later
        :meth:`import_session` resumes the session bit-identically, on
        this fleet or another one with the same monitor snapshot.  This
        is :meth:`_migrate_session`'s export half exposed as a public
        primitive; the gateway parks disconnected sessions with it.

        Raises :class:`~repro.errors.WorkerError` if the session was
        lost to a crash or its worker dies mid-export.
        """
        self._check_open()
        record = self._record(session_id)
        handle = self._shards[record.shard]
        try:
            reply = handle.request(
                Request("migrate_out", session_id=session_id),
                self.request_timeout_s,
            )
            raise_remote(reply)
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise WorkerError(
                f"session {session_id!r} lost mid-export: {exc}"
            ) from exc
        with self._lock:
            self._sessions.pop(session_id, None)
            handle.routes.pop(record.order, None)
        return reply.value

    def resolve_import(self, state: bytes) -> tuple[str, int]:
        """Validate an exported archive and compute its shard (no IPC).

        The session keeps the id embedded in its snapshot, so placement
        is by that id's hash — an export/import round trip lands a
        session exactly where a fresh open of the same id would.  Split
        from :meth:`import_on_shard` for the same reason as
        :meth:`resolve_placement`: the asyncio front-end takes the
        target shard's lock before the blocking pipe call.

        Raises :class:`~repro.errors.ConfigurationError` if the archive
        is foreign-versioned or the id is already open.
        """
        self._check_open()
        session_id = session_snapshot_id(state)
        if session_id in self._sessions:
            raise ConfigurationError(f"session {session_id!r} is already open")
        # _place, not the raw ring: a shed session that was parked for
        # resume re-imports onto its pinned shard, keeping the
        # balancer's placement stable across disconnect/reconnect.
        return session_id, self._place(session_id)

    def import_on_shard(
        self, state: bytes, session_id: str, shard: int,
        record_timeline: bool = True,
    ) -> str:
        """Land a resolved import on its shard (the IPC half)."""
        handle = self._shards.get(shard)
        if handle is None or not handle.alive:
            raise WorkerError(f"shard {shard} is not live")
        if self._shard_occupancy(shard) >= self.max_sessions_per_shard:
            raise ConfigurationError(
                f"shard {shard} is full "
                f"({self.max_sessions_per_shard} slots); cannot import "
                f"session {session_id!r} onto it"
            )
        order = next(self._order)
        try:
            reply = handle.request(
                Request(
                    "migrate_in",
                    state=state,
                    route=order if handle.frame_ring is not None else None,
                ),
                self.request_timeout_s,
            )
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise WorkerError(
                f"session {session_id!r} lost mid-import: {exc}"
            ) from exc
        raise_remote(reply)
        with self._lock:
            self._sessions[session_id] = _SessionRecord(
                shard=shard,
                order=order,
                record_timeline=record_timeline,
            )
            if handle.frame_ring is not None:
                handle.routes[order] = session_id
        # An import that re-opens a previously crash-failed id clears the
        # failure record — the imported state supersedes it.
        self.failed_sessions.pop(session_id, None)
        return session_id

    def import_session(
        self, state: bytes, record_timeline: bool = True
    ) -> str:
        """Re-admit an exported session; returns its (unchanged) id.

        The inverse of :meth:`export_session`: the session resumes on
        its hash-placed shard with pending frames and window state
        intact, so subsequent ticks are bit-identical to a never-
        exported run.
        """
        session_id, shard = self.resolve_import(state)
        return self.import_on_shard(state, session_id, shard, record_timeline)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_maybe_pending(self, index: int) -> bool:
        """True while shard ``index`` is live and may have pending frames."""
        handle = self._shards.get(index)
        return handle is not None and handle.alive and handle.maybe_pending

    def take_undelivered_events(self) -> list[SessionEvent]:
        """Drain events queued outside a tick (crashes, shard removal).

        Crashes detected outside a tick (e.g. by a failing :meth:`feed`)
        queue their sessions' terminal events, and :meth:`remove_shard`
        queues the events of its final drain; both normally deliver on
        the next :meth:`tick`/:meth:`drain`.  Callers that cannot
        guarantee a further tick — the asyncio front-end after a
        ``WorkerError``, or its idle poll — use this to claim them
        immediately instead; events are only ever delivered once, by
        whichever path gets there first.

        Also runs the no-IPC liveness poll, so a worker that dies while
        its shard is idle (nothing to tick, nothing talking to it) still
        surfaces its sessions' fail-safe terminal events here.
        """
        pairs = (
            self._flush_undelivered() + self._reap_dead() + self._ingest_failures()
        )
        pairs.sort(key=lambda p: p[0])
        return [event for _, event in pairs]

    def stats_of(self, index: int) -> ServiceStats:
        """One live shard's :class:`ServiceStats` (one IPC exchange).

        The single-shard primitive behind :meth:`shard_stats`, split out
        so callers that serialise pipe access per shard — the asyncio
        front-end's :meth:`AsyncShardedMonitor.shard_stats`, and the
        remote gateway's ``gateway_stats()`` — can poll one worker under
        that shard's lock without touching the others' pipes.
        """
        handle = self._shards.get(index)
        if handle is None or not handle.alive:
            raise WorkerError(f"shard {index} is not live")
        try:
            reply = handle.request(Request("stats"), self.request_timeout_s)
            raise_remote(reply)
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise
        return reply.value

    def shard_stats(self) -> dict[int, ServiceStats]:
        """Per-live-shard :class:`ServiceStats` (one IPC each)."""
        out: dict[int, ServiceStats] = {}
        for handle in self._live_shards():
            try:
                out[handle.index] = self.stats_of(handle.index)
            except WorkerError:
                continue  # crash queued by stats_of; skip the dead shard
        return out

    def stats(self) -> ServiceStats:
        """Aggregate stats: summed counters, merged tick-latency samples.

        Shards tick concurrently, so summed ``n_ticks`` counts worker
        ticks, not wall-clock rounds; percentiles describe the per-shard
        tick latency distribution.  Counters include every shard this
        fleet ever retired (see :meth:`_retire_shard_counters`), so the
        aggregate is monotonic across resizes, and ``uptime_s`` is the
        fleet's own lifetime, not the youngest worker's.
        """
        merged = ServiceStats()
        merged.n_ticks = self._retired_stats.n_ticks
        merged.frames_processed = self._retired_stats.frames_processed
        merged.events_emitted = self._retired_stats.events_emitted
        merged.extend_ms(self._retired_stats.tick_ms)
        merged._started = self._started
        for stats in self.shard_stats().values():
            merged.n_ticks += stats.n_ticks
            merged.frames_processed += stats.frames_processed
            merged.events_emitted += stats.events_emitted
            merged.extend_ms(stats.tick_ms)
        return merged

    @property
    def uptime_s(self) -> float:
        """Monotonic seconds since this fleet was constructed."""
        return time.monotonic() - self._started

    def telemetry_of(self, index: int) -> dict:
        """One live shard's telemetry snapshot (one IPC exchange).

        The per-shard primitive behind :meth:`telemetry_snapshot`, split
        out like :meth:`stats_of` so lock-per-shard callers (the asyncio
        front-end, the gateway) can poll one worker at a time.
        """
        handle = self._shards.get(index)
        if handle is None or not handle.alive:
            raise WorkerError(f"shard {index} is not live")
        try:
            reply = handle.request(Request("telemetry"), self.request_timeout_s)
            raise_remote(reply)
        except WorkerError as exc:
            self._queue_crash(handle, str(exc))
            raise
        return reply.value

    def router_telemetry_snapshot(self) -> dict:
        """The no-IPC half of :meth:`telemetry_snapshot`.

        Retired shards' registries plus the router's own incident
        counters — everything that does not require talking to a
        worker, split out so lock-per-shard callers (the asyncio
        front-end) can combine it with per-shard polls.
        """
        merged = TelemetryRegistry()
        merged.merge(self._retired_telemetry.snapshot())
        merged.merge(self.telemetry.snapshot())
        return merged.snapshot()

    def telemetry_snapshot(self) -> dict:
        """Fleet-wide telemetry: every live shard + retired + router.

        Merges each worker's registry (event counts, alert-latency
        histograms), the registries of shards retired by resizes, and
        the router's own incident counters (``failsafe_events``,
        ``events_delivered``, ``resizes``) into one
        :meth:`~repro.serving.telemetry.TelemetryRegistry.snapshot`
        dict.  Cumulative across resizes by construction.
        """
        merged = TelemetryRegistry()
        merged.merge(self.router_telemetry_snapshot())
        for handle in self._live_shards():
            try:
                merged.merge(self.telemetry_of(handle.index))
            except WorkerError:
                continue  # crash queued by telemetry_of; skip the dead shard
        return merged.snapshot()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "service is closed; no further sessions can be served"
            )

    def _record(self, session_id: str) -> _SessionRecord:
        record = self._sessions.get(session_id)
        if record is None:
            reason = self.failed_sessions.get(session_id)
            if reason is not None:
                raise WorkerError(f"session {session_id!r} failed: {reason}")
            raise DatasetError(f"no open session {session_id!r}")
        return record

    def _account_events(
        self, events: list[SessionEvent]
    ) -> list[tuple[int, SessionEvent]]:
        pairs = []
        store = self.event_store
        for event in events:
            record = self._sessions.get(event.session_id)
            if record is None:  # closed concurrently; still deliver
                pairs.append((-1, event))
                if store is not None:
                    store.append(event, shard=-1)
                continue
            record.events_seen += 1
            pairs.append((record.order, event))
            if store is not None:
                store.append(event, shard=record.shard)
        if events:
            self.telemetry.counter("events_delivered").inc(len(events))
        return pairs

    def _queue_crash(self, handle: _ShardHandle, reason: str) -> None:
        """Fail a shard outside a tick; its events deliver on the next one."""
        pairs = self._fail_shard(handle, reason)
        if pairs:
            with self._lock:
                self._undelivered.extend(pairs)

    # ------------------------------------------------------------------
    # Shm data plane: event-ring decode and deferred ingest failures
    # ------------------------------------------------------------------
    def _collect_ticks(
        self, handle: _ShardHandle, value: tuple
    ) -> list[list[SessionEvent]]:
        """Materialise one tick/drain reply's event batches in order.

        ``value`` is the worker's ``(n_ring_batches, overflow_ticks)``:
        the first ``n_ring_batches`` ticks are read off the shard's event
        ring, the overflow ticks (ring momentarily full, or the pipe-only
        data plane where every tick overflows) ride the reply itself —
        chronological order is ring batches then overflow.
        """
        n_ring, overflow = value
        ticks: list[list[SessionEvent]] = []
        for _ in range(n_ring):
            batch = (
                handle.event_ring.read_events()
                if handle.event_ring is not None
                else None
            )
            if batch is None:
                raise WorkerError(
                    f"shard {handle.index} event ring out of sync: "
                    f"announced batch missing"
                )
            ticks.append(self._decode_event_batch(handle, batch))
        ticks.extend(overflow)
        return ticks

    def _decode_event_batch(
        self, handle: _ShardHandle, batch: np.ndarray
    ) -> list[SessionEvent]:
        """Rebuild :class:`SessionEvent` objects from one ring record."""
        events = []
        for row in batch:
            session_id = handle.routes.get(int(row["route"]))
            if session_id is None:  # pragma: no cover - protocol guard
                logger.warning(
                    "shard %d emitted an event for unknown route %d",
                    handle.index,
                    int(row["route"]),
                )
                continue
            events.append(
                SessionEvent(
                    session_id=session_id,
                    frame_index=int(row["frame"]),
                    gesture=int(row["gesture"]),
                    score=float(row["score"]),
                    flag=bool(int(row["flags"]) & 1),
                    latency_us=float(row["latency_us"]),
                )
            )
        return events

    def _ingest_failures(self) -> list[tuple[int, SessionEvent]]:
        """Convert stashed frame-ring rejections to fail-safe events.

        The asynchronous data plane has no feed reply to raise through:
        a frame block the worker rejected (after the router's own width
        check — so: a true anomaly) arrives as ``(route, message)`` on a
        later reply, and this turns each one into the same terminal
        treatment a crash gets — ``failed_sessions`` entry plus a
        ``flag=True`` event naming the cause.
        """
        pairs: list[tuple[int, SessionEvent]] = []
        for handle in self._shards.values():
            if not handle.pending_ingest:
                continue
            stashed, handle.pending_ingest = handle.pending_ingest, []
            for route, message in stashed:
                session_id = handle.routes.pop(route, None)
                if session_id is None:
                    continue  # already failed or closed
                reason = (
                    f"shard {handle.index} rejected frames for session "
                    f"{session_id!r}: {message}"
                )
                with self._lock:
                    record = self._sessions.pop(session_id, None)
                    if record is None:
                        continue
                    self._overlay.pop(session_id, None)
                    self.failed_sessions[session_id] = reason
                    failure_event = SessionEvent(
                        session_id=session_id,
                        frame_index=record.events_seen,
                        gesture=0,
                        score=0.0,
                        flag=True,
                        error=reason,
                    )
                    pairs.append((record.order, failure_event))
                    self.telemetry.counter("failsafe_events").inc()
                    if self.event_store is not None:
                        self.event_store.append(
                            failure_event, shard=handle.index
                        )
        return pairs
