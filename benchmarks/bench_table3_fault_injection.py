"""Benchmark: regenerate paper Table III (fault-injection campaign).

Sweeps grasper-angle / Cartesian-deviation / duration cells on simulated
Block Transfer demonstrations and prints per-cell block-drop / drop-off
counts.  The dose-response shape must match the paper: no failures for
low angles with short injections, ~100% drop-off failures for low angles
with long injections, block drops rising with the injected angle.
"""

from conftest import run_once

from repro.experiments import table3


def test_table3_fault_injection(benchmark, scale):
    rows, campaign = run_once(benchmark, lambda: table3.run(scale=scale, seed=0))
    print()
    print(table3.render(rows))

    # Shape assertions (who wins, where the crossover falls).
    low_short = [
        r for r in rows if r.grasper_rad[1] <= 0.8 and r.grasper_window[1] <= 0.7
    ]
    assert sum(r.block_drops + r.dropoff_failures for r in low_short) == 0
    low_long = [
        r for r in rows if r.grasper_rad[1] <= 0.8 and r.grasper_window[1] > 0.7
    ]
    n_low_long = sum(r.n_injections for r in low_long)
    dropoffs = sum(r.dropoff_failures for r in low_long)
    assert dropoffs / n_low_long >= 0.5
    high = [r for r in rows if r.grasper_rad[0] >= 1.1]
    assert sum(r.block_drops for r in high) / sum(r.n_injections for r in high) > 0.7
