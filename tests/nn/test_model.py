"""Tests for repro.nn.model (Sequential) and callbacks."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, NotFittedError, ShapeError


def separable_binary(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    return x, y


class TestSequentialBasics:
    def test_rejects_empty_layer_list(self):
        with pytest.raises(ConfigurationError):
            nn.Sequential([])

    def test_fit_requires_compile(self):
        model = nn.Sequential([nn.Dense(2)])
        with pytest.raises(NotFittedError):
            model.fit(np.zeros((4, 3)), np.zeros(4))

    def test_fit_rejects_mismatched_rows(self):
        model = nn.Sequential([nn.Dense(2)])
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam())
        with pytest.raises(ShapeError):
            model.fit(np.zeros((4, 3)), np.zeros(5))

    def test_n_parameters(self):
        model = nn.Sequential([nn.Dense(5), nn.ReLU(), nn.Dense(2)])
        model.build((3,))
        assert model.n_parameters() == (3 * 5 + 5) + (5 * 2 + 2)

    def test_summary_contains_layers(self):
        model = nn.Sequential([nn.Dense(5), nn.ReLU()])
        model.build((3,))
        text = model.summary()
        assert "Dense" in text and "ReLU" in text

    def test_deterministic_given_seed(self):
        x, y = separable_binary()

        def train():
            model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(2)], seed=7)
            model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
            model.fit(x, y, epochs=3, batch_size=32)
            return model.predict_proba(x)

        assert np.allclose(train(), train())


class TestTraining:
    def test_learns_separable_binary(self):
        x, y = separable_binary()
        model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        model.fit(x, y, epochs=15, batch_size=32)
        assert (model.predict(x) == y).mean() > 0.95

    def test_loss_decreases(self):
        x, y = separable_binary()
        model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        history = model.fit(x, y, epochs=8, batch_size=32)
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    def test_binary_head_predictions(self):
        x, y = separable_binary()
        model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(1)], seed=0)
        model.compile(nn.SigmoidBinaryCrossEntropy(), nn.Adam(1e-2))
        model.fit(x, y, epochs=15, batch_size=32)
        preds = model.predict(x)
        assert set(np.unique(preds)) <= {0, 1}
        assert (preds == y).mean() > 0.95

    def test_validation_loss_recorded(self):
        x, y = separable_binary()
        model = nn.Sequential([nn.Dense(4), nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        history = model.fit(
            x[:200], y[:200], epochs=3, validation_data=(x[200:], y[200:])
        )
        assert all(np.isfinite(v) for v in history.series("val_loss"))


class TestCallbacks:
    def test_early_stopping_stops(self):
        x, y = separable_binary()
        model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        stopper = nn.EarlyStopping(monitor="loss", patience=1, min_delta=10.0)
        history = model.fit(x, y, epochs=50, callbacks=[stopper])
        # min_delta of 10 is never achieved, so training stops after
        # 1 + patience epochs.
        assert len(history.epochs) <= 3

    def test_early_stopping_restores_best(self):
        x, y = separable_binary()
        model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        stopper = nn.EarlyStopping(monitor="val_loss", patience=2)
        model.fit(
            x[:200],
            y[:200],
            epochs=10,
            validation_data=(x[200:], y[200:]),
            callbacks=[stopper],
        )
        restored = model.evaluate(x[200:], y[200:])
        assert restored == pytest.approx(stopper.best, rel=0.15)

    def test_lr_scheduler_applies(self):
        x, y = separable_binary(80)
        model = nn.Sequential([nn.Dense(2)], seed=0)
        optimizer = nn.Adam(0.1)
        model.compile(nn.SoftmaxCrossEntropy(), optimizer)
        schedule = nn.StepDecay(0.1, factor=0.5, every=1)
        history = model.fit(
            x, y, epochs=3, callbacks=[nn.LearningRateScheduler(schedule)]
        )
        assert history.series("learning_rate") == pytest.approx([0.1, 0.05, 0.025])

    def test_history_series_missing_key(self):
        history = nn.History()
        history.epochs = [{"loss": 1.0}]
        assert np.isnan(history.series("val_loss")[0])
