"""A small numpy deep-learning framework (the paper's Keras/TF substitute).

Implements exactly the model families the paper trains: stacked LSTMs for
gesture classification and 1D-CNN / LSTM binary classifiers for erroneous
gesture detection, with Adam, step-decay learning-rate schedules, batch
normalisation, dropout and early stopping (paper Section III).

Example
-------
>>> from repro import nn
>>> model = nn.Sequential(
...     [nn.LSTM(32), nn.Dense(16), nn.ReLU(), nn.Dense(3)], seed=0
... )
>>> model.compile(loss=nn.SoftmaxCrossEntropy(), optimizer=nn.Adam(1e-3))
"""

from .callbacks import Callback, EarlyStopping, History, LearningRateScheduler
from .initializers import glorot_uniform, orthogonal, zeros_init
from .layers import (
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1D,
    LSTM,
    Layer,
    MaxPool1D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import Loss, SigmoidBinaryCrossEntropy, SoftmaxCrossEntropy
from .model import Sequential
from .optimizers import SGD, Adam, Optimizer
from .preprocessing import StandardScaler, one_hot, train_val_split
from .schedules import ConstantSchedule, StepDecay
from .serialization import (
    load_model,
    load_model_bytes,
    save_model,
    save_model_bytes,
)

# Imported last: the backends package consumes the layer/model modules
# above, and binding it here makes ``nn.backends`` reachable without a
# separate import.
from . import backends  # noqa: E402

__all__ = [
    "Adam",
    "BatchNorm",
    "Callback",
    "ConstantSchedule",
    "Conv1D",
    "Dense",
    "Dropout",
    "EarlyStopping",
    "Flatten",
    "GlobalAveragePool1D",
    "History",
    "LSTM",
    "Layer",
    "LearningRateScheduler",
    "Loss",
    "MaxPool1D",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SigmoidBinaryCrossEntropy",
    "SoftmaxCrossEntropy",
    "StandardScaler",
    "StepDecay",
    "Tanh",
    "glorot_uniform",
    "load_model",
    "load_model_bytes",
    "one_hot",
    "orthogonal",
    "save_model",
    "save_model_bytes",
    "train_val_split",
    "zeros_init",
]
