"""Calibration run: full-scale Suturing fold, ctx vs baseline.

Developer utility (not part of the library): trains one LOSO fold at the
paper's data scale and prints per-gesture and overall AUC/F1 for the
context-specific library and the non-context baseline.
"""

import time

import numpy as np

from repro.config import TrainingConfig, WindowConfig
from repro.core import BaselineMonitor, ErrorClassifierLibrary, GestureClassifier
from repro.core.error_classifiers import ErrorClassifierConfig
from repro.core.gesture_classifier import GestureClassifierConfig
from repro.eval import auc_score, f1_score
from repro.gestures.vocabulary import Gesture
from repro.jigsaws import make_suturing_dataset

t0 = time.time()
ds = make_suturing_dataset(rng=0)  # full 39 demos
train, test = ds.split_by_trials(2)
print(f"train {len(train)} / test {len(test)} demos; gen {time.time()-t0:.0f}s", flush=True)

gcfg = GestureClassifierConfig(
    lstm_units=(48, 24),
    dense_units=24,
    training=TrainingConfig(learning_rate=1e-3, max_epochs=10, batch_size=128),
    max_train_windows=12000,
)
gc = GestureClassifier(gcfg, seed=0)
t1 = time.time()
gc.fit(train)
print(f"gesture acc={gc.accuracy(test):.3f} [paper 0.845] ({time.time()-t1:.0f}s)", flush=True)

w = WindowConfig(5, 1)
tr_data, te_data = train.windows(w), test.windows(w)
ecfg = ErrorClassifierConfig(
    architecture="conv",
    hidden=(24, 12),
    dense_units=12,
    training=TrainingConfig(learning_rate=1e-3, max_epochs=20, batch_size=128),
    max_train_windows=8000,
)
t2 = time.time()
lib = ErrorClassifierLibrary(ecfg, seed=1)
lib.fit(tr_data)
print(f"library ({time.time()-t2:.0f}s): {[str(g) for g in lib.gestures()]}", flush=True)

bcfg = ErrorClassifierConfig(
    architecture="conv",
    hidden=(24, 12),
    dense_units=12,
    training=TrainingConfig(learning_rate=1e-3, max_epochs=20, batch_size=128),
    max_train_windows=24000,
)
t3 = time.time()
base = BaselineMonitor(bcfg, seed=2)
base.fit(tr_data)
print(f"baseline ({time.time()-t3:.0f}s)", flush=True)

probs_base = base.predict_proba(te_data.x)
probs_ctx = np.zeros(te_data.n_windows)
for g in np.unique(te_data.gesture):
    gest = Gesture.from_class_index(int(g))
    m = te_data.gesture == g
    probs_ctx[m] = lib.predict_proba(gest, te_data.x[m])
    y = te_data.unsafe[m]
    if 0 < y.sum() < m.sum():
        a_ctx = auc_score(y, probs_ctx[m]) if gest in lib.classifiers else float("nan")
        print(
            f"  {gest}: n={int(m.sum()):6d} err%={100*y.mean():4.1f} "
            f"ctx={a_ctx:.3f} base={auc_score(y, probs_base[m]):.3f}",
            flush=True,
        )
y = te_data.unsafe
print(
    f"ctx  AUC={auc_score(y, probs_ctx):.3f} F1={f1_score(y, (probs_ctx >= 0.5).astype(int)):.3f} "
    "[paper 0.81 / 0.76]"
)
print(
    f"base AUC={auc_score(y, probs_base):.3f} F1={f1_score(y, (probs_base >= 0.5).astype(int)):.3f} "
    "[paper 0.71 / 0.72]"
)
print(f"total {time.time()-t0:.0f}s")
