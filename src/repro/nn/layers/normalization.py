"""Batch normalisation.

The paper uses batch-norm layers "to improve the learning process"
(Section III).  This implementation normalises over the batch axis (and
the time axis for 3-D sequence input) per feature channel, with learned
scale/shift and running statistics for inference.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, ShapeError
from .base import Layer


class BatchNorm(Layer):
    """Per-channel batch normalisation for 2-D or 3-D input.

    For ``(batch, features)`` input statistics are computed over the batch
    axis; for ``(batch, time, channels)`` over batch and time jointly.
    During inference an exponential moving average of the training
    statistics is used.
    """

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if epsilon <= 0.0:
            raise ConfigurationError("epsilon must be positive")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.running_mean: np.ndarray | None = None
        self.running_var: np.ndarray | None = None
        self._cache: dict[str, np.ndarray] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        del rng
        if len(input_shape) not in (1, 2):
            raise ShapeError(
                "BatchNorm expects (features,) or (time, channels) input shape, "
                f"got {input_shape}"
            )
        channels = input_shape[-1]
        self.params = {"gamma": np.ones(channels), "beta": np.zeros(channels)}
        self.grads = {key: np.zeros_like(val) for key, val in self.params.items()}
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._input_shape = tuple(input_shape)
        self._output_shape = tuple(input_shape)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = np.asarray(x, dtype=float)
        if x.ndim not in (2, 3):
            raise ShapeError(f"BatchNorm input must be 2-D or 3-D, got {x.shape}")
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            assert self.running_mean is not None and self.running_var is not None
            self.running_mean[...] = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            )
            self.running_var[...] = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            )
        else:
            assert self.running_mean is not None and self.running_var is not None
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        out = self.params["gamma"] * x_hat + self.params["beta"]
        if training:
            self._cache = {
                "x_hat": x_hat,
                "inv_std": inv_std,
                "n": np.array([int(np.prod([x.shape[a] for a in axes]))]),
            }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        n = float(self._cache["n"][0])
        grad_output = np.asarray(grad_output, dtype=float)
        axes = tuple(range(grad_output.ndim - 1))

        self.grads["gamma"][...] = (grad_output * x_hat).sum(axis=axes)
        self.grads["beta"][...] = grad_output.sum(axis=axes)

        d_xhat = grad_output * self.params["gamma"]
        # Standard batch-norm backward, vectorised over channels.
        grad_input = (
            inv_std
            / n
            * (
                n * d_xhat
                - d_xhat.sum(axis=axes)
                - x_hat * (d_xhat * x_hat).sum(axis=axes)
            )
        )
        self._cache = None
        return grad_input

    def get_config(self) -> dict:
        return {"momentum": self.momentum, "epsilon": self.epsilon}
