"""Virtual top-down camera for the simulated dry-lab scene.

The paper's simulator logs video frames at 30 fps alongside kinematics so
that failures can be labeled automatically with vision techniques
(Section IV-B).  This camera renders small RGB frames of the workspace:
table background, receptacle ring, the coloured block and the grasper
tips.  The renderer is intentionally simple — what matters is that the
vision-based labeler (:mod:`repro.vision`) sees the same observable
events (block moving, disappearing from its rest position, landing in or
out of the receptacle) that the paper's marker-based detector used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .workspace import Workspace

#: RGB colours (0..1) of scene elements.
TABLE_COLOR = np.array([0.35, 0.35, 0.38])
BLOCK_COLOR = np.array([0.95, 0.15, 0.15])
RECEPTACLE_COLOR = np.array([0.15, 0.25, 0.85])
GRASPER_COLOR = np.array([0.85, 0.85, 0.85])


@dataclass(frozen=True)
class CameraIntrinsics:
    """Image geometry of the virtual camera."""

    width_px: int = 64
    height_px: int = 48
    frame_rate_hz: float = 30.0

    def __post_init__(self) -> None:
        if self.width_px < 8 or self.height_px < 8:
            raise ConfigurationError("camera resolution must be at least 8x8")
        if self.frame_rate_hz <= 0:
            raise ConfigurationError("frame_rate_hz must be positive")


class VirtualCamera:
    """Renders top-down frames of a :class:`Workspace`.

    The camera looks straight down: world (x, y) maps linearly onto image
    columns/rows; z only affects the apparent size of the block slightly
    (objects closer to the camera render marginally larger), enough for
    SSIM to notice pick-up events.
    """

    def __init__(
        self,
        workspace_extent_mm: float,
        intrinsics: CameraIntrinsics | None = None,
    ) -> None:
        if workspace_extent_mm <= 0:
            raise ConfigurationError("workspace extent must be positive")
        self.extent_mm = float(workspace_extent_mm)
        self.intrinsics = intrinsics or CameraIntrinsics()

    # ------------------------------------------------------------------
    def world_to_pixel(self, point: np.ndarray) -> tuple[int, int]:
        """Project a world point to (row, col) pixel coordinates."""
        point = np.asarray(point, dtype=float)
        width, height = self.intrinsics.width_px, self.intrinsics.height_px
        col = (point[0] + self.extent_mm) / (2.0 * self.extent_mm) * (width - 1)
        row = (point[1] + self.extent_mm) / (2.0 * self.extent_mm) * (height - 1)
        return int(np.clip(round(row), 0, height - 1)), int(
            np.clip(round(col), 0, width - 1)
        )

    def mm_to_px(self, length_mm: float) -> float:
        """Convert a world length to pixels (horizontal scale)."""
        return length_mm / (2.0 * self.extent_mm) * (self.intrinsics.width_px - 1)

    # ------------------------------------------------------------------
    def render(
        self,
        workspace: Workspace,
        grasper_tips: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Render one RGB frame, shape ``(height, width, 3)`` in [0, 1]."""
        height, width = self.intrinsics.height_px, self.intrinsics.width_px
        frame = np.tile(TABLE_COLOR, (height, width, 1)).astype(float)

        self._draw_ring(
            frame,
            workspace.receptacle.position,
            self.mm_to_px(workspace.receptacle.radius_mm),
        )
        self._draw_block(frame, workspace)
        for tip in grasper_tips or []:
            self._draw_square(frame, tip, max(1.0, self.mm_to_px(4.0)), GRASPER_COLOR)
        return frame

    def _draw_block(self, frame: np.ndarray, workspace: Workspace) -> None:
        block = workspace.block
        # Mild perspective: a lifted block appears up to ~40% larger.
        lift = np.clip(block.position[2] / max(workspace.carry_height_mm, 1e-9), 0, 1)
        half_px = max(1.0, self.mm_to_px(block.size_mm / 2.0) * (1.0 + 0.4 * lift))
        self._draw_square(frame, block.position, half_px, BLOCK_COLOR)

    def _draw_square(
        self,
        frame: np.ndarray,
        world_point: np.ndarray,
        half_px: float,
        color: np.ndarray,
    ) -> None:
        row, col = self.world_to_pixel(world_point)
        h = int(round(half_px))
        r0, r1 = max(0, row - h), min(frame.shape[0], row + h + 1)
        c0, c1 = max(0, col - h), min(frame.shape[1], col + h + 1)
        frame[r0:r1, c0:c1] = color

    def _draw_ring(
        self, frame: np.ndarray, world_point: np.ndarray, radius_px: float
    ) -> None:
        row, col = self.world_to_pixel(world_point)
        height, width = frame.shape[:2]
        rows, cols = np.ogrid[:height, :width]
        dist = np.sqrt((rows - row) ** 2 + (cols - col) ** 2)
        ring = np.abs(dist - radius_px) <= 1.0
        frame[ring] = RECEPTACLE_COLOR
