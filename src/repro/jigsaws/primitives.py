"""Per-gesture kinematic motion primitives.

Each surgical gesture is realised as a parameterised motion primitive:
minimum-jerk travel between gesture-specific scene anchors, a
characteristic wrist-rotation sweep, and a grasper-jaw profile.  The
combination gives every gesture a distinct spatio-temporal signature in
the 38-variable kinematics vector — the structure the paper's stacked
LSTM learns to segment (Section III).

Subject skill modulates the primitives: novices are slower, noisier and
less precise (:class:`SkillProfile`), mirroring the JIGSAWS population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError, GestureError
from ..gestures.vocabulary import Gesture
from ..kinematics.rotations import rotation_from_euler
from ..kinematics.state import N_VARIABLES_PER_ARM
from ..simulation.motion import minimum_jerk_segment
from .schema import FRAME_RATE_HZ, SuturingAnchors

#: Jaw angle conventions (radians).
JAW_OPEN = 0.9
JAW_CLOSED = 0.15
JAW_HALF = 0.5


@dataclass(frozen=True)
class SkillProfile:
    """Subject skill parameters.

    Attributes
    ----------
    label:
        ``"novice"``, ``"intermediate"`` or ``"expert"``.
    noise_scale:
        Multiplier on positional/rotational noise.
    duration_scale:
        Multiplier on gesture durations (novices are slower).
    error_rate_scale:
        Multiplier on per-gesture error-injection probability.
    """

    label: str
    noise_scale: float
    duration_scale: float
    error_rate_scale: float


SKILL_PROFILES: dict[str, SkillProfile] = {
    "expert": SkillProfile("expert", 0.8, 0.85, 0.6),
    "intermediate": SkillProfile("intermediate", 1.1, 1.0, 1.0),
    "novice": SkillProfile("novice", 1.7, 1.25, 1.4),
}


@dataclass(frozen=True)
class GesturePrimitive:
    """Kinematic recipe for one gesture.

    ``right_path``/``left_path`` are anchor selectors returning the
    waypoints each arm travels (as a function of the scene and rng, so
    variants differ per execution); rotation sweeps are (start, end)
    Euler triples; jaw profiles are keywords interpreted by
    :func:`_jaw_profile`.
    """

    gesture: Gesture
    duration_s: tuple[float, float]
    right_path: Callable[[SuturingAnchors, np.random.Generator], np.ndarray]
    left_path: Callable[[SuturingAnchors, np.random.Generator], np.ndarray]
    right_rotation: tuple[tuple[float, float, float], tuple[float, float, float]]
    left_rotation: tuple[tuple[float, float, float], tuple[float, float, float]]
    right_jaw: str = "hold_open"
    left_jaw: str = "hold_open"

    def sample_duration(
        self, skill: SkillProfile, rng: np.random.Generator
    ) -> float:
        """Gesture duration in seconds for this execution."""
        lo, hi = self.duration_s
        return float(rng.uniform(lo, hi) * skill.duration_scale)


def _hover(
    point: np.ndarray, rng: np.random.Generator, spread: float = 0.004
) -> np.ndarray:
    """A near-stationary two-waypoint path around ``point``."""
    start = point + rng.normal(0.0, spread, 3)
    end = point + rng.normal(0.0, spread, 3)
    return np.stack([start, end])


def _path(*points: np.ndarray) -> np.ndarray:
    return np.stack(points)


def _make_primitives() -> dict[Gesture, GesturePrimitive]:
    """The Suturing-task primitive library (anchor-based)."""
    down = (np.pi, 0.0, 0.0)  # tool pointing down

    return {
        Gesture.G1: GesturePrimitive(
            gesture=Gesture.G1,
            duration_s=(1.5, 2.5),
            right_path=lambda a, r: _path(
                a.right_home + r.normal(0, 0.003, 3), a.needle_site
            ),
            left_path=lambda a, r: _hover(a.left_home, r),
            right_rotation=(down, (np.pi, 0.25, 0.3)),
            left_rotation=(down, down),
            right_jaw="closing",
            left_jaw="hold_open",
        ),
        Gesture.G2: GesturePrimitive(
            gesture=Gesture.G2,
            duration_s=(1.8, 3.2),
            right_path=lambda a, r: _path(
                a.needle_site, a.tissue_entry + r.normal(0, 0.002, 3)
            ),
            left_path=lambda a, r: _hover(a.left_home * 0.6, r),
            right_rotation=((np.pi, 0.25, 0.3), (np.pi, 0.45, 0.1)),
            left_rotation=(down, down),
            right_jaw="hold_closed",
            left_jaw="hold_open",
        ),
        Gesture.G3: GesturePrimitive(
            gesture=Gesture.G3,
            duration_s=(2.5, 4.5),
            right_path=lambda a, r: _path(
                a.tissue_entry,
                # Needle driven along its curve: the wrist dips below the
                # tissue plane midway.
                0.5 * (a.tissue_entry + a.tissue_exit) + np.array([0, 0, -0.008]),
                a.tissue_exit,
            ),
            left_path=lambda a, r: _hover(a.tissue_exit + np.array([0, 0.01, 0.01]), r),
            right_rotation=((np.pi, 0.45, 0.1), (np.pi, -0.5, -0.4)),
            left_rotation=(down, down),
            right_jaw="hold_closed",
            left_jaw="hold_half",
        ),
        Gesture.G4: GesturePrimitive(
            gesture=Gesture.G4,
            duration_s=(1.5, 3.0),
            right_path=lambda a, r: _path(
                a.right_home * 0.5 + r.normal(0, 0.002, 3), a.center
            ),
            left_path=lambda a, r: _path(
                a.tissue_exit + np.array([0, 0.01, 0.02]), a.center
            ),
            right_rotation=(down, (np.pi, 0.2, -0.2)),
            left_rotation=((np.pi, -0.2, 0.2), down),
            right_jaw="closing",
            left_jaw="opening",
        ),
        Gesture.G5: GesturePrimitive(
            gesture=Gesture.G5,
            duration_s=(1.0, 2.0),
            right_path=lambda a, r: _path(
                a.needle_site + r.normal(0, 0.003, 3), a.center
            ),
            left_path=lambda a, r: _hover(a.left_home, r),
            right_rotation=((np.pi, 0.1, 0.2), down),
            left_rotation=(down, down),
            right_jaw="hold_closed",
            left_jaw="hold_open",
        ),
        Gesture.G6: GesturePrimitive(
            gesture=Gesture.G6,
            duration_s=(2.0, 4.0),
            right_path=lambda a, r: _hover(a.tissue_exit + np.array([0.01, 0, 0.01]), r),
            left_path=lambda a, r: _path(a.tissue_exit, a.pull_target),
            right_rotation=(down, down),
            left_rotation=((np.pi, -0.3, 0.0), (np.pi, -0.6, 0.5)),
            right_jaw="hold_half",
            left_jaw="hold_closed",
        ),
        Gesture.G8: GesturePrimitive(
            gesture=Gesture.G8,
            duration_s=(1.5, 3.0),
            right_path=lambda a, r: _hover(a.center, r, spread=0.006),
            left_path=lambda a, r: _hover(a.center + np.array([-0.02, 0, 0]), r),
            # Orientation-heavy: large roll sweep while nearly stationary.
            right_rotation=((np.pi, 0.0, -0.8), (np.pi, 0.3, 0.8)),
            left_rotation=(down, (np.pi, 0.1, 0.2)),
            right_jaw="hold_closed",
            left_jaw="hold_half",
        ),
        Gesture.G9: GesturePrimitive(
            gesture=Gesture.G9,
            duration_s=(1.2, 2.5),
            right_path=lambda a, r: _path(
                a.center, a.center + np.array([0.02, -0.025, 0.0])
            ),
            left_path=lambda a, r: _hover(a.center + np.array([-0.03, 0.01, 0]), r),
            right_rotation=(down, (np.pi, 0.2, 0.1)),
            left_rotation=(down, down),
            right_jaw="hold_closed",
            left_jaw="hold_closed",
        ),
        Gesture.G10: GesturePrimitive(
            gesture=Gesture.G10,
            duration_s=(1.0, 2.0),
            right_path=lambda a, r: _hover(a.center + np.array([0.01, 0, 0.01]), r),
            left_path=lambda a, r: _path(
                a.center, a.center + np.array([-0.025, 0.02, 0.01])
            ),
            right_rotation=(down, down),
            left_rotation=(down, (np.pi, -0.2, -0.2)),
            right_jaw="hold_half",
            left_jaw="hold_closed",
        ),
        Gesture.G11: GesturePrimitive(
            gesture=Gesture.G11,
            duration_s=(1.5, 3.0),
            right_path=lambda a, r: _path(a.center, a.end_point),
            left_path=lambda a, r: _path(
                a.center + np.array([-0.02, 0, 0]), a.left_home
            ),
            right_rotation=(down, (np.pi, -0.1, -0.3)),
            left_rotation=(down, down),
            right_jaw="opening",
            left_jaw="opening",
        ),
        # Block-Transfer-style / Knot-Tying vocabulary extras.
        Gesture.G12: GesturePrimitive(
            gesture=Gesture.G12,
            duration_s=(1.5, 2.5),
            right_path=lambda a, r: _hover(a.right_home, r),
            left_path=lambda a, r: _path(
                a.left_home + r.normal(0, 0.003, 3), a.needle_site * np.array([-1, 1, 1])
            ),
            right_rotation=(down, down),
            left_rotation=(down, (np.pi, 0.25, -0.3)),
            right_jaw="hold_open",
            left_jaw="closing",
        ),
        Gesture.G13: GesturePrimitive(
            gesture=Gesture.G13,
            duration_s=(1.5, 3.0),
            # C-loop: the left instrument circles the right one.
            right_path=lambda a, r: _hover(a.center, r),
            left_path=lambda a, r: _path(
                a.center + np.array([-0.03, 0.0, 0.0]),
                a.center + np.array([0.0, 0.03, 0.01]),
                a.center + np.array([0.03, 0.0, 0.0]),
            ),
            right_rotation=(down, down),
            left_rotation=(down, (np.pi, 0.4, 1.0)),
            right_jaw="hold_closed",
            left_jaw="hold_closed",
        ),
        Gesture.G14: GesturePrimitive(
            gesture=Gesture.G14,
            duration_s=(1.2, 2.5),
            right_path=lambda a, r: _path(
                a.right_home * 0.7, a.tissue_exit + np.array([0.01, 0, 0])
            ),
            left_path=lambda a, r: _hover(a.center, r),
            right_rotation=(down, (np.pi, 0.3, 0.2)),
            left_rotation=(down, down),
            right_jaw="closing",
            left_jaw="hold_closed",
        ),
        Gesture.G15: GesturePrimitive(
            gesture=Gesture.G15,
            duration_s=(1.5, 3.0),
            right_path=lambda a, r: _path(
                a.center, a.center + np.array([0.045, 0.0, 0.02])
            ),
            left_path=lambda a, r: _path(
                a.center, a.center + np.array([-0.045, 0.0, 0.02])
            ),
            right_rotation=(down, (np.pi, 0.2, 0.3)),
            left_rotation=(down, (np.pi, 0.2, -0.3)),
            right_jaw="hold_closed",
            left_jaw="hold_closed",
        ),
    }


#: The primitive library, indexed by gesture.
PRIMITIVES: dict[Gesture, GesturePrimitive] = _make_primitives()


def render_gesture(
    primitive: GesturePrimitive,
    anchors: SuturingAnchors,
    skill: SkillProfile,
    rng: int | np.random.Generator | None,
    frame_rate_hz: float = FRAME_RATE_HZ,
    start_positions: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Render one gesture execution to kinematics frames.

    Parameters
    ----------
    primitive:
        The gesture recipe.
    anchors:
        Scene geometry.
    skill:
        Subject skill profile (noise/duration scaling).
    start_positions:
        Optional ``(left_xyz, right_xyz)`` continuity override: the
        rendered paths are shifted to start where the previous gesture
        ended (blended out over the gesture) so demonstrations are
        spatially continuous.

    Returns
    -------
    numpy.ndarray
        Frames of shape ``(n, 38)`` (left arm columns 0..18, right arm
        19..37).
    """
    gen = as_generator(rng)
    duration = primitive.sample_duration(skill, gen)
    n = max(int(round(duration * frame_rate_hz)), 4)

    left_way = primitive.left_path(anchors, gen)
    right_way = primitive.right_path(anchors, gen)
    left_pos = _render_path(left_way, n)
    right_pos = _render_path(right_way, n)

    if start_positions is not None:
        left_pos = _blend_start(left_pos, start_positions[0])
        right_pos = _blend_start(right_pos, start_positions[1])

    noise_std = 0.0045 * skill.noise_scale
    left_pos = left_pos + _smooth_noise(gen, n, 3, noise_std)
    right_pos = right_pos + _smooth_noise(gen, n, 3, noise_std)

    rot_noise = 0.10 * skill.noise_scale
    left_rot = _render_rotation(primitive.left_rotation, n, gen, rot_noise)
    right_rot = _render_rotation(primitive.right_rotation, n, gen, rot_noise)

    jaw_noise = 0.05 * skill.noise_scale
    left_jaw = _jaw_profile(primitive.left_jaw, n, gen, jaw_noise)
    right_jaw = _jaw_profile(primitive.right_jaw, n, gen, jaw_noise)

    frames = np.empty((n, 2 * N_VARIABLES_PER_ARM))
    _fill_arm(frames, 0, left_pos, left_rot, left_jaw, frame_rate_hz)
    _fill_arm(frames, N_VARIABLES_PER_ARM, right_pos, right_rot, right_jaw, frame_rate_hz)
    return frames


# ----------------------------------------------------------------------
# Internal rendering helpers
# ----------------------------------------------------------------------
def _render_path(waypoints: np.ndarray, n: int) -> np.ndarray:
    waypoints = np.asarray(waypoints, dtype=float)
    if waypoints.shape[0] < 2:
        raise ConfigurationError("a path needs at least two waypoints")
    n_segments = waypoints.shape[0] - 1
    per_segment = [n // n_segments] * n_segments
    per_segment[-1] += n - sum(per_segment)
    pieces = []
    for i in range(n_segments):
        count = max(per_segment[i], 2)
        seg = minimum_jerk_segment(waypoints[i], waypoints[i + 1], count)
        pieces.append(seg if i == 0 else seg[1:])
    path = np.concatenate(pieces, axis=0)
    # Trim/pad to exactly n frames.
    if path.shape[0] >= n:
        return path[:n]
    pad = np.tile(path[-1], (n - path.shape[0], 1))
    return np.concatenate([path, pad], axis=0)


def _blend_start(path: np.ndarray, start: np.ndarray) -> np.ndarray:
    offset = np.asarray(start, dtype=float) - path[0]
    ramp = np.linspace(1.0, 0.0, path.shape[0])[:, None]
    return path + offset[None, :] * ramp


def _smooth_noise(
    gen: np.random.Generator, n: int, dims: int, std: float
) -> np.ndarray:
    white = gen.standard_normal((n, dims))
    smooth = np.empty_like(white)
    state = np.zeros(dims)
    for t in range(n):
        state = 0.9 * state + 0.1 * white[t]
        smooth[t] = state
    scale = smooth.std() or 1.0
    return smooth / scale * std


def _render_rotation(
    sweep: tuple[tuple[float, float, float], tuple[float, float, float]],
    n: int,
    gen: np.random.Generator,
    noise: float,
) -> np.ndarray:
    start = np.asarray(sweep[0], dtype=float)
    end = np.asarray(sweep[1], dtype=float)
    s = np.linspace(0.0, 1.0, n)[:, None]
    eulers = start[None, :] + s * (end - start)[None, :]
    eulers = eulers + _smooth_noise(gen, n, 3, noise)
    out = np.empty((n, 3, 3))
    for t in range(n):
        out[t] = rotation_from_euler(*eulers[t])
    return out


def _jaw_profile(
    kind: str, n: int, gen: np.random.Generator, noise: float
) -> np.ndarray:
    if kind == "hold_open":
        profile = np.full(n, JAW_OPEN)
    elif kind == "hold_closed":
        profile = np.full(n, JAW_CLOSED)
    elif kind == "hold_half":
        profile = np.full(n, JAW_HALF)
    elif kind == "closing":
        profile = np.linspace(JAW_OPEN, JAW_CLOSED, n)
    elif kind == "opening":
        profile = np.linspace(JAW_CLOSED, JAW_OPEN, n)
    else:
        raise GestureError(f"unknown jaw profile {kind!r}")
    return np.clip(profile + gen.normal(0.0, noise, n), 0.02, 1.4)


def _fill_arm(
    frames: np.ndarray,
    offset: int,
    positions: np.ndarray,
    rotations: np.ndarray,
    jaw: np.ndarray,
    frame_rate_hz: float,
) -> None:
    n = frames.shape[0]
    dt = 1.0 / frame_rate_hz
    frames[:, offset : offset + 3] = positions
    frames[:, offset + 3 : offset + 12] = rotations.reshape(n, 9)
    frames[:, offset + 12 : offset + 15] = np.gradient(positions, dt, axis=0)
    # Angular velocity: finite difference of the rotation columns gives a
    # usable rate signal without a full log-map.
    rot_rate = np.gradient(rotations.reshape(n, 9), dt, axis=0)
    frames[:, offset + 15 : offset + 18] = rot_rate[:, :3]
    frames[:, offset + 18] = jaw
