"""Paper Table VIII: overall safety-monitoring pipeline evaluation.

Compares, per task, the three monitor configurations of the paper:
gesture-specific with perfect gesture boundaries (upper bound),
gesture-specific with the trained gesture classifier (the deployed
pipeline), and the non-gesture-specific baseline — reporting average
AUC, F1, reaction time (ms), early-detection percentage and mean
per-window computation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import WindowConfig, frames_to_ms
from ..core.baseline_monitor import BaselineMonitor
from ..core.pipeline import MonitorOutput
from ..core.reaction import evaluate_timing
from ..eval.metrics import f1_score
from ..eval.reports import format_table
from ..eval.roc import auc_score
from ..jigsaws.dataset import SurgicalDataset
from ..kinematics.trajectory import Trajectory
from ..kinematics.windows import sliding_windows
from .common import (
    ExperimentScale,
    SuturingComponents,
    get_scale,
    make_blocktransfer_dataset,
    train_suturing_fold,
)


@dataclass
class Table8Row:
    """One pipeline configuration's aggregate metrics."""

    setup: str
    task: str
    avg_auc: float
    auc_std: float
    avg_f1: float
    f1_std: float
    avg_reaction_ms: float
    reaction_std_ms: float
    early_detection_pct: float
    avg_compute_ms: float


def _baseline_output(
    baseline: BaselineMonitor, trajectory: Trajectory, window: WindowConfig
) -> MonitorOutput:
    """Frame-level outputs of the non-context baseline."""
    windows, ends = sliding_windows(trajectory.frames, window)
    scores = np.zeros(trajectory.n_frames)
    probs, per_window_ms = baseline.timed_predict_proba(windows)
    scores[ends] = probs
    last = 0.0
    scored = np.zeros(trajectory.n_frames, dtype=bool)
    scored[ends] = True
    for t in range(trajectory.n_frames):
        if scored[t]:
            last = scores[t]
        else:
            scores[t] = last
    assert trajectory.gestures is not None
    return MonitorOutput(
        gestures=trajectory.gestures.copy(),  # baseline has no gesture stage
        unsafe_scores=scores,
        unsafe_flags=(scores >= 0.5).astype(int),
        gesture_ms=0.0,
        error_ms=per_window_ms,
        metadata={"setup": "non-gesture-specific"},
    )


def _aggregate(
    setup: str,
    task: str,
    pairs: list[tuple[Trajectory, MonitorOutput]],
    report_compute_ms: float | None,
) -> Table8Row:
    aucs, f1s = [], []
    for trajectory, output in pairs:
        assert trajectory.unsafe is not None
        y = trajectory.unsafe
        if len(np.unique(y)) == 2:
            aucs.append(auc_score(y, output.unsafe_scores))
            f1s.append(f1_score(y, output.unsafe_flags))
    timing = evaluate_timing(pairs)
    return Table8Row(
        setup=setup,
        task=task,
        avg_auc=float(np.mean(aucs)) if aucs else float("nan"),
        auc_std=float(np.std(aucs)) if aucs else float("nan"),
        avg_f1=float(np.nanmean(f1s)) if f1s else float("nan"),
        f1_std=float(np.nanstd(f1s)) if f1s else float("nan"),
        avg_reaction_ms=timing.mean_reaction_ms(),
        reaction_std_ms=timing.std_reaction_ms(),
        early_detection_pct=timing.early_detection_pct(),
        avg_compute_ms=report_compute_ms if report_compute_ms is not None else float("nan"),
    )


def run_task(
    task: str,
    components: SuturingComponents,
    test: SurgicalDataset,
) -> list[Table8Row]:
    """Evaluate the three setups of one task."""
    monitor = components.monitor()
    rows: list[Table8Row] = []

    # Bulk engine, reference backend: bit-identical to the looped
    # process(), but one fused batch per stage per demonstration.
    perfect_pairs = [
        (d.trajectory, monitor.process(d.trajectory, use_true_gestures=True, bulk=True))
        for d in test.demonstrations
    ]
    rows.append(_aggregate("gesture-specific (perfect boundaries)", task, perfect_pairs, None))

    pipeline_pairs = [
        (d.trajectory, monitor.process(d.trajectory, use_true_gestures=False, bulk=True))
        for d in test.demonstrations
    ]
    compute = float(np.mean([o.compute_ms for _, o in pipeline_pairs]))
    rows.append(
        _aggregate("gesture-specific (with gesture classifier)", task, pipeline_pairs, compute)
    )

    baseline_pairs = [
        (
            d.trajectory,
            _baseline_output(components.baseline, d.trajectory, components.window),
        )
        for d in test.demonstrations
    ]
    base_compute = float(np.mean([o.error_ms for _, o in baseline_pairs]))
    rows.append(_aggregate("non-gesture-specific", task, baseline_pairs, base_compute))
    return rows


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    tasks: tuple[str, ...] = ("suturing", "block_transfer"),
) -> list[Table8Row]:
    """Train components and evaluate the pipeline for the given tasks."""
    preset = get_scale(scale)
    rows: list[Table8Row] = []
    for task in tasks:
        if task == "suturing":
            components = train_suturing_fold(preset, held_out_trial, seed=seed)
            rows += run_task(task, components, components.test)
        else:
            dataset = make_blocktransfer_dataset(preset, seed=seed)
            components = train_suturing_fold(
                preset, held_out_trial, seed=seed, dataset=dataset
            )
            rows += run_task(task, components, components.test)
    return rows


def render(rows: list[Table8Row]) -> str:
    """ASCII rendering of the pipeline comparison."""
    headers = [
        "Setup",
        "Task",
        "AUC",
        "F1",
        "React (ms)",
        "Early %",
        "Compute (ms)",
    ]
    body = [
        [
            r.setup,
            r.task,
            f"{r.avg_auc:.2f}±{r.auc_std:.2f}",
            f"{r.avg_f1:.2f}±{r.f1_std:.2f}",
            f"{r.avg_reaction_ms:+.0f}±{r.reaction_std_ms:.0f}",
            f"{r.early_detection_pct:.1f}",
            "n/a" if np.isnan(r.avg_compute_ms) else f"{r.avg_compute_ms:.2f}",
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table VIII: overall pipeline evaluation")
