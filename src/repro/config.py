"""Global configuration objects and deterministic seeding helpers.

Every stochastic component in the library accepts either an integer seed or
a fully constructed :class:`numpy.random.Generator`.  The helper
:func:`as_generator` normalises the two so modules never touch global numpy
random state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigurationError

#: Frame rate of the JIGSAWS kinematics recordings (paper Section IV-A).
JIGSAWS_FRAME_RATE_HZ = 30.0

#: Frame rate of the virtual camera in the Raven II simulator (Section IV-B).
VIDEO_FRAME_RATE_HZ = 30.0

#: Kinematics sampling rate of the Raven II Gazebo simulator in the paper.
#: The pure-Python simulator defaults to a lower rate for tractability but
#: this constant records the paper's value.
RAVEN_PAPER_SAMPLE_RATE_HZ = 1000.0

#: Default kinematics sampling rate used by :mod:`repro.simulation`.
RAVEN_DEFAULT_SAMPLE_RATE_HZ = 100.0


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for non-deterministic entropy, an ``int`` for a seeded
        generator, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise ConfigurationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}"
    )


def frames_to_ms(frames: float, frame_rate_hz: float = JIGSAWS_FRAME_RATE_HZ) -> float:
    """Convert a frame count at ``frame_rate_hz`` into milliseconds.

    The paper reports timing both in frames and milliseconds (e.g. a
    reaction time of "-1.7 frames (-57 ms)" at 30 Hz); this helper keeps the
    conversion in one place.
    """
    if frame_rate_hz <= 0:
        raise ConfigurationError("frame_rate_hz must be positive")
    return 1000.0 * frames / frame_rate_hz


def ms_to_frames(ms: float, frame_rate_hz: float = JIGSAWS_FRAME_RATE_HZ) -> float:
    """Convert milliseconds into a (fractional) frame count."""
    if frame_rate_hz <= 0:
        raise ConfigurationError("frame_rate_hz must be positive")
    return ms * frame_rate_hz / 1000.0


@dataclass(frozen=True)
class WindowConfig:
    """Sliding-window parameters for time-series classification.

    Mirrors Equation 2 of the paper: an input sample is the ``window``
    consecutive kinematics frames starting at ``t`` and windows advance by
    ``stride`` frames.
    """

    window: int = 5
    stride: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")
        if self.stride < 1:
            raise ConfigurationError("stride must be >= 1")

    def n_windows(self, n_frames: int) -> int:
        """Number of complete windows over a sequence of ``n_frames``."""
        if n_frames < self.window:
            return 0
        return (n_frames - self.window) // self.stride + 1


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters shared by the paper's models.

    Defaults follow Section III: Adam with a low initial learning rate,
    step-decay and early stopping on a held-out validation split.
    """

    learning_rate: float = 1e-3
    batch_size: int = 64
    max_epochs: int = 30
    early_stopping_patience: int = 5
    lr_decay_factor: float = 0.5
    lr_decay_every: int = 10
    validation_fraction: float = 0.15
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ConfigurationError("validation_fraction must be in [0, 1)")


@dataclass(frozen=True)
class MonitorConfig:
    """End-to-end safety-monitor configuration (paper Section V-B).

    ``gesture_window`` is the window used by the gesture classifier and
    ``error_window`` the one used by the erroneous-gesture classifiers
    (the paper uses 5 for Suturing and 10 for Block Transfer).
    """

    gesture_window: WindowConfig = field(default_factory=WindowConfig)
    error_window: WindowConfig = field(default_factory=WindowConfig)
    frame_rate_hz: float = JIGSAWS_FRAME_RATE_HZ
    #: Fraction of erroneous windows within a gesture above which the whole
    #: gesture occurrence is reported as unsafe (the paper flags a gesture
    #: on the *first* erroneous sample; keep 0.0 for that behaviour).
    unsafe_vote_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.frame_rate_hz <= 0:
            raise ConfigurationError("frame_rate_hz must be positive")
        if not 0.0 <= self.unsafe_vote_threshold < 1.0:
            raise ConfigurationError("unsafe_vote_threshold must be in [0, 1)")
