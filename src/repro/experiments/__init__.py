"""One entry point per paper table/figure.

Each module exposes a ``run(scale=...)`` function returning structured
rows plus a ``render(...)`` helper producing the ASCII table printed by
the corresponding benchmark under ``benchmarks/``.  The
:class:`~repro.experiments.common.ExperimentScale` presets trade run time
for fidelity: ``"smoke"`` for CI-speed sanity, ``"fast"`` (default) for
minutes-scale benchmark runs, ``"full"`` for the closest match to the
paper's data sizes.
"""

from .common import ExperimentScale, SCALES, get_scale

__all__ = ["ExperimentScale", "SCALES", "get_scale"]
