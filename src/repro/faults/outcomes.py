"""Mapping physical outcomes to error labels.

Two views of the same trial:

- :func:`outcome_error_category` — the Table III accounting (block-drop
  vs drop-off failure counts);
- :func:`gesture_error_labels` — the per-gesture erroneous/non-erroneous
  labels used to train the safety monitor.  Following the paper
  (Section IV-B), the gestures overlapping the interval from fault
  injection to error manifestation are labeled erroneous.
"""

from __future__ import annotations

import numpy as np

from ..simulation.physics import PhysicsOutcome
from ..simulation.robot import SimulationResult


def outcome_error_category(outcome: PhysicsOutcome) -> str | None:
    """Table III column for an outcome (``None`` = not an error)."""
    if outcome == PhysicsOutcome.BLOCK_DROP:
        return "block_drop"
    if outcome == PhysicsOutcome.DROPOFF_FAILURE:
        return "dropoff_failure"
    if outcome == PhysicsOutcome.WRONG_POSITION:
        return "wrong_position"
    if outcome == PhysicsOutcome.NEVER_GRASPED:
        return "never_grasped"
    return None


def error_manifestation_frame(result: SimulationResult) -> int | None:
    """Frame at which the physical error became observable.

    Block drops and wrong-position drops manifest at the release frame;
    a drop-off failure manifests at the end of the trajectory (the drop
    that should have happened never did).
    """
    if result.outcome in (PhysicsOutcome.BLOCK_DROP, PhysicsOutcome.WRONG_POSITION):
        return result.release_frame
    if result.outcome == PhysicsOutcome.DROPOFF_FAILURE:
        return result.states.shape[0] - 1
    if result.outcome == PhysicsOutcome.NEVER_GRASPED:
        return result.grasp_frame if result.grasp_frame is not None else 0
    return None


def gesture_error_labels(
    result: SimulationResult,
    fault_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Per-frame unsafe labels for one simulated trial.

    Frames between the start of the fault injection and the error
    manifestation (inclusive) are unsafe; whole gestures overlapping that
    interval inherit the unsafe label, mirroring the paper's labeling of
    "any gesture that had an occurrence of an anomaly as erroneous".
    Fault-free or harmless trials yield all-zero labels.
    """
    n = result.states.shape[0]
    labels = np.zeros(n, dtype=int)
    if outcome_error_category(result.outcome) is None:
        return labels
    if fault_mask is None:
        fault_mask = result.metadata.get("fault_mask")
    if fault_mask is None or not np.any(fault_mask):
        # No injection record: fall back to marking from the error frame.
        start = error_manifestation_frame(result) or 0
    else:
        start = int(np.flatnonzero(fault_mask)[0])
    end = error_manifestation_frame(result)
    if end is None:
        end = n - 1
    end = max(end, start)
    labels[start : end + 1] = 1

    # Expand to whole gestures: any gesture occurrence overlapping the
    # unsafe interval becomes unsafe end to end.
    gestures = result.gestures
    boundaries = np.flatnonzero(np.diff(gestures)) + 1
    segment_starts = np.concatenate([[0], boundaries])
    segment_ends = np.concatenate([boundaries, [n]])
    for seg_start, seg_end in zip(segment_starts, segment_ends):
        if labels[seg_start:seg_end].any():
            labels[seg_start:seg_end] = 1
    return labels
