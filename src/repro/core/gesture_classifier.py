"""Surgical gesture segmentation and classification.

The operational-context inference stage of the monitor: a stacked LSTM
over sliding kinematics windows emitting per-frame gesture probabilities
(paper Section III, "Gesture Segmentation and Classification").  The
paper's best model is a 2-layer stacked LSTM (512 + 96 units) followed by
a 64-unit fully-connected ReLU layer and softmax; this class builds the
same architecture with configurable (default smaller, CPU-friendly)
widths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..config import TrainingConfig, WindowConfig
from ..errors import NotFittedError
from ..gestures.vocabulary import N_GESTURE_CLASSES
from ..jigsaws.dataset import SurgicalDataset, WindowedData
from ..kinematics.trajectory import Trajectory
from ..kinematics.windows import sliding_windows_view


@dataclass
class GestureClassifierConfig:
    """Architecture and training hyper-parameters.

    The paper's full-scale architecture is ``lstm_units=(512, 96)``,
    ``dense_units=64``; the defaults here are narrower so LOSO training
    finishes in CPU-minutes while preserving the architecture family.
    """

    lstm_units: tuple[int, ...] = (64, 32)
    dense_units: int = 32
    window: WindowConfig = field(default_factory=lambda: WindowConfig(5, 1))
    feature_indices: np.ndarray | None = None
    dropout: float = 0.2
    use_batch_norm: bool = True
    training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(learning_rate=1e-3, max_epochs=12)
    )
    #: Optional cap on training windows per fit (stratified subsample);
    #: None uses everything.
    max_train_windows: int | None = 20000


class GestureClassifier:
    """Stacked-LSTM gesture classifier with per-frame streaming output."""

    def __init__(self, config: GestureClassifierConfig | None = None, seed: int = 0):
        self.config = config or GestureClassifierConfig()
        self.seed = seed
        self.model: nn.Sequential | None = None
        self.scaler = nn.StandardScaler()
        self._fitted = False

    # ------------------------------------------------------------------
    def _build_model(self) -> nn.Sequential:
        cfg = self.config
        layers: list[nn.Layer] = []
        for i, units in enumerate(cfg.lstm_units):
            last = i == len(cfg.lstm_units) - 1
            layers.append(nn.LSTM(units, return_sequences=not last))
        if cfg.use_batch_norm:
            layers.append(nn.BatchNorm())
        layers.append(nn.Dense(cfg.dense_units))
        layers.append(nn.ReLU())
        if cfg.dropout > 0:
            layers.append(nn.Dropout(cfg.dropout))
        layers.append(nn.Dense(N_GESTURE_CLASSES))
        model = nn.Sequential(layers, seed=self.seed)
        model.compile(
            loss=nn.SoftmaxCrossEntropy(),
            optimizer=nn.Adam(cfg.training.learning_rate),
        )
        return model

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: SurgicalDataset,
        verbose: bool = False,
    ) -> nn.History:
        """Train on a dataset (validation split + early stopping)."""
        cfg = self.config
        data = dataset.windows(cfg.window, feature_indices=cfg.feature_indices)
        x, y = data.x, data.gesture
        if cfg.max_train_windows is not None and x.shape[0] > cfg.max_train_windows:
            x, y = _stratified_subsample(
                x, y, cfg.max_train_windows, seed=self.seed
            )
        x = self.scaler.fit_transform(x)
        x_tr, y_tr, x_val, y_val = nn.train_val_split(
            x, y, cfg.training.validation_fraction, rng=self.seed, stratify=True
        )
        self.model = self._build_model()
        callbacks = [
            nn.LearningRateScheduler(
                nn.StepDecay(
                    cfg.training.learning_rate,
                    factor=cfg.training.lr_decay_factor,
                    every=cfg.training.lr_decay_every,
                )
            ),
            nn.EarlyStopping(patience=cfg.training.early_stopping_patience),
        ]
        history = self.model.fit(
            x_tr,
            y_tr,
            epochs=cfg.training.max_epochs,
            batch_size=cfg.training.batch_size,
            validation_data=(x_val, y_val),
            callbacks=callbacks,
            verbose=verbose,
        )
        self._fitted = True
        return history

    # ------------------------------------------------------------------
    def predict_windows(self, data: WindowedData) -> np.ndarray:
        """Predicted gesture class indices for pre-extracted windows."""
        self._check_fitted()
        assert self.model is not None
        x = self.scaler.transform(data.x)
        return self.model.predict(x)

    def predict_frames(self, trajectory: Trajectory) -> tuple[np.ndarray, float]:
        """Per-frame gesture numbers (1-based) for one demonstration.

        The window's prediction is assigned to its final frame (causal);
        leading frames before the first complete window inherit the first
        prediction.  A trajectory shorter than one window has no gesture
        context and returns all zeros ("unknown"), which downstream
        consumers treat as safe.  Returns ``(gesture_numbers,
        mean_ms_per_window)``.
        """
        self._check_fitted()
        assert self.model is not None
        cfg = self.config
        frames = trajectory.frames
        if cfg.feature_indices is not None:
            frames = frames[:, cfg.feature_indices]
        # Zero-copy strided view; standardisation below materialises the
        # scaled batch, so no windowed copy of the raw frames ever exists.
        windows, ends = sliding_windows_view(frames, cfg.window)
        if ends.size == 0:
            return np.zeros(trajectory.n_frames, dtype=int), 0.0
        x = self.scaler.transform(windows)
        start_time = time.perf_counter()
        class_idx = self.model.predict(x)
        elapsed_ms = (
            1000.0 * (time.perf_counter() - start_time) / max(x.shape[0], 1)
        )
        # Window i's prediction covers frames [ends[i], ends[i+1]) — one
        # np.repeat instead of a per-window Python fill loop.
        numbers = class_idx + 1
        lengths = np.diff(np.append(ends, trajectory.n_frames))
        out = np.empty(trajectory.n_frames, dtype=int)
        out[: ends[0]] = numbers[0]
        out[ends[0] :] = np.repeat(numbers, lengths)
        return out, elapsed_ms

    def accuracy(self, dataset: SurgicalDataset) -> float:
        """Window-level classification accuracy over a dataset."""
        data = dataset.windows(
            self.config.window, feature_indices=self.config.feature_indices
        )
        predicted = self.predict_windows(data)
        return float((predicted == data.gesture).mean())

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("GestureClassifier must be fitted first")


def _stratified_subsample(
    x: np.ndarray, y: np.ndarray, max_rows: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Subsample rows keeping every class's share (small classes intact)."""
    rng = np.random.default_rng(seed)
    classes, counts = np.unique(y, return_counts=True)
    fraction = max_rows / y.shape[0]
    keep: list[np.ndarray] = []
    for cls, count in zip(classes, counts):
        idx = np.flatnonzero(y == cls)
        n_keep = max(min(count, 25), int(round(count * fraction)))
        rng.shuffle(idx)
        keep.append(idx[:n_keep])
    selected = np.concatenate(keep)
    rng.shuffle(selected)
    return x[selected], y[selected]
