"""Evaluation metrics and reporting (the paper's Section IV-C).

- :mod:`~repro.eval.metrics` — confusion-matrix metrics (TPR, TNR, PPV,
  NPV), accuracy, micro/macro F1;
- :mod:`~repro.eval.roc` — ROC curves and AUC;
- :mod:`~repro.eval.timing` — jitter, reaction time and early-detection
  percentage (Equation 4 / Figure 8 semantics);
- :mod:`~repro.eval.reports` — ASCII table rendering for the benchmark
  harness.
"""

from .metrics import (
    BinaryMetrics,
    accuracy,
    binary_metrics,
    confusion_matrix,
    f1_score,
)
from .roc import auc_score, roc_curve
from .timing import (
    DetectionTiming,
    early_detection_percentage,
    gesture_jitter,
    reaction_times,
)
from .reports import format_table, format_markdown_table

__all__ = [
    "BinaryMetrics",
    "DetectionTiming",
    "accuracy",
    "auc_score",
    "binary_metrics",
    "confusion_matrix",
    "early_detection_percentage",
    "f1_score",
    "format_markdown_table",
    "format_table",
    "gesture_jitter",
    "reaction_times",
    "roc_curve",
]
