"""Layer tests: shapes, semantics and numerical gradient checks."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def numeric_gradient_check(layers, in_shape, loss, y, seed=0, tol=3e-4):
    """Compare analytic parameter gradients against central differences."""
    model = nn.Sequential(layers, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((4, *in_shape))
    model.build(in_shape)
    logits = model.forward(x, training=True)
    grad = loss.gradient(logits, y)
    for layer in reversed(model.layers):
        grad = layer.backward(grad)
    analytic = [g.copy() for g in model.gradients()]
    params = model.parameters()
    eps = 1e-5
    for pi, p in enumerate(params):
        numeric = np.zeros_like(p)
        it = np.nditer(p, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = p[idx]
            p[idx] = orig + eps
            up = loss.value(model.forward(x, training=False), y)
            p[idx] = orig - eps
            down = loss.value(model.forward(x, training=False), y)
            p[idx] = orig
            numeric[idx] = (up - down) / (2 * eps)
            it.iternext()
        scale = np.max(np.abs(numeric)) + 1e-8
        err = np.max(np.abs(numeric - analytic[pi])) / scale
        assert err < tol, f"param {pi}: relative error {err:.2e}"


MULTICLASS = nn.SoftmaxCrossEntropy()
BINARY = nn.SigmoidBinaryCrossEntropy(positive_weight=2.0)
Y_MC = np.array([0, 1, 2, 1])
Y_BIN = np.array([0.0, 1.0, 1.0, 0.0])


class TestGradients:
    def test_dense_relu(self):
        numeric_gradient_check(
            [nn.Dense(5), nn.ReLU(), nn.Dense(3)], (4,), MULTICLASS, Y_MC
        )

    def test_stacked_lstm(self):
        numeric_gradient_check(
            [nn.LSTM(5, return_sequences=True), nn.LSTM(4), nn.Dense(3)],
            (5, 3),
            MULTICLASS,
            Y_MC,
        )

    def test_conv_same_maxpool_flatten(self):
        numeric_gradient_check(
            [
                nn.Conv1D(4, 3, padding="same"),
                nn.Tanh(),
                nn.MaxPool1D(2),
                nn.Flatten(),
                nn.Dense(1),
            ],
            (6, 3),
            BINARY,
            Y_BIN,
        )

    def test_conv_valid_gap_sigmoid(self):
        numeric_gradient_check(
            [
                nn.Conv1D(4, 3, padding="valid"),
                nn.Sigmoid(),
                nn.GlobalAveragePool1D(),
                nn.Dense(1),
            ],
            (6, 3),
            BINARY,
            Y_BIN,
        )

    def test_dense_on_sequences(self):
        numeric_gradient_check(
            [nn.Dense(4), nn.ReLU(), nn.Flatten(), nn.Dense(3)],
            (5, 3),
            MULTICLASS,
            Y_MC,
        )


class TestDense:
    def test_output_shape(self):
        layer = nn.Dense(7)
        layer.build((4,), np.random.default_rng(0))
        assert layer.output_shape == (7,)
        out = layer.forward(np.zeros((2, 4)))
        assert out.shape == (2, 7)

    def test_timestep_sharing(self):
        layer = nn.Dense(2)
        layer.build((3, 4), np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((1, 3, 4))
        out = layer.forward(x)
        for t in range(3):
            single = x[:, t, :] @ layer.params["W"] + layer.params["b"]
            assert np.allclose(out[:, t, :], single)

    def test_rejects_invalid_units(self):
        with pytest.raises(ConfigurationError):
            nn.Dense(0)

    def test_rejects_wrong_feature_count(self):
        layer = nn.Dense(2)
        layer.build((3,), np.random.default_rng(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 4)))


class TestLSTM:
    def test_return_sequences_shape(self):
        layer = nn.LSTM(6, return_sequences=True)
        layer.build((5, 3), np.random.default_rng(0))
        assert layer.forward(np.zeros((2, 5, 3))).shape == (2, 5, 6)

    def test_last_state_shape(self):
        layer = nn.LSTM(6)
        layer.build((5, 3), np.random.default_rng(0))
        assert layer.forward(np.zeros((2, 5, 3))).shape == (2, 6)

    def test_last_state_matches_sequence_tail(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 5, 3))
        seq = nn.LSTM(4, return_sequences=True)
        last = nn.LSTM(4, return_sequences=False)
        build_rng_a = np.random.default_rng(11)
        build_rng_b = np.random.default_rng(11)
        seq.build((5, 3), build_rng_a)
        last.build((5, 3), build_rng_b)
        assert np.allclose(seq.forward(x)[:, -1, :], last.forward(x))

    def test_forget_bias_initialised_to_one(self):
        layer = nn.LSTM(4)
        layer.build((5, 3), np.random.default_rng(0))
        assert np.allclose(layer.params["b"][4:8], 1.0)

    def test_zero_input_gives_bounded_output(self):
        layer = nn.LSTM(4)
        layer.build((5, 3), np.random.default_rng(0))
        out = layer.forward(np.zeros((1, 5, 3)))
        assert np.all(np.abs(out) < 1.0)


class TestConv1D:
    def test_same_padding_preserves_length(self):
        layer = nn.Conv1D(3, 5, padding="same")
        layer.build((8, 2), np.random.default_rng(0))
        assert layer.forward(np.zeros((1, 8, 2))).shape == (1, 8, 3)

    def test_valid_padding_shrinks(self):
        layer = nn.Conv1D(3, 3, padding="valid")
        layer.build((8, 2), np.random.default_rng(0))
        assert layer.forward(np.zeros((1, 8, 2))).shape == (1, 6, 3)

    def test_matches_manual_convolution(self):
        layer = nn.Conv1D(1, 3, padding="valid")
        layer.build((5, 1), np.random.default_rng(0))
        layer.params["W"][...] = np.array([1.0, 2.0, 3.0]).reshape(3, 1, 1)
        layer.params["b"][...] = 0.5
        x = np.arange(5.0).reshape(1, 5, 1)
        out = layer.forward(x)
        expected = [0 + 2 + 6 + 0.5, 1 + 4 + 9 + 0.5, 2 + 6 + 12 + 0.5]
        assert np.allclose(out[0, :, 0], expected)

    def test_rejects_bad_padding(self):
        with pytest.raises(ConfigurationError):
            nn.Conv1D(2, 3, padding="reflect")

    def test_rejects_kernel_larger_than_input(self):
        layer = nn.Conv1D(2, 9, padding="valid")
        with pytest.raises(ConfigurationError):
            layer.build((4, 2), np.random.default_rng(0))


class TestPooling:
    def test_maxpool_values(self):
        layer = nn.MaxPool1D(2)
        layer.build((4, 1), np.random.default_rng(0))
        x = np.array([[1.0], [5.0], [2.0], [3.0]]).reshape(1, 4, 1)
        assert layer.forward(x)[0, :, 0].tolist() == [5.0, 3.0]

    def test_maxpool_drops_remainder(self):
        layer = nn.MaxPool1D(2)
        layer.build((5, 2), np.random.default_rng(0))
        assert layer.forward(np.zeros((1, 5, 2))).shape == (1, 2, 2)

    def test_gap_is_time_mean(self):
        layer = nn.GlobalAveragePool1D()
        layer.build((4, 2), np.random.default_rng(0))
        x = np.random.default_rng(0).standard_normal((3, 4, 2))
        assert np.allclose(layer.forward(x), x.mean(axis=1))

    def test_flatten(self):
        layer = nn.Flatten()
        layer.build((3, 4), np.random.default_rng(0))
        assert layer.forward(np.zeros((2, 3, 4))).shape == (2, 12)


class TestBatchNorm:
    def test_training_normalises(self):
        layer = nn.BatchNorm()
        layer.build((3,), np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((200, 3)) * 5 + 2
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_inference_uses_running_stats(self):
        layer = nn.BatchNorm(momentum=0.0)  # adopt batch stats immediately
        layer.build((2,), np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((100, 2)) * 3 + 1
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_3d_input(self):
        layer = nn.BatchNorm()
        layer.build((4, 3), np.random.default_rng(0))
        out = layer.forward(np.random.default_rng(2).standard_normal((5, 4, 3)), True)
        assert out.shape == (5, 4, 3)


class TestDropout:
    def test_inference_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.build((4,), np.random.default_rng(0))
        x = np.ones((3, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_scales_survivors(self):
        layer = nn.Dropout(0.5)
        layer.build((1000,), np.random.default_rng(0))
        out = layer.forward(np.ones((1, 1000)), training=True)
        survivors = out[out > 0]
        assert np.allclose(survivors, 2.0)
        assert 300 < survivors.size < 700

    def test_rate_zero_is_identity_even_training(self):
        layer = nn.Dropout(0.0)
        layer.build((4,), np.random.default_rng(0))
        x = np.ones((2, 4))
        assert np.array_equal(layer.forward(x, training=True), x)
