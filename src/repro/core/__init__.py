"""The context-aware safety monitoring pipeline (paper Section III).

- :mod:`~repro.core.gesture_classifier` — stacked-LSTM surgical gesture
  segmentation and classification (operational-context inference);
- :mod:`~repro.core.error_classifiers` — the library of gesture-specific
  erroneous-gesture classifiers (1D-CNN / LSTM);
- :mod:`~repro.core.baseline_monitor` — the non-context-specific single
  classifier baseline;
- :mod:`~repro.core.pipeline` — the end-to-end online
  :class:`SafetyMonitor` combining both stages;
- :mod:`~repro.core.reaction` — per-demonstration timing evaluation
  (Figure 8 semantics);
- :mod:`~repro.core.divergence` — erroneous-gesture distribution analysis
  with Gaussian KDE + Jensen-Shannon divergence (Figure 5).
"""

from .baseline_monitor import BaselineMonitor
from .divergence import js_divergence_matrix, pairwise_divergence_report
from .error_classifiers import ErrorClassifier, ErrorClassifierLibrary
from .gesture_classifier import GestureClassifier
from .pipeline import MonitorOutput, SafetyMonitor
from .reaction import evaluate_timing

__all__ = [
    "BaselineMonitor",
    "ErrorClassifier",
    "ErrorClassifierLibrary",
    "GestureClassifier",
    "MonitorOutput",
    "SafetyMonitor",
    "evaluate_timing",
    "js_divergence_matrix",
    "pairwise_divergence_report",
]
