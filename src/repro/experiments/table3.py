"""Paper Table III: fault-injection experiments on the Raven II.

Runs the (scaled) grasper-angle x Cartesian-deviation x duration campaign
on simulated Block Transfer demonstrations and reports block-drop and
drop-off failure counts per cell — the same rows as the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eval.reports import format_table
from ..faults.campaign import CampaignResult, TABLE_III_GRID, run_campaign
from .common import ExperimentScale, get_scale


@dataclass(frozen=True)
class Table3Row:
    """One reported cell of Table III."""

    grasper_rad: tuple[float, float]
    grasper_window: tuple[float, float]
    cartesian_dev: tuple[float, float]
    cartesian_window: tuple[float, float]
    n_injections: int
    block_drops: int
    dropoff_failures: int
    wrong_positions: int

    @property
    def block_drop_pct(self) -> float:
        """Block drops as a percentage of the cell's injections."""
        return 100.0 * self.block_drops / self.n_injections if self.n_injections else 0.0

    @property
    def dropoff_pct(self) -> float:
        """Drop-off failures as a percentage of the cell's injections."""
        return (
            100.0 * self.dropoff_failures / self.n_injections
            if self.n_injections
            else 0.0
        )


def run(
    scale: "str | ExperimentScale" = "fast", seed: int = 0
) -> tuple[list[Table3Row], CampaignResult]:
    """Execute the campaign and aggregate per-cell rows."""
    preset = get_scale(scale)
    campaign = run_campaign(
        grid=TABLE_III_GRID,
        scale=preset.campaign_scale,
        sample_rate_hz=preset.raven_rate_hz,
        rng=seed,
    )
    rows = [
        Table3Row(
            grasper_rad=cell.cell.grasper_rad,
            grasper_window=cell.cell.grasper_window,
            cartesian_dev=cell.cell.cartesian_dev,
            cartesian_window=cell.cell.cartesian_window,
            n_injections=cell.n_injections,
            block_drops=cell.block_drops,
            dropoff_failures=cell.dropoff_failures,
            wrong_positions=cell.wrong_positions,
        )
        for cell in campaign.cells
    ]
    return rows, campaign


def render(rows: list[Table3Row]) -> str:
    """ASCII rendering in the paper's row order."""
    headers = [
        "Grasper (rad)",
        "Duration",
        "Cartesian dev",
        "Duration ",
        "#Inj",
        "Block-drop",
        "Dropoff",
        "WrongPos",
    ]
    body = []
    for r in rows:
        body.append(
            [
                f"{r.grasper_rad[0]:.2f}-{r.grasper_rad[1]:.2f}",
                f"{r.grasper_window[0]:.2f}-{r.grasper_window[1]:.2f}",
                f"{r.cartesian_dev[0]:.0f}-{r.cartesian_dev[1]:.0f}",
                f"{r.cartesian_window[0]:.2f}-{r.cartesian_window[1]:.2f}",
                r.n_injections,
                f"{r.block_drops} ({r.block_drop_pct:.0f}%)",
                f"{r.dropoff_failures} ({r.dropoff_pct:.0f}%)",
                r.wrong_positions,
            ]
        )
    totals = [
        "Total",
        "",
        "",
        "",
        sum(r.n_injections for r in rows),
        sum(r.block_drops for r in rows),
        sum(r.dropoff_failures for r in rows),
        sum(r.wrong_positions for r in rows),
    ]
    body.append(totals)
    return format_table(headers, body, title="Table III: fault injections on the Raven II")
