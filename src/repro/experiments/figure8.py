"""Paper Figure 8: example detection timeline.

Walks one held-out demonstration through the trained monitor and renders
the ground-truth vs predicted gesture sequence and the erroneous /
non-erroneous detections as an ASCII timeline, annotated with jitter and
reaction-time values — the semantics the timing metrics are defined by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pipeline import MonitorOutput
from ..core.reaction import evaluate_timing
from ..kinematics.trajectory import Trajectory
from .common import ExperimentScale, get_scale, train_suturing_fold


@dataclass
class Figure8Result:
    """One demonstration's timeline and its timing numbers."""

    trajectory: Trajectory
    output: MonitorOutput
    mean_reaction_ms: float
    mean_jitter_ms: dict[int, float]


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    demo_index: int = 0,
) -> Figure8Result:
    """Train one fold and monitor one of its held-out demonstrations.

    Picks the first held-out demonstration containing at least one
    erroneous gesture (so the timeline shows a reaction-time event),
    falling back to ``demo_index``.
    """
    preset = get_scale(scale)
    components = train_suturing_fold(preset, held_out_trial, seed=seed)
    monitor = components.monitor()
    demos = components.test.demonstrations
    chosen = demos[demo_index]
    for demo in demos:
        assert demo.trajectory.unsafe is not None
        if demo.trajectory.unsafe.any():
            chosen = demo
            break
    output = monitor.process(chosen.trajectory, bulk=True)
    timing = evaluate_timing([(chosen.trajectory, output)])
    jitter = {
        gesture: timing.mean_jitter_ms(gesture) for gesture in timing.jitter
    }
    return Figure8Result(
        trajectory=chosen.trajectory,
        output=output,
        mean_reaction_ms=timing.mean_reaction_ms(),
        mean_jitter_ms=jitter,
    )


def render(result: Figure8Result, width: int = 100) -> str:
    """ASCII timeline: gestures (truth vs predicted) and unsafe flags."""
    trajectory = result.trajectory
    output = result.output
    n = trajectory.n_frames
    stride = max(1, n // width)

    def gesture_track(labels: np.ndarray) -> str:
        symbols = []
        for t in range(0, n, stride):
            g = int(labels[t])
            symbols.append("?" if g <= 0 else _GESTURE_CHARS[g % len(_GESTURE_CHARS)])
        return "".join(symbols)

    def binary_track(flags: np.ndarray) -> str:
        return "".join(
            "#" if flags[t] else "." for t in range(0, n, stride)
        )

    assert trajectory.gestures is not None and trajectory.unsafe is not None
    lines = [
        f"Figure 8 timeline ({n} frames @ {trajectory.frame_rate_hz:.0f} Hz; "
        f"1 char ~ {stride} frames)",
        f"truth gestures: {gesture_track(trajectory.gestures)}",
        f"pred  gestures: {gesture_track(output.gestures)}",
        f"truth unsafe  : {binary_track(trajectory.unsafe)}",
        f"pred  unsafe  : {binary_track(output.unsafe_flags)}",
        f"mean reaction time: {result.mean_reaction_ms:+.0f} ms "
        "(positive = early detection)",
    ]
    for gesture, jitter in sorted(result.mean_jitter_ms.items()):
        if not np.isnan(jitter):
            lines.append(f"  G{gesture} mean jitter: {jitter:+.0f} ms")
    return "\n".join(lines)


#: Single-character symbols for gesture tracks (index = gesture % len).
_GESTURE_CHARS = "0123456789abcdef"
