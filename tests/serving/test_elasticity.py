"""Tests for live fleet elasticity: session migration, add/remove/resize.

The tentpole invariant: a fleet resized mid-stream (K=2→4→1) emits an
event stream **bit-identical, order included,** to a static single
:class:`MonitorService` under the reference backend (the compiled
backend matches gestures/flags/order exactly and scores within its
documented ``atol=1e-6``, exactly like the pre-existing K>=2 parity
matrix).  Plus the building blocks: session export/import on the core
engine, the npz session codec, minimal-slice rebalancing on
``add_shard``, the last-shard guard, capacity pre-checks, the asyncio
``resize`` and the :class:`MonitorAutoscaler` hysteresis actuator.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError, DatasetError, ShapeError, WorkerError
from repro.serving import (
    AsyncShardedMonitor,
    MonitorAutoscaler,
    MonitorService,
    ServiceStats,
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    session_from_bytes,
    session_to_bytes,
)

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


def make_fleet(n_sessions, base_seed=100, frames=40, step=5):
    return {
        f"proc-{i}": make_random_walk_trajectory(
            frames + step * i, n_features=N_FEATURES, seed=base_seed + i
        )
        for i in range(n_sessions)
    }


def event_key(event):
    return (event.session_id, event.frame_index, event.gesture, event.score, event.flag)


def loose_key(event):
    return (event.session_id, event.frame_index, event.gesture, event.flag)


class TestSessionExportImport:
    """MonitorService.export_session / import_session, in process."""

    def test_export_import_resumes_bit_identically(self, monitor):
        trajectory = make_random_walk_trajectory(
            50, n_features=N_FEATURES, seed=10
        )
        reference = MonitorService(monitor, max_sessions=4)
        reference.open_session("s")
        reference.feed("s", trajectory.frames)
        ref_events = reference.drain()
        ref_result = reference.close_session("s")

        source = MonitorService(monitor, max_sessions=4)
        source.open_session("s")
        source.feed("s", trajectory.frames)
        events = []
        for _ in range(23):
            events += source.tick()
        state = source.export_session("s", remove=True)
        assert state.pending_frames == 50 - 23
        target = MonitorService(monitor, max_sessions=4)
        target.import_session(state)
        events += target.drain()
        result = target.close_session("s")

        assert [event_key(e) for e in events] == [
            event_key(e) for e in ref_events
        ]
        assert np.array_equal(result.gestures, ref_result.gestures)
        assert np.array_equal(result.unsafe_scores, ref_result.unsafe_scores)
        assert np.array_equal(result.unsafe_flags, ref_result.unsafe_flags)

    def test_export_without_remove_is_a_consistent_copy(self, monitor):
        trajectory = make_random_walk_trajectory(
            30, n_features=N_FEATURES, seed=11
        )
        service = MonitorService(monitor, max_sessions=4)
        service.open_session("s")
        service.feed("s", trajectory.frames)
        for _ in range(10):
            service.tick()
        state = service.export_session("s")
        # The source keeps serving, unaffected by the copy...
        source_events = service.drain()
        # ...and a clone resumed from the copy produces the same tail.
        clone = MonitorService(monitor, max_sessions=4)
        clone.import_session(state)
        clone_events = clone.drain()
        assert [event_key(e) for e in clone_events] == [
            event_key(e) for e in source_events
        ]

    def test_export_remove_frees_the_slot(self, monitor):
        service = MonitorService(monitor, max_sessions=1)
        service.open_session("a")
        service.feed("a", np.zeros((3, N_FEATURES)))
        service.export_session("a", remove=True)
        with pytest.raises(DatasetError):
            service.feed("a", np.zeros((1, N_FEATURES)))
        service.open_session("b")  # the slot is reusable immediately

    def test_never_fed_session_migrates(self, monitor):
        source = MonitorService(monitor, max_sessions=2)
        source.open_session("idle")
        state = source.export_session("idle", remove=True)
        assert state.n_features is None
        assert state.gesture_window is None
        target = MonitorService(monitor, max_sessions=2)
        target.import_session(state)
        trajectory = make_random_walk_trajectory(
            12, n_features=N_FEATURES, seed=12
        )
        target.feed("idle", trajectory.frames)
        result_events = target.drain()
        assert [e.frame_index for e in result_events] == list(range(12))

    def test_record_timeline_false_is_preserved(self, monitor):
        source = MonitorService(monitor, max_sessions=2)
        source.open_session("s", record_timeline=False)
        source.feed("s", np.zeros((8, N_FEATURES)))
        for _ in range(3):
            source.tick()
        state = source.export_session("s", remove=True)
        assert not state.record_timeline
        assert state.gestures.size == 0
        target = MonitorService(monitor, max_sessions=2)
        target.import_session(state)
        target.drain()
        assert target.close_session("s").n_frames == 0

    def test_export_unknown_session_raises(self, monitor):
        service = MonitorService(monitor, max_sessions=2)
        with pytest.raises(DatasetError):
            service.export_session("ghost")

    def test_import_duplicate_and_full_service_rejected(self, monitor):
        source = MonitorService(monitor, max_sessions=2)
        source.open_session("s")
        source.feed("s", np.zeros((2, N_FEATURES)))
        state = source.export_session("s")
        with pytest.raises(ConfigurationError, match="already open"):
            source.import_session(state)
        full = MonitorService(monitor, max_sessions=1)
        full.open_session("other")
        with pytest.raises(ConfigurationError, match="slots"):
            full.import_session(state)

    def test_import_mismatched_width_rejected(self):
        narrow = make_synthetic_monitor(n_features=4, seed=1)
        source = MonitorService(narrow, max_sessions=2)
        source.open_session("s")
        source.feed("s", np.zeros((6, 4)))
        state = source.export_session("s", remove=True)
        wide = MonitorService(
            make_synthetic_monitor(n_features=6, seed=1), max_sessions=2
        )
        with pytest.raises(ShapeError):
            wide.import_session(state)
        # The failed import must leave no half-opened session behind.
        assert wide.n_open_sessions == 0
        wide.open_session("fresh")


class TestSessionCodec:
    """session_to_bytes / session_from_bytes round trips."""

    def test_round_trip_preserves_every_field(self, monitor):
        service = MonitorService(monitor, max_sessions=4)
        service.open_session("codec")
        service.feed(
            "codec",
            make_random_walk_trajectory(
                20, n_features=N_FEATURES, seed=13
            ).frames,
        )
        for _ in range(9):
            service.tick()
        state = service.export_session("codec")
        restored = session_from_bytes(session_to_bytes(state))
        assert restored.session_id == state.session_id
        assert restored.frames_done == state.frames_done
        assert restored.record_timeline == state.record_timeline
        assert restored.current_gesture == state.current_gesture
        assert restored.current_score == state.current_score
        assert np.array_equal(restored.gestures, state.gestures)
        assert np.array_equal(restored.scores, state.scores)
        assert np.array_equal(restored.pending, state.pending)
        assert restored.n_features == state.n_features
        for name in ("gesture_window", "error_window"):
            ours, theirs = getattr(state, name), getattr(restored, name)
            assert np.array_equal(ours.buffer, theirs.buffer)
            assert ours.seen == theirs.seen
            assert ours.since_emit == theirs.since_emit

    def test_foreign_version_rejected(self, monitor):
        import io
        import json

        service = MonitorService(monitor, max_sessions=2)
        service.open_session("s")
        blob = session_to_bytes(service.export_session("s"))
        with np.load(io.BytesIO(blob)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
        meta["version"] = 99
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ).copy()
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        with pytest.raises(ConfigurationError, match="version"):
            session_from_bytes(buffer.getvalue())


class TestResizeParity:
    """The headline guarantee: resize mid-stream changes nothing."""

    @pytest.mark.parametrize("backend", ["reference", "compiled"])
    def test_resize_2_4_1_matches_static_service(self, monitor, backend):
        fleet = make_fleet(8, base_seed=700, frames=45, step=3)
        static = MonitorService(monitor, max_sessions=8, backend=backend)
        for session_id, trajectory in fleet.items():
            static.open_session(session_id)
            static.feed(session_id, trajectory.frames)
        static_events = static.drain()
        static_results = {sid: static.close_session(sid) for sid in fleet}

        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=16, backend=backend
        ) as service:
            for session_id, trajectory in fleet.items():
                service.open_session(session_id)
                service.feed(session_id, trajectory.frames)
            events = []
            for _ in range(12):
                events += service.tick()
            up = service.resize(4)
            assert (up["from"], up["to"]) == (2, 4)
            assert service.n_shards == 4
            for _ in range(12):
                events += service.tick()
            down = service.resize(1)
            assert (down["from"], down["to"]) == (4, 1)
            assert service.n_shards == 1
            events += service.drain()
            assert not service.failed_sessions
            results = {sid: service.close_session(sid) for sid in fleet}

        if backend == "reference":
            # Bit-identical, order included — migration moved the exact
            # ring contents, pending frames and sticky context.
            assert [event_key(e) for e in events] == [
                event_key(e) for e in static_events
            ]
            for sid in fleet:
                assert np.array_equal(
                    results[sid].unsafe_scores,
                    static_results[sid].unsafe_scores,
                )
                assert np.array_equal(
                    results[sid].gestures, static_results[sid].gestures
                )
        else:
            # Compiled scores depend on batch composition (documented
            # atol=1e-6 contract); everything discrete stays exact.
            assert [loose_key(e) for e in events] == [
                loose_key(e) for e in static_events
            ]
            np.testing.assert_allclose(
                [e.score for e in events],
                [e.score for e in static_events],
                atol=1e-6,
            )

    def test_resize_with_interleaved_feeds(self, monitor):
        """Frames fed *between* resizes (to sessions that migrated) keep
        flowing to the right worker and the right ring state."""
        trajectory = make_random_walk_trajectory(
            60, n_features=N_FEATURES, seed=720
        )
        expected = []
        for _, gesture, score, _ in monitor.stream(trajectory):
            expected.append((gesture, score))
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            service.open_session("theatre")
            chunks = np.array_split(trajectory.frames, 4)
            collected = []
            for k, chunk in enumerate(chunks):
                service.feed("theatre", chunk)
                collected += service.tick()  # leave a backlog mid-flight
                service.resize(4 if k % 2 == 0 else 2)
            collected += service.drain()
            result = service.close_session("theatre")
        assert [e.frame_index for e in collected] == list(range(60))
        assert [(e.gesture, e.score) for e in collected] == expected
        assert np.array_equal(
            result.unsafe_scores, np.asarray([s for _, s in expected])
        )


class TestElasticShardLifecycle:
    def test_add_shard_moves_only_the_minimal_slice(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=32
        ) as service:
            sids = [service.open_session(f"slice-{i}") for i in range(16)]
            before = {sid: service.shard_of(sid) for sid in sids}
            new_index = service.add_shard()
            assert new_index == 2  # indices are never reused
            assert service.n_shards == 3
            moved = 0
            for sid in sids:
                after = service.shard_of(sid)
                if after != before[sid]:
                    # Consistent hashing: a placement only ever moves to
                    # the *new* shard, never between survivors.
                    assert after == new_index
                    moved += 1
            assert 0 < moved < len(sids)

    def test_remove_last_shard_raises_worker_error(self, monitor):
        """Regression: a zero-shard service must be unreachable — the
        last live shard refuses removal with a WorkerError-family error
        and keeps serving."""
        with ShardedMonitorService(
            monitor, n_shards=1, max_sessions_per_shard=4
        ) as service:
            sid = service.open_session("only")
            service.feed(sid, np.zeros((3, N_FEATURES)))
            with pytest.raises(WorkerError, match="last live shard"):
                service.remove_shard(0)
            # Still fully alive and serving.
            assert service.n_shards == 1
            assert len(service.drain()) == 3
            assert service.close_session(sid).n_frames == 3

    def test_resize_validates_target(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=1, max_sessions_per_shard=2
        ) as service:
            with pytest.raises(ConfigurationError):
                service.resize(0)
            summary = service.resize(1)  # no-op resize is fine
            assert summary["migrated"] == 0
            assert summary["added"] == [] and summary["removed"] == []

    def test_remove_shard_full_target_rejected_and_recovers(self, monitor):
        """A scale-down that cannot fit raises before any state is lost:
        the ring is restored and every session keeps serving."""
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=2
        ) as service:
            opened = []
            i = 0
            # Fill both shards to capacity (placement is by hash, so
            # probe ids until every slot is taken).
            while len(opened) < 4 and i < 200:
                try:
                    opened.append(service.open_session(f"fill-{i}"))
                except ConfigurationError:
                    pass
                i += 1
            assert len(opened) == 4, "could not fill both shards"
            for sid in opened:
                service.feed(sid, np.zeros((2, N_FEATURES)))
            victim = service.shard_of(opened[0])
            with pytest.raises(ConfigurationError, match="full"):
                service.remove_shard(victim)
            # The shard is still serving and placements still work.
            assert victim in service.shard_indices
            assert service.n_open_sessions == 4
            assert len(service.drain()) == 8
            assert not service.failed_sessions

    def test_resize_is_rejected_after_close(self, monitor):
        service = ShardedMonitorService(
            monitor, n_shards=1, max_sessions_per_shard=2
        )
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.resize(2)
        with pytest.raises(ConfigurationError, match="closed"):
            service.add_shard()


class TestAsyncResize:
    def test_session_rides_through_resize(self, monitor):
        trajectory = make_random_walk_trajectory(
            45, n_features=N_FEATURES, seed=730
        )

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=8
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    sid = await frontend.open_session("ride")
                    chunks = np.array_split(trajectory.frames, 3)
                    await frontend.feed(sid, chunks[0])
                    collected = []

                    async def pump(n):
                        async for event in frontend.events():
                            collected.append(event)
                            if len(collected) >= n:
                                return

                    await pump(5)
                    summary = await frontend.resize(4)
                    assert frontend.n_shards == 4
                    await frontend.feed(sid, chunks[1])
                    await pump(20)
                    await frontend.resize(1)
                    assert frontend.n_shards == 1
                    await frontend.feed(sid, chunks[2])
                    await pump(45)
                    result = await frontend.close_session(sid)
                    return collected, result, summary

        collected, result, summary = asyncio.run(run())
        assert summary["from"] == 2 and summary["to"] == 4
        assert [e.frame_index for e in collected] == list(range(45))
        gestures, scores = [], []
        for _, gesture, score, _ in monitor.stream(trajectory):
            gestures.append(gesture)
            scores.append(score)
        assert [e.gesture for e in collected] == gestures
        assert [e.score for e in collected] == scores
        assert np.array_equal(result.unsafe_scores, np.asarray(scores))


def stats_with_p99(tick_ms: float, n_ticks: int = 50) -> ServiceStats:
    stats = ServiceStats(capacity=max(n_ticks, 1))
    for _ in range(n_ticks):
        stats.record(tick_ms, 4)
    return stats


class TestAutoscaler:
    """The actuator loop over suggest_shard_count, driven via step()."""

    def _hot(self, k):  # p99 of 2x the high watermark -> suggest 2k
        return {i: stats_with_p99(33.3) for i in range(k)}

    def _in_band(self, k):
        return {i: stats_with_p99(8.0) for i in range(k)}

    def test_applies_after_consecutive_agreement(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=8
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    sid = await frontend.open_session("scaled")
                    await frontend.feed(
                        sid,
                        make_random_walk_trajectory(
                            20, n_features=N_FEATURES, seed=740
                        ).frames,
                    )
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=2, cooldown_s=0.0, max_shards=8
                    )
                    first = await scaler.step(self._hot(2))
                    assert first is None  # streak of 1 < consecutive=2
                    assert service.n_shards == 2
                    second = await scaler.step(self._hot(2))
                    assert second == 4  # applied
                    assert service.n_shards == 4
                    assert len(scaler.resize_events) == 1
                    event = scaler.resize_events[0]
                    assert event["trigger"] == "autoscaler"
                    assert (event["from"], event["to"]) == (2, 4)
                    # The session survived the autoscaled resize.
                    await frontend.drain()
                    result = await frontend.close_session(sid)
                    return result

        result = asyncio.run(run())
        assert result.n_frames == 20

    def test_in_band_resets_the_streak(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=2, cooldown_s=0.0
                    )
                    assert await scaler.step(self._hot(2)) is None
                    assert await scaler.step(self._in_band(2)) is None
                    # The interruption reset the streak: one more hot
                    # sample is again not enough.
                    assert await scaler.step(self._hot(2)) is None
                    assert service.n_shards == 2
                    assert scaler.resize_events == []

        asyncio.run(run())

    def test_cooldown_blocks_back_to_back_resizes(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=1, cooldown_s=3600.0, max_shards=8
                    )
                    assert await scaler.step(self._hot(2)) == 4
                    # Immediately hot again: suggestion repeats but the
                    # cooldown gate holds the fleet steady.
                    assert await scaler.step(self._hot(4)) is None
                    assert service.n_shards == 4
                    assert len(scaler.resize_events) == 1

        asyncio.run(run())

    def test_overcap_fleet_is_not_shrunk_under_load(self, monitor):
        """A fleet already above max_shards whose load asks for MORE
        capacity must be held where it is — the clamp must never turn a
        scale-up recommendation into a scale-down."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=3, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=1, cooldown_s=0.0, max_shards=2
                    )
                    # Hot: the raw recommendation is > 3, the clamp says
                    # 2 — applying it would shrink an overloaded fleet.
                    assert await scaler.step(self._hot(3)) is None
                    assert service.n_shards == 3
                    assert scaler.resize_events == []
                    # A genuinely idle fleet still scales down normally.
                    idle = {i: ServiceStats(capacity=4) for i in range(3)}
                    assert await scaler.step(idle) == 1
                    assert service.n_shards == 1

        asyncio.run(run())

    def test_cooldown_boundary_exactly_at_threshold_applies(self, monitor):
        """The cooldown gate is a strict ``<``: a step landing exactly at
        (or a hair past) the cooldown boundary applies, one clearly
        inside it holds.  Driven by pinning ``_last_applied`` against
        the loop clock — no sleeps, no flakiness."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend,
                        consecutive=1,
                        cooldown_s=3600.0,
                        max_shards=8,
                    )
                    loop = asyncio.get_running_loop()
                    # Still 0.5 s inside the window: blocked (the step
                    # itself runs in far less than the margin).
                    scaler._last_applied = loop.time() - 3600.0 + 0.5
                    assert await scaler.step(self._hot(2)) is None
                    assert service.n_shards == 2
                    # Exactly at the boundary: the elapsed time is >=
                    # cooldown_s by the time the gate evaluates, so the
                    # resize goes through.
                    scaler._last_applied = loop.time() - 3600.0
                    assert await scaler.step(self._hot(2)) == 4
                    assert service.n_shards == 4

        asyncio.run(run())

    def test_single_shard_floor_never_breached(self, monitor):
        """An idle 1-shard fleet must stay at 1 — the policy floor means
        the actuator never even proposes 0, no matter how long the idle
        streak runs."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=1, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=1, cooldown_s=0.0
                    )
                    idle = {0: ServiceStats(capacity=4)}
                    for _ in range(5):
                        assert await scaler.step(idle) is None
                    assert service.n_shards == 1
                    assert scaler.resize_events == []

        asyncio.run(run())

    def test_flapping_load_never_applies(self, monitor):
        """Alternating hot/idle samples disagree on the target every
        evaluation, so with consecutive=2 the streak never matures and
        the fleet never moves — the hysteresis exists exactly for this
        oscillation."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend, consecutive=2, cooldown_s=0.0, max_shards=8
                    )
                    idle = {i: ServiceStats(capacity=4) for i in range(2)}
                    for _ in range(4):
                        # Hot proposes 4, idle proposes 1: each sample
                        # restarts the other's streak at 1 < 2.
                        assert await scaler.step(self._hot(2)) is None
                        assert await scaler.step(idle) is None
                    assert service.n_shards == 2
                    assert scaler.resize_events == []

        asyncio.run(run())

    def test_constructor_validation(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=1, max_sessions_per_shard=2
            ) as service:
                frontend = AsyncShardedMonitor(service)
                with pytest.raises(ConfigurationError):
                    MonitorAutoscaler(frontend, interval_s=0.0)
                with pytest.raises(ConfigurationError):
                    MonitorAutoscaler(frontend, consecutive=0)
                with pytest.raises(ConfigurationError):
                    MonitorAutoscaler(frontend, cooldown_s=-1.0)
                with pytest.raises(ConfigurationError):
                    MonitorAutoscaler(frontend, min_shards=4, max_shards=2)

        asyncio.run(run())

    def test_background_loop_applies_resize(self, monitor):
        """The self-driving loop: a persistently hot fleet is scaled up
        without anyone calling step()."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=8
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    scaler = MonitorAutoscaler(
                        frontend,
                        interval_s=0.05,
                        consecutive=1,
                        cooldown_s=0.0,
                        max_shards=4,
                    )
                    # Make the policy see a hot fleet regardless of real
                    # load: feed synthetic stats through a stub.
                    real_stats = frontend.shard_stats

                    async def hot_stats():
                        return {
                            i: stats_with_p99(33.3)
                            for i in range(service.n_shards)
                        }

                    frontend.shard_stats = hot_stats
                    try:
                        async with scaler:
                            deadline = (
                                asyncio.get_running_loop().time() + 10.0
                            )
                            while (
                                service.n_shards < 4
                                and asyncio.get_running_loop().time()
                                < deadline
                            ):
                                await asyncio.sleep(0.02)
                    finally:
                        frontend.shard_stats = real_stats
                    return service.n_shards, len(scaler.resize_events)

        n_shards, n_events = asyncio.run(run())
        assert n_shards == 4
        assert n_events >= 1

    def test_gateway_autoscale_requires_fleet(self, monitor):
        from repro.serving import MonitorGateway

        with pytest.raises(ConfigurationError, match="n_shards >= 2"):
            MonitorGateway(monitor, n_shards=1, autoscale_interval_s=1.0)
        with pytest.raises(ConfigurationError, match="> 0"):
            MonitorGateway(monitor, n_shards=2, autoscale_interval_s=0.0)
