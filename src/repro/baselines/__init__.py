"""Gesture-recognition comparators for paper Table IV.

The paper compares its stacked-LSTM gesture classifier against two
kinematics-only methods from the literature:

- **SC-CRF** (Lea et al., 2015): a skip-chain conditional random field
  capturing transitions over longer frame horizons.  Reimplemented here
  as a :class:`~repro.baselines.sccrf.SkipChainCRF` — a structured
  perceptron with frame unaries, chain transitions and skip transitions,
  decoded with Viterbi + skip refinement.
- **SDSDL** (Sefati et al., 2015): shared discriminative sparse
  dictionary learning.  Reimplemented as
  :class:`~repro.baselines.sdsdl.SDSDL` — dictionary learning (MOD
  updates + orthogonal matching pursuit) with a one-vs-rest linear SVM
  on the sparse codes.

Both are simplified relative to the original systems but exercise the
same model families, so the Table IV comparison retains its meaning.
"""

from .dictionary import DictionaryLearner, omp_encode
from .sccrf import SkipChainCRF
from .sdsdl import SDSDL
from .svm import LinearSVM

__all__ = [
    "DictionaryLearner",
    "LinearSVM",
    "SDSDL",
    "SkipChainCRF",
    "omp_encode",
]
