"""Ablation benchmark: error-detection window size (design choice).

The paper uses window 5 for Suturing and 10 for Block Transfer; this
ablation sweeps the window length for the Suturing error-classification
step with perfect boundaries, quantifying the design choice DESIGN.md
calls out.
"""

from conftest import run_once

from repro.eval.reports import format_table
from repro.experiments import table5
from repro.experiments.common import get_scale
from repro.jigsaws.synthesis import make_suturing_dataset


def test_ablation_error_window(benchmark, scale):
    preset = get_scale(scale)
    dataset = make_suturing_dataset(n_demos=preset.suturing_demos, rng=0)

    def sweep():
        from repro.config import WindowConfig
        from repro.experiments.table5 import _evaluate_setup

        train, test = dataset.split_by_trials(2)
        out = []
        for window in (3, 5, 10):
            metrics = _evaluate_setup(
                train,
                test,
                preset,
                architecture="conv",
                features="CRG",
                gesture_specific=True,
                seed=0,
                window=WindowConfig(window, 1),
            )
            out.append((window, metrics))
        return out

    results = run_once(benchmark, sweep)
    print()
    rows = [
        [w, f"{m.tpr:.2f}", f"{m.tnr:.2f}", f"{m.ppv:.2f}", f"{m.npv:.2f}", f"{m.f1:.2f}"]
        for w, m in results
    ]
    print(
        format_table(
            ["window", "TPR", "TNR", "PPV", "NPV", "F1"],
            rows,
            title="Ablation: error-classifier window size (Suturing, CRG, conv)",
        )
    )
    # Every window length must produce a functioning detector.
    for __, metrics in results:
        assert max(metrics.tpr, metrics.tnr) > 0.5
