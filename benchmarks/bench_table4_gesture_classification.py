"""Benchmark: regenerate paper Table IV (gesture classification, LOSO).

Trains the stacked LSTM on all four tasks plus the SC-CRF/SDSDL
comparators on Suturing and prints per-task accuracy.  Expected shape:
Block Transfer easiest, Needle-Passing hardest, comparators competitive
with the LSTM on Suturing.
"""

from conftest import run_once

from repro.experiments import table4


def test_table4_gesture_classification(benchmark, scale):
    rows = run_once(benchmark, lambda: table4.run(scale=scale, seed=0))
    print()
    print(table4.render(rows))

    by_task = {
        r.task: r.accuracy for r in rows if r.method.startswith("stacked")
    }
    # Paper shape: Block Transfer > Suturing > Needle Passing.
    assert by_task["block_transfer"] > by_task["suturing"] - 0.02
    assert by_task["suturing"] > by_task["needle_passing"]
    # Everything clears chance (1/15) by a wide margin.
    assert min(by_task.values()) > 0.4
