"""Tests for repro.gestures.vocabulary."""

import pytest

from repro.errors import GestureError
from repro.gestures.vocabulary import (
    GESTURE_DESCRIPTIONS,
    Gesture,
    N_GESTURE_CLASSES,
)


class TestGesture:
    def test_numbering(self):
        assert int(Gesture.G3) == 3
        assert Gesture.G3.class_index == 2

    def test_from_class_index_round_trip(self):
        for g in Gesture:
            assert Gesture.from_class_index(g.class_index) is g

    def test_from_class_index_rejects_out_of_range(self):
        with pytest.raises(GestureError):
            Gesture.from_class_index(15)
        with pytest.raises(GestureError):
            Gesture.from_class_index(-1)

    @pytest.mark.parametrize("spec", [3, "3", "G3", "g3", " g3 ", Gesture.G3])
    def test_parse_variants(self, spec):
        assert Gesture.parse(spec) is Gesture.G3

    @pytest.mark.parametrize("spec", ["Gx", "sixteen", 0, 16])
    def test_parse_rejects(self, spec):
        with pytest.raises(GestureError):
            Gesture.parse(spec)

    def test_str(self):
        assert str(Gesture.G11) == "G11"

    def test_vocabulary_size(self):
        assert N_GESTURE_CLASSES == 15
        assert len(list(Gesture)) == 15

    def test_descriptions_cover_vocabulary(self):
        assert set(GESTURE_DESCRIPTIONS) == set(Gesture)
