"""The JIGSAWS surgical gesture vocabulary (paper Table II).

Gestures are the atomic units of the operational context.  The paper uses
the standard JIGSAWS vocabulary G1..G11 for Suturing plus G12 (and the
one-hot output of the gesture classifier spans indices 0..14, i.e. G1..G15,
of which G13..G15 are unused by the two tasks studied).
"""

from __future__ import annotations

from enum import IntEnum

from ..errors import GestureError

#: Size of the one-hot gesture output ("a one-hot vector of all gestures
#: from 0 to 14" — paper Equation 2).
N_GESTURE_CLASSES = 15

#: Sentinel used by Markov chains for the virtual start state.
START_TOKEN = 0

#: Sentinel used by Markov chains for the virtual end state.
END_TOKEN = -1


class Gesture(IntEnum):
    """JIGSAWS gesture indices.

    The integer value is the conventional gesture number (``Gesture.G3 ==
    3``).  ``class_index`` converts to the zero-based classifier output
    index.
    """

    G1 = 1
    G2 = 2
    G3 = 3
    G4 = 4
    G5 = 5
    G6 = 6
    G7 = 7
    G8 = 8
    G9 = 9
    G10 = 10
    G11 = 11
    G12 = 12
    G13 = 13
    G14 = 14
    G15 = 15

    @property
    def class_index(self) -> int:
        """Zero-based index used in one-hot classifier outputs."""
        return int(self) - 1

    @classmethod
    def from_class_index(cls, index: int) -> "Gesture":
        """Inverse of :attr:`class_index`."""
        try:
            return cls(index + 1)
        except ValueError as exc:
            raise GestureError(f"invalid gesture class index {index}") from exc

    @classmethod
    def parse(cls, value: "int | str | Gesture") -> "Gesture":
        """Parse ``3``, ``"G3"``, ``"g3"`` or a :class:`Gesture`."""
        if isinstance(value, Gesture):
            return value
        if isinstance(value, str):
            text = value.strip().upper()
            if text.startswith("G"):
                text = text[1:]
            try:
                value = int(text)
            except ValueError as exc:
                raise GestureError(f"cannot parse gesture {value!r}") from exc
        try:
            return cls(int(value))
        except ValueError as exc:
            raise GestureError(f"invalid gesture number {value}") from exc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"G{int(self)}"


#: Descriptions from paper Table II (G7 is absent from the Suturing task;
#: G13..G15 are part of the vocabulary but not used by the studied tasks).
GESTURE_DESCRIPTIONS: dict[Gesture, str] = {
    Gesture.G1: "Reaching for needle with right hand",
    Gesture.G2: "Positioning needle",
    Gesture.G3: "Pushing needle through the tissue",
    Gesture.G4: "Transferring needle from left to right",
    Gesture.G5: "Moving to center with needle in grip",
    Gesture.G6: "Pulling suture with left hand",
    Gesture.G7: "Pulling suture with right hand",
    Gesture.G8: "Orienting needle",
    Gesture.G9: "Using right hand to help tighten suture",
    Gesture.G10: "Loosening more suture",
    Gesture.G11: "Dropping suture and moving to end points",
    Gesture.G12: "Reaching for needle with left hand",
    Gesture.G13: "Making C loop around right instrument",
    Gesture.G14: "Reaching for suture with right instrument",
    Gesture.G15: "Pulling suture with both hands",
}
