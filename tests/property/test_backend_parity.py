"""Property test: compiled plans match the reference on random models.

Sweeps randomised trained models — conv / LSTM / dense mixes, random
widths and windows, both probability heads, scalers fitted on random
data — and asserts the float64 :class:`CompiledBackend` reproduces
:class:`ReferenceBackend` probabilities within the documented
``atol=1e-6`` contract (including the chunked oversize-batch path), for
every architecture the serving engine can host.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.backends import CompiledBackend, ReferenceBackend

MAX_BATCH = 8


def build_model(arch, window, features, widths, n_out, use_bn, seed):
    layers = []
    if arch == "conv":
        for filters in widths:
            layers.append(nn.Conv1D(filters, kernel_size=3, padding="same"))
            layers.append(nn.ReLU())
        if use_bn:
            layers.append(nn.BatchNorm())
        layers.append(nn.GlobalAveragePool1D())
    elif arch == "lstm":
        for i, units in enumerate(widths):
            layers.append(nn.LSTM(units, return_sequences=i < len(widths) - 1))
        if use_bn:
            layers.append(nn.BatchNorm())
    else:  # dense-first time-distributed head
        layers.append(nn.Dense(widths[0]))
        layers.append(nn.Tanh())
        layers.append(nn.Flatten())
    layers.append(nn.Dense(4))
    layers.append(nn.ReLU())
    layers.append(nn.Dropout(0.25))
    layers.append(nn.Dense(n_out))
    model = nn.Sequential(layers, seed=seed)
    model.build((window, features))
    loss = (
        nn.SigmoidBinaryCrossEntropy() if n_out == 1 else nn.SoftmaxCrossEntropy()
    )
    model.compile(loss, nn.Adam(1e-3))
    return model


@given(
    arch=st.sampled_from(["conv", "lstm", "dense"]),
    window=st.integers(3, 8),
    features=st.integers(2, 8),
    widths=st.lists(st.integers(2, 10), min_size=1, max_size=2),
    n_out=st.sampled_from([1, 3, 7]),
    use_bn=st.booleans(),
    seed=st.integers(0, 2**16),
    batch=st.integers(1, 2 * MAX_BATCH + 3),
)
@settings(max_examples=40, deadline=None)
def test_compiled_matches_reference_within_contract(
    arch, window, features, widths, n_out, use_bn, seed, batch
):
    model = build_model(arch, window, features, widths, n_out, use_bn, seed)
    rng = np.random.default_rng(seed)
    scaler = nn.StandardScaler().fit(
        rng.standard_normal((32, window, features)) * 1.5 + 0.5
    )
    bn = next((x for x in model.layers if isinstance(x, nn.BatchNorm)), None)
    if bn is not None:
        # Trained-looking running statistics, not the build-time 0/1.
        bn.running_mean[...] = rng.standard_normal(bn.running_mean.shape)
        bn.running_var[...] = rng.random(bn.running_var.shape) + 0.1
    x = rng.standard_normal((batch, window, features)) * 2.0

    reference = ReferenceBackend(scaler, model)
    compiled = CompiledBackend(scaler, model, max_batch=MAX_BATCH)
    np.testing.assert_allclose(
        compiled.predict_proba(x), reference.predict_proba(x), atol=1e-6
    )
