"""Integration tests: full paths through the system, both platforms."""

import numpy as np
import pytest

from repro.config import MonitorConfig, TrainingConfig, WindowConfig
from repro.core import (
    ErrorClassifierLibrary,
    SafetyMonitor,
    evaluate_timing,
)
from repro.core.error_classifiers import ErrorClassifierConfig
from repro.core.gesture_classifier import GestureClassifierConfig
from repro.eval import auc_score
from repro.experiments.common import make_blocktransfer_dataset
from repro.faults import FaultInjector, FaultSpec, FaultWindow, GrasperAngleFault
from repro.faults.outcomes import gesture_error_labels
from repro.gestures.vocabulary import Gesture
from repro.simulation import PhysicsOutcome, RavenSimulator
from repro.simulation.teleop import DEFAULT_OPERATORS
from repro.simulation.blocktransfer import generate_demonstration


class TestSuturingEndToEnd:
    def test_pipeline_beats_chance_on_held_out(
        self, tiny_gesture_classifier, tiny_library, suturing_split
    ):
        __, test = suturing_split
        monitor = SafetyMonitor(
            tiny_gesture_classifier,
            tiny_library,
            MonitorConfig(
                gesture_window=WindowConfig(5, 1), error_window=WindowConfig(5, 1)
            ),
        )
        scores, labels = [], []
        for demo in test.demonstrations:
            out = monitor.process(demo.trajectory)
            scores.append(out.unsafe_scores)
            labels.append(demo.trajectory.unsafe)
        y = np.concatenate(labels)
        s = np.concatenate(scores)
        assert auc_score(y, s) > 0.6

    def test_context_specific_beats_baseline_with_perfect_boundaries(
        self, tiny_library, tiny_baseline, suturing_split
    ):
        """The paper's headline claim at test scale (perfect boundaries)."""
        __, test = suturing_split
        data = test.windows(WindowConfig(5, 1))
        probs_ctx = np.zeros(data.n_windows)
        for class_idx in np.unique(data.gesture):
            gesture = Gesture.from_class_index(int(class_idx))
            mask = data.gesture == class_idx
            probs_ctx[mask] = tiny_library.predict_proba(gesture, data.x[mask])
        probs_base = tiny_baseline.predict_proba(data.x)
        auc_ctx = auc_score(data.unsafe, probs_ctx)
        auc_base = auc_score(data.unsafe, probs_base)
        # Allow slack at this tiny scale, but context must not lose badly.
        assert auc_ctx > auc_base - 0.05

    def test_timing_report_complete(
        self, tiny_gesture_classifier, tiny_library, suturing_split
    ):
        __, test = suturing_split
        monitor = SafetyMonitor(
            tiny_gesture_classifier,
            tiny_library,
            MonitorConfig(
                gesture_window=WindowConfig(5, 1), error_window=WindowConfig(5, 1)
            ),
        )
        pairs = [
            (d.trajectory, monitor.process(d.trajectory))
            for d in test.demonstrations
        ]
        report = evaluate_timing(pairs)
        assert report.reactions  # some erroneous gestures are detected
        assert 0.0 <= report.early_detection_pct() <= 100.0


class TestRavenEndToEnd:
    def test_fault_to_detection_roundtrip(self):
        """Inject a fault, observe the physical failure, verify the
        resulting dataset trains a detector that flags the faulty run."""
        base = generate_demonstration(
            DEFAULT_OPERATORS[0], rng=0, sample_rate_hz=30.0
        )
        simulator = RavenSimulator(camera=None, rng=0)
        injector = FaultInjector()
        spec = FaultSpec(grasper=GrasperAngleFault(1.3, FaultWindow(0.55, 0.70)))
        faulty = injector.inject(base, spec)
        result = simulator.run(faulty, record_video=False)
        assert result.outcome == PhysicsOutcome.BLOCK_DROP
        labels = gesture_error_labels(result)
        assert labels.any()
        trajectory = result.kinematics_trajectory()
        # The unsafe interval must overlap the injection window.
        mask = result.metadata["fault_mask"]
        assert (labels & mask).any()
        assert trajectory.n_features == 38

    @pytest.mark.slow
    def test_blocktransfer_monitor_detects_faults(self):
        dataset = make_blocktransfer_dataset("smoke", seed=3)
        train, test = dataset.split_by_trials(2)
        window = WindowConfig(10, 2)
        data = train.windows(window)
        config = ErrorClassifierConfig(
            architecture="conv",
            hidden=(12,),
            dense_units=8,
            training=TrainingConfig(learning_rate=1e-3, max_epochs=6, batch_size=128),
            max_train_windows=4000,
        )
        library = ErrorClassifierLibrary(config, seed=0)
        library.fit(data)
        te = test.windows(window)
        probs = np.zeros(te.n_windows)
        for class_idx in np.unique(te.gesture):
            gesture = Gesture.from_class_index(int(class_idx))
            mask = te.gesture == class_idx
            probs[mask] = library.predict_proba(gesture, te.x[mask])
        if len(np.unique(te.unsafe)) == 2:
            assert auc_score(te.unsafe, probs) > 0.6


class TestExperimentsSmoke:
    @pytest.mark.slow
    def test_table5_smoke(self, suturing_dataset):
        from repro.experiments import table5

        rows = table5.run(
            scale="smoke",
            dataset=suturing_dataset,
            grid=(
                ("gesture-specific", "conv", "CRG"),
                ("non-gesture-specific", "conv", "CRG"),
            ),
        )
        assert len(rows) == 2
        text = table5.render(rows)
        assert "TPR" in text

    @pytest.mark.slow
    def test_figure3_recovers_chain(self, suturing_dataset):
        from repro.experiments import figure3

        results = figure3.run(scale="smoke", suturing=suturing_dataset,
                              block_transfer=_tiny_bt())
        suturing_result = results[0]
        assert suturing_result.mean_abs_probability_error < 0.15
        block_result = results[1]
        assert block_result.mean_abs_probability_error < 0.01

    @pytest.mark.slow
    def test_figure5_runs(self, suturing_dataset):
        from repro.experiments import figure5

        result = figure5.run(scale="smoke", dataset=suturing_dataset)
        assert result.matrix.shape[0] >= 2


def _tiny_bt():
    return make_blocktransfer_dataset("smoke", seed=5, n_fault_free=6)
