"""Paper Table VII: per-gesture erroneous-gesture classifier performance.

Reports, per gesture class and task: train/test window counts, error
prevalence, and the AUC of the gesture's classifier on held-out data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import WindowConfig
from ..core import ErrorClassifierLibrary
from ..eval.reports import format_table
from ..eval.roc import auc_score
from ..gestures.vocabulary import Gesture
from ..jigsaws.dataset import SurgicalDataset
from ..jigsaws.synthesis import make_suturing_dataset
from .common import ExperimentScale, get_scale, make_blocktransfer_dataset


@dataclass
class Table7Row:
    """Per-gesture classifier performance."""

    task: str
    gesture: Gesture
    train_size: int
    train_error_pct: float
    test_size: int
    test_error_pct: float
    auc: float


def _rows_for_task(
    task: str,
    dataset: SurgicalDataset,
    preset: ExperimentScale,
    window: WindowConfig,
    held_out_trial: int,
    seed: int,
) -> list[Table7Row]:
    train, test = dataset.split_by_trials(held_out_trial)
    tr = train.windows(window)
    te = test.windows(window)
    library = ErrorClassifierLibrary(preset.error_config("conv"), seed=seed)
    library.fit(tr)
    rows: list[Table7Row] = []
    for class_idx in np.unique(tr.gesture):
        gesture = Gesture.from_class_index(int(class_idx))
        tr_sub = tr.for_gesture(gesture)
        te_sub = te.for_gesture(gesture)
        auc = float("nan")
        if (
            library.has_classifier(gesture)
            and te_sub.n_windows > 0
            and len(np.unique(te_sub.unsafe)) == 2
        ):
            probs = library.predict_proba(gesture, te_sub.x)
            auc = auc_score(te_sub.unsafe, probs)
        rows.append(
            Table7Row(
                task=task,
                gesture=gesture,
                train_size=tr_sub.n_windows,
                train_error_pct=100.0 * float(tr_sub.unsafe.mean()) if tr_sub.n_windows else 0.0,
                test_size=te_sub.n_windows,
                test_error_pct=100.0 * float(te_sub.unsafe.mean()) if te_sub.n_windows else 0.0,
                auc=auc,
            )
        )
    return rows


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
    suturing: SurgicalDataset | None = None,
    block_transfer: SurgicalDataset | None = None,
) -> list[Table7Row]:
    """Per-gesture rows for both tasks (Suturing first, as in the paper)."""
    preset = get_scale(scale)
    if suturing is None:
        suturing = make_suturing_dataset(n_demos=preset.suturing_demos, rng=seed)
    rows = _rows_for_task(
        "suturing", suturing, preset, WindowConfig(5, 1), held_out_trial, seed
    )
    if block_transfer is None:
        block_transfer = make_blocktransfer_dataset(preset, seed=seed)
    rows += _rows_for_task(
        "block_transfer",
        block_transfer,
        preset,
        WindowConfig(10, 1),
        held_out_trial,
        seed,
    )
    return rows


def render(rows: list[Table7Row]) -> str:
    """ASCII rendering of the per-gesture table."""
    headers = ["Task", "Gesture", "Train", "%Err", "Test", "%Err ", "AUC"]
    body = [
        [
            r.task,
            str(r.gesture),
            r.train_size,
            f"{r.train_error_pct:.0f}",
            r.test_size,
            f"{r.test_error_pct:.0f}",
            "n/a" if np.isnan(r.auc) else f"{r.auc:.2f}",
        ]
        for r in rows
    ]
    return format_table(
        headers, body, title="Table VII: per-gesture erroneous-gesture classifiers"
    )
