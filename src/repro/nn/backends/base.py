"""The inference-backend protocol behind the serving tick engine.

Every model invocation on the serving hot path — the gesture stage's
``predict`` and each error classifier's ``predict_proba`` inside
:meth:`repro.serving.MonitorService.tick` — goes through an
:class:`InferenceBackend` bound to one trained ``(scaler, model)`` pair.
Two implementations exist:

- :class:`~repro.nn.backends.reference.ReferenceBackend` — wraps
  ``scaler.transform`` + ``Sequential.predict_proba`` exactly as the
  engine called them before backends existed.  Bit-exact, batch-size
  invariant, the default: every existing parity guarantee
  (stream ≡ process ≡ service ≡ sharded) holds under it unchanged.
- :class:`~repro.nn.backends.compiled.CompiledBackend` — compiles the
  pair into a flat inference plan: the scaler's affine folded into the
  first layer's weights, preallocated scratch buffers so steady-state
  calls allocate no array data, fused LSTM gates, no training branches
  or dtype coercions, optional float32 execution.  Matches the
  reference within ``atol=1e-6`` in float64 mode (it trades the
  bit-exact einsum contraction for BLAS throughput).

Backends hold per-call scratch state and are **not** thread-safe; a
:class:`~repro.serving.MonitorService` owns one backend per model and
ticks from a single thread (one per worker process when sharded).
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ..model import Sequential
from ..preprocessing import StandardScaler

#: Names accepted wherever a backend choice is wired through the serving
#: stack (``MonitorService``, ``SafetyMonitor.stream``,
#: ``ShardedMonitorService``, monitor snapshots).
BACKEND_NAMES = ("reference", "compiled", "compiled-f32")

#: The backend used when none is chosen: bit-exact and batch-invariant.
DEFAULT_BACKEND = "reference"


def validate_backend_name(name: str) -> str:
    """Return ``name`` if it is a known backend, raise otherwise."""
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown inference backend {name!r}; choose one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    return name


class InferenceBackend:
    """One trained ``(scaler, model)`` pair behind a uniform predict API.

    ``windows`` arguments are **raw** (unscaled) kinematics windows of
    shape ``(batch, window, n_features)``; standardisation is the
    backend's job (folded into the weights, for the compiled plan).

    Returned arrays may alias internal scratch buffers: they are valid
    until the next call on the same backend — consume or copy first.
    """

    #: The :data:`BACKEND_NAMES` entry this implementation answers to.
    name: str = "abstract"

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of raw windows."""
        raise NotImplementedError

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Hard predictions: argmax (multi-class) or 0.5 threshold."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Bulk offline scoring (repro.serving.bulk)
    # ------------------------------------------------------------------
    def forward_bulk(self, windows: np.ndarray) -> np.ndarray:
        """Probabilities for an arbitrarily large batch, one fused pass.

        The offline entry point: where :meth:`predict_proba` is sized
        for the serving tick (scratch capped at ``max_batch``, oversize
        calls chunked), ``forward_bulk`` is sized for *every window of a
        whole recorded procedure at once* — one GEMM per Dense stage,
        LSTM steps batched across all windows.  The base implementation
        delegates to :meth:`predict_proba` (already a single full-batch
        pass for the reference backend); compiled backends override it
        to run a bulk-sized plan instead of ``max_batch`` chunks.

        The same aliasing contract as :meth:`predict_proba` applies:
        the result may reuse internal scratch and is valid until the
        next call on this backend.
        """
        return self.predict_proba(windows)

    def score_bulk(self, windows: np.ndarray) -> np.ndarray:
        """Hard predictions for an arbitrarily large batch, one pass.

        The :meth:`predict` counterpart of :meth:`forward_bulk`.
        """
        return self.predict(windows)


def make_backend(
    name: str,
    scaler: StandardScaler,
    model: Sequential,
    max_batch: int = 64,
) -> InferenceBackend:
    """Build the named backend for one trained ``(scaler, model)`` pair.

    Parameters
    ----------
    name:
        One of :data:`BACKEND_NAMES`.
    scaler / model:
        The fitted scaler and built, compiled model to serve.
    max_batch:
        Scratch-buffer batch capacity for compiled backends (the serving
        engine passes its ``max_sessions``).  Larger inputs are served
        in chunks — correct, but off the zero-allocation fast path.
    """
    from .compiled import CompiledBackend
    from .reference import ReferenceBackend

    validate_backend_name(name)
    if name == "reference":
        return ReferenceBackend(scaler, model)
    dtype = np.float32 if name == "compiled-f32" else np.float64
    return CompiledBackend(scaler, model, max_batch=max_batch, dtype=dtype)
