"""Quickstart: train and run the context-aware safety monitor.

This walks the full path of the paper on a small synthetic Suturing
dataset: synthesise demonstrations, train the two pipeline stages
(gesture classifier + per-gesture error classifiers), assemble the
SafetyMonitor and evaluate it on a held-out demonstration.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import MonitorConfig, TrainingConfig, WindowConfig
from repro.core import ErrorClassifierLibrary, GestureClassifier, SafetyMonitor
from repro.core.error_classifiers import ErrorClassifierConfig
from repro.core.gesture_classifier import GestureClassifierConfig
from repro.eval import auc_score, f1_score
from repro.jigsaws import make_suturing_dataset


def main() -> None:
    # 1. Data: 15 synthetic Suturing demonstrations with rubric errors
    #    (see repro.jigsaws for the paper's error model), split LOSO.
    print("Synthesising Suturing demonstrations ...")
    dataset = make_suturing_dataset(n_demos=15, rng=0)
    train, test = dataset.split_by_trials(held_out_trial=2)
    total, erroneous = dataset.erroneous_gesture_counts()
    print(f"  {len(dataset)} demos, {total} gestures, {erroneous} erroneous")

    window = WindowConfig(window=5, stride=1)

    # 2. Stage 1 — operational context: a stacked-LSTM gesture classifier.
    print("Training the gesture classifier (stacked LSTM) ...")
    gesture_classifier = GestureClassifier(
        GestureClassifierConfig(
            lstm_units=(32, 16),
            dense_units=16,
            window=window,
            training=TrainingConfig(max_epochs=8, batch_size=128),
            max_train_windows=8000,
        ),
        seed=0,
    )
    gesture_classifier.fit(train)
    print(f"  held-out gesture accuracy: {gesture_classifier.accuracy(test):.3f}")

    # 3. Stage 2 — the library of gesture-specific error classifiers.
    print("Training the erroneous-gesture classifier library (1D-CNNs) ...")
    library = ErrorClassifierLibrary(
        ErrorClassifierConfig(
            architecture="conv",
            hidden=(16, 8),
            dense_units=8,
            training=TrainingConfig(max_epochs=10, batch_size=128),
            max_train_windows=4000,
        ),
        seed=1,
    )
    library.fit(train.windows(window))
    print(f"  classifiers for: {', '.join(str(g) for g in library.gestures())}")

    # 4. Assemble and evaluate the online monitor.
    monitor = SafetyMonitor(
        gesture_classifier,
        library,
        MonitorConfig(gesture_window=window, error_window=window),
    )
    scores, labels = [], []
    for demo in test.demonstrations:
        output = monitor.process(demo.trajectory)
        scores.append(output.unsafe_scores)
        labels.append(demo.trajectory.unsafe)
    y = np.concatenate(labels)
    s = np.concatenate(scores)
    print("Held-out monitoring performance:")
    print(f"  AUC = {auc_score(y, s):.3f}")
    print(f"  F1  = {f1_score(y, (s >= 0.5).astype(int)):.3f}")

    # 5. Stream one demonstration frame by frame (online deployment).
    demo = test.demonstrations[0]
    alerts = 0
    for frame, gesture, unsafe_prob, latency_ms in monitor.stream(
        demo.trajectory.slice(0, 120)
    ):
        if unsafe_prob >= 0.5:
            alerts += 1
    print(f"Streaming demo: {alerts} alert frames in the first 120 frames")


if __name__ == "__main__":
    main()
