"""The network front door: an asyncio TCP gateway over the serving stack.

:class:`MonitorGateway` accepts client connections speaking the
length-prefixed binary protocol (:mod:`~repro.serving.remote.protocol`)
and routes their sessions into an embedded serving engine — a single
in-process :class:`~repro.serving.service.MonitorService` for
``n_shards=1``, or a :class:`~repro.serving.sharded.ShardedMonitorService`
behind an :class:`~repro.serving.async_frontend.AsyncShardedMonitor` for
a multi-worker fleet.  Either way a session fed over the wire reproduces
the local engine's :class:`SessionEvent` stream bit for bit, frame order
included (``tests/serving/test_remote.py`` locks this in for K ∈ {1, 2}
under both inference backends).

Flow control and failure semantics:

- **Backpressure** — every connection owns a bounded send queue drained
  by one writer task (which coalesces queued messages into single
  socket writes).  A consumer that stops reading fills the TCP window,
  then the queue; on overflow the gateway disconnects that client (one
  slow dashboard must never stall the monitoring of every theatre) and
  fails its sessions safe.  Ingest-side backpressure is TCP itself:
  clients feeding faster than the engine drains block in
  ``writer.drain()`` / ``socket.sendall``.
- **Heartbeats and idle timeouts** — the gateway pings every
  ``heartbeat_interval_s``; clients echo (both SDKs do automatically).
  A connection silent past ``idle_timeout_s`` is treated as dead.
- **Fail-safe disconnects** — when a client vanishes (EOF, reset, idle
  timeout, queue overflow), its sessions are *drained* (already-fed
  frames are processed, never dropped) and closed, and one terminal
  :class:`SessionEvent` per session with ``error`` set and ``flag=True``
  is recorded at the gateway (:attr:`MonitorGateway.failsafe_events`,
  :attr:`MonitorGateway.failed_sessions`) — the PR 2 contract: a lost
  monitor reads as unsafe, never as silently safe.  A shard worker
  crash surfaces the same way *and* is pushed to the owning client as
  an EVENT with ``error`` set.
- **Session resume** (``resume_grace_s > 0``) — disconnects *park* the
  session instead (engine state exported through the migration codec,
  in-flight events folded into a replay history); a client returning
  within the grace window presents its resume token, replays frames
  from the acked seq the RESUME reply names, and receives the events
  it missed before any live one — zero lost frames, no duplicates.
  Accepted frame batches are acked (v2 ACK) and journaled, which also
  turns a shard worker crash into a transparent re-open-and-replay
  instead of a terminal event.  An unresumed park falls back to the
  fail-safe contract when the window lapses.  See ``docs/remote.md``.

``gateway_stats()`` aggregates the engine's per-shard
:meth:`shard_stats` with connection/session/queue-depth counters; the
STATS wire message returns it to any client.  See ``docs/remote.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import secrets
import threading
import time
from collections import deque
from collections.abc import AsyncIterator
from typing import TYPE_CHECKING

from ...errors import ConfigurationError, ProtocolError, ReproError, WorkerError
from ...nn.backends import DEFAULT_BACKEND, validate_backend_name
from ..async_frontend import AsyncShardedMonitor
from ..autoscaler import MonitorAutoscaler
from ..balancer import MonitorBalancer
from ..service import MonitorService, ServiceStats, SessionEvent
from ..sharded import ShardedMonitorService
from ..telemetry import TelemetryRegistry
from ..snapshot import (
    monitor_from_bytes,
    session_from_bytes,
    session_to_bytes,
    snapshot_backend,
)
from .protocol import (
    HEADER_SIZE,
    PROTOCOL_VERSION,
    MessageType,
    decode_frames,
    decode_header,
    decode_json,
    encode_ack,
    encode_events,
    encode_json,
    encode_message,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..eventstore import EventStoreWriter

#: Sentinel ending an engine's event stream / a connection's writer task.
_CLOSED = object()

#: Messages a writer task coalesces into one socket write at most.
_WRITE_BATCH = 64


class _LocalEngine:
    """Async serving engine over one in-process :class:`MonitorService`.

    The K=1 topology: no worker processes, no pipes — one background
    ticker task advances the service whenever frames are pending (tick
    compute runs on the executor so the event loop keeps accepting
    ingest), mirroring the surface of :class:`AsyncShardedMonitor` that
    the gateway routes through.
    """

    def __init__(
        self, service: MonitorService, poll_interval_s: float = 0.2
    ) -> None:
        self.service = service
        self.poll_interval_s = poll_interval_s
        self._queue: asyncio.Queue = asyncio.Queue()
        self._lock = asyncio.Lock()
        self._kick = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._failure: str | None = None

    async def start(self) -> None:
        self._task = asyncio.create_task(
            self._tick_loop(), name="gateway-local-ticker"
        )

    async def _call(self, fn, *args):
        async with self._lock:
            return await asyncio.get_running_loop().run_in_executor(
                None, fn, *args
            )

    async def _tick_loop(self) -> None:
        try:
            while not self._closed:
                self._kick.clear()
                # Read the backlog state under the same lock the executor
                # calls mutate the session registry under — an unlocked
                # has_pending would iterate the dict mid-open/close.
                async with self._lock:
                    pending = self.service.has_pending
                if not pending:
                    # Timeout is the idle-poll path, not an error.
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._kick.wait(), timeout=self.poll_interval_s
                        )
                    continue
                events = await self._call(self.service.tick)
                for event in events:
                    self._queue.put_nowait(event)
                # Let ingest and the event pump run between busy ticks.
                await asyncio.sleep(0)
        except Exception as exc:  # noqa: BLE001 - a dead ticker must fail safe
            # The sharded path converts a broken worker into fail-safe
            # crash events; the embedded engine owes its sessions the
            # same — a monitor that silently stops flagging is the one
            # outcome the serving contract forbids.
            self._failure = (
                f"local engine tick failed: {type(exc).__name__}: {exc}"
            )
            async with self._lock:
                for session_id in self.service.session_ids:
                    self._queue.put_nowait(
                        SessionEvent(
                            session_id=session_id,
                            frame_index=self.service.frames_done(session_id),
                            gesture=0,
                            score=0.0,
                            flag=True,
                            error=self._failure,
                        )
                    )

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise WorkerError(self._failure)

    async def open_session(self, session_id: str | None, record_timeline: bool) -> str:
        self._check_failure()
        return await self._call(
            self.service.open_session, session_id, record_timeline
        )

    async def feed(self, session_id: str, frames) -> None:
        self._check_failure()
        await self._call(self.service.feed, session_id, frames)
        self._kick.set()

    async def close_session(self, session_id: str):
        self._check_failure()
        return await self._call(self.service.close_session, session_id)

    async def export_session(self, session_id: str) -> bytes:
        self._check_failure()
        return await self._call(self._export_blocking, session_id)

    def _export_blocking(self, session_id: str) -> bytes:
        return session_to_bytes(
            self.service.export_session(session_id, remove=True)
        )

    async def import_session(
        self, state: bytes, record_timeline: bool = True
    ) -> str:
        self._check_failure()
        session_id = await self._call(self._import_blocking, state)
        self._kick.set()  # imported state may carry pending frames
        return session_id

    def _import_blocking(self, state: bytes) -> str:
        return self.service.import_session(session_from_bytes(state))

    async def events(self) -> AsyncIterator[SessionEvent]:
        while True:
            event = await self._queue.get()
            if event is _CLOSED:
                return
            yield event

    async def shard_stats(self) -> dict[int, ServiceStats]:
        return {0: self.service.stats}

    async def telemetry(self) -> dict:
        return await self._call(self.service.telemetry.snapshot)

    async def resize(self, target_k: int) -> dict:
        raise ConfigurationError(
            "the embedded single-service engine cannot resize; start the "
            "gateway with n_shards >= 2 for an elastic fleet"
        )

    async def shed(self, session_ids: list[str], to_shard: int) -> dict[str, int]:
        raise ConfigurationError(
            "the embedded single-service engine has no shards to shed "
            "between; start the gateway with n_shards >= 2 for a "
            "load-balanced fleet"
        )

    async def aclose(self) -> None:
        self._closed = True
        self._kick.set()
        if self._task is not None:
            await self._task
        self._queue.put_nowait(_CLOSED)

    def shutdown_blocking(self) -> None:
        """Nothing to terminate: the engine lives in this process."""


class _ShardedEngine:
    """Async serving engine over a sharded fleet (K >= 2 topology)."""

    def __init__(
        self, service: ShardedMonitorService, frontend: AsyncShardedMonitor
    ) -> None:
        self.service = service
        self.frontend = frontend

    async def start(self) -> None:
        await self.frontend.start()

    async def open_session(self, session_id: str | None, record_timeline: bool) -> str:
        return await self.frontend.open_session(session_id, record_timeline)

    async def feed(self, session_id: str, frames) -> None:
        await self.frontend.feed(session_id, frames)

    async def close_session(self, session_id: str):
        return await self.frontend.close_session(session_id)

    async def export_session(self, session_id: str) -> bytes:
        return await self.frontend.export_session(session_id)

    async def import_session(
        self, state: bytes, record_timeline: bool = True
    ) -> str:
        return await self.frontend.import_session(state, record_timeline)

    def events(self) -> AsyncIterator[SessionEvent]:
        return self.frontend.events()

    async def shard_stats(self) -> dict[int, ServiceStats]:
        return await self.frontend.shard_stats()

    async def telemetry(self) -> dict:
        return await self.frontend.telemetry()

    async def resize(self, target_k: int) -> dict:
        return await self.frontend.resize(target_k)

    async def shed(self, session_ids: list[str], to_shard: int) -> dict[str, int]:
        return await self.frontend.shed(session_ids, to_shard)

    async def aclose(self) -> None:
        await self.frontend.aclose()

    def shutdown_blocking(self) -> None:
        """Terminate the fleet's worker processes (no orphans)."""
        self.service.close()


class _RemoteSession:
    """Gateway-side bookkeeping for one wire-opened session.

    With resume enabled (``resume_grace_s > 0``) a session additionally
    carries its durability state: the resume ``token`` handed to the
    client at OPEN, the ``journal`` of every accepted frame batch (the
    replay source for transparent worker-crash recovery), and the
    ``history`` ring of recently delivered events (the replay source
    for events a disconnected client never read).  ``recovering`` marks
    a session whose engine-side state died with a worker and is being
    rebuilt from the journal by a background task — incoming frames are
    journaled (and acked: the journal is what the ack promises) but not
    fed until the task catches up.
    """

    __slots__ = (
        "conn", "fed", "delivered", "flagged", "token", "journal",
        "history", "record_timeline", "recovering", "parking", "inflight",
    )

    def __init__(
        self, conn: "_Connection", record_timeline: bool = False
    ) -> None:
        self.conn = conn
        self.fed = 0  # frames accepted off the wire
        self.delivered = 0  # events routed back (== frames processed)
        self.flagged = 0  # events with flag=True
        self.token: str | None = None
        self.journal: list | None = None  # frame batches, oldest first
        self.history: deque | None = None  # recently delivered events
        self.record_timeline = record_timeline
        #: True while _park_session's export is in flight — the engine
        #: side is mid-removal, so a RESUME steal must wait for the
        #: park to land instead of re-binding a session whose engine
        #: state is about to vanish.
        self.parking = False
        self.recovering = False
        #: Number of FRAME batches currently awaiting their engine feed.
        #: While > 0, ``fed`` understates what the journal will hold
        #: once those handlers resume — a RESUME steal reading it now
        #: would report an acked_seq that makes the client re-send the
        #: in-flight batch past the duplicate filter.  Steals wait.
        self.inflight = 0


class _ParkedSession:
    """A disconnected session held for the resume grace window.

    ``state`` is the engine-exported :func:`session_to_bytes` archive
    (pending frames and window rings included), or ``None`` when the
    export was impossible — the owning worker was dead or mid-recovery
    — in which case the ``journal`` alone rebuilds the session (a *cold
    adopt*: re-open + replay, bit-identical because inference is
    deterministic).  Events that were in flight through the pump when
    the client vanished keep landing here (:meth:`absorb`), so the
    resume replay misses nothing.
    """

    __slots__ = (
        "token", "state", "journal", "history",
        "fed", "delivered", "flagged", "record_timeline",
        "reason", "expiry", "resuming",
    )

    def __init__(
        self,
        *,
        token: str,
        state: bytes | None,
        journal: list,
        history: deque,
        fed: int,
        delivered: int,
        flagged: int,
        record_timeline: bool,
        reason: str,
    ) -> None:
        self.token = token
        self.state = state
        self.journal = journal
        self.history = history
        self.fed = fed
        self.delivered = delivered
        self.flagged = flagged
        self.record_timeline = record_timeline
        self.reason = reason
        self.expiry: asyncio.TimerHandle | None = None
        self.resuming = False

    def absorb(self, event: SessionEvent) -> bool:
        """Fold an in-flight event into the parked counters/history.

        Terminal crash events are dropped (the journal makes the crash
        recoverable at resume time) and so are journal-replay
        duplicates — an event is new only at ``frame_index ==
        delivered``, events arriving one per frame in frame order.
        Returns whether the event was accepted (the caller tees
        accepted events into the durable log exactly once).
        """
        if event.error is not None or event.frame_index < self.delivered:
            return False
        self.delivered += 1
        if event.flag:
            self.flagged += 1
        self.history.append(event)
        return True


class _Connection:
    """One accepted client connection and its tasks/queues."""

    def __init__(
        self,
        conn_id: int,
        writer: asyncio.StreamWriter,
        send_queue_max: int,
    ) -> None:
        self.id = conn_id
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=send_queue_max)
        self.sessions: set[str] = set()
        self.last_recv = 0.0
        self.closed = False  # no further routing to this connection
        self.torn_down = False  # teardown ran (idempotence guard)
        self.heartbeat_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        #: Test hook: clearing this parks the writer task, letting the
        #: backpressure suite fill the send queue deterministically.
        self.writer_gate = asyncio.Event()
        self.writer_gate.set()

    def enqueue(self, data: bytes) -> bool:
        """Queue bytes for the writer task; False on overflow."""
        if self.closed:
            return True  # silently dropped; teardown is in flight
        try:
            self.queue.put_nowait(data)
        except asyncio.QueueFull:
            return False
        return True


class MonitorGateway:
    """Serve the safety monitor to remote clients over TCP.

    Parameters
    ----------
    monitor / monitor_bytes:
        Exactly one of a live trained :class:`SafetyMonitor` or a
        :func:`~repro.serving.snapshot.monitor_to_bytes` archive.
    n_shards:
        ``1`` embeds a single in-process :class:`MonitorService`;
        ``>= 2`` spawns a :class:`ShardedMonitorService` fleet behind an
        :class:`AsyncShardedMonitor`.
    max_sessions:
        Slot capacity of the engine — total for ``n_shards=1``, per
        shard otherwise (consistent hashing needs headroom, see
        ``docs/serving.md``).
    backend:
        Inference backend for the engine; ``None`` resolves to the
        choice embedded in ``monitor_bytes`` (via
        :func:`~repro.serving.snapshot.snapshot_backend`), falling back
        to ``"reference"`` — the same resolution the sharded service
        applies, so a snapshot's backend choice survives any number of
        gateway restarts.
    host / port:
        Bind address; port ``0`` picks a free port (read
        :attr:`port` after :meth:`start`).
    send_queue_max:
        Per-connection bounded send queue (messages).  Overflow — a
        consumer that stopped reading — disconnects that client.
    heartbeat_interval_s / idle_timeout_s:
        Gateway→client ping cadence, and how long a connection may stay
        silent before it is declared dead (fail-safe close).
    drain_timeout_s:
        How long a disconnect/close waits for a session's already-fed
        frames to finish processing before closing it anyway.
    data_plane:
        Data plane of the sharded engine (``n_shards >= 2`` only):
        ``"shm"`` (default) streams frames and events through per-shard
        shared-memory rings, ``"pipe"`` forces the ack-per-feed pipe
        plane (see :class:`ShardedMonitorService`).
    autoscale_interval_s / autoscale_max_shards:
        When ``autoscale_interval_s`` is set (requires ``n_shards >=
        2``), the gateway runs a
        :class:`~repro.serving.autoscaler.MonitorAutoscaler` over its
        fleet at that cadence, live-resizing within ``[1,
        autoscale_max_shards]``.  Every applied (or manual
        :meth:`resize`) resize is recorded and visible to STATS clients
        — socket sessions ride through resizes transparently, their
        frames migrating with them.
    balance_interval_s / balance_max_moves:
        When ``balance_interval_s`` is set (requires ``n_shards >= 2``),
        the gateway runs a
        :class:`~repro.serving.balancer.MonitorBalancer` over its fleet
        at that cadence — the *skew* level of the two-level controller:
        sessions are continuously shed off hot shards (at most
        ``balance_max_moves`` per cycle) through the same live-migration
        path resize uses, so socket sessions ride through sheds
        transparently too.  When both loops run they are cross-linked:
        a shed in flight defers a pending resize, and every applied
        resize resets the balancer's hysteresis.  Applied sheds (and
        manual :meth:`shed` calls) are recorded in :attr:`shed_events`,
        surfaced in STATS under ``"placement"``, and tee a ``"shed"``
        marker into the event store next to the resize markers.
    resume_grace_s / event_replay_max:
        ``resume_grace_s > 0`` enables session resume: a disconnected
        client's sessions are *parked* (engine state exported via the
        migration codec) for that many seconds instead of fail-safe
        closed, frame batches are acked (v2 ACK messages) and journaled
        — so a shard worker crash is recovered transparently by
        replaying the journal — and a reconnecting client presenting
        its resume token replays from its last-acked seq.
        ``event_replay_max`` bounds the per-session ring of delivered
        events kept for replaying what a vanished client never read.
        The default ``0.0`` keeps the fail-safe-on-disconnect contract.
        See ``docs/remote.md`` ("Session resume").
    event_store:
        Optional :class:`~repro.serving.eventstore.EventStoreWriter`
        the gateway tees its client-visible event stream into: every
        delivered event, every event absorbed into a parked session's
        replay history, every terminal fail-safe event, plus a marker
        per applied resize.  The tee happens at the gateway (the engine
        is built *without* a store), so the on-disk log replays the
        exact exactly-once stream clients saw — duplicates filtered,
        crash regenerations deduplicated.  The caller owns the writer's
        lifecycle (``close()`` it after ``stop()``); a full ring is a
        counted drop in the writer's stats, never a stalled gateway.
        See ``docs/observability.md``.

    Lifecycle: ``await start()`` → serve → ``await stop()`` (or use as
    an async context manager).  :meth:`serve_in_thread` bridges the
    gateway into synchronous programs via :class:`GatewayRunner`.
    """

    def __init__(
        self,
        monitor=None,
        *,
        monitor_bytes: bytes | None = None,
        n_shards: int = 1,
        max_sessions: int = 64,
        backend: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        send_queue_max: int = 1024,
        heartbeat_interval_s: float = 10.0,
        idle_timeout_s: float = 60.0,
        drain_timeout_s: float = 10.0,
        start_method: str | None = None,
        data_plane: str = "shm",
        autoscale_interval_s: float | None = None,
        autoscale_max_shards: int = 8,
        balance_interval_s: float | None = None,
        balance_max_moves: int = 8,
        resume_grace_s: float = 0.0,
        event_replay_max: int = 4096,
        event_store: "EventStoreWriter | None" = None,
    ) -> None:
        if (monitor is None) == (monitor_bytes is None):
            raise ConfigurationError("pass exactly one of monitor / monitor_bytes")
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        if send_queue_max < 2:
            raise ConfigurationError("send_queue_max must be >= 2")
        if heartbeat_interval_s <= 0 or drain_timeout_s <= 0:
            raise ConfigurationError("intervals/timeouts must be > 0")
        if idle_timeout_s is not None and idle_timeout_s <= heartbeat_interval_s:
            # A consumer-only client's sole traffic is echoing our
            # pings; a tighter idle bound would disconnect every
            # healthy-but-quiet connection.
            raise ConfigurationError(
                "idle_timeout_s must exceed heartbeat_interval_s (or be None)"
            )
        if backend is not None:
            backend = validate_backend_name(backend)
        if monitor_bytes is None:
            self.backend = backend or DEFAULT_BACKEND
        else:
            self.backend = validate_backend_name(
                backend or snapshot_backend(monitor_bytes) or DEFAULT_BACKEND
            )
        self._monitor = monitor
        self._monitor_bytes = monitor_bytes
        self.n_shards = int(n_shards)
        self.max_sessions = int(max_sessions)
        self.host = host
        self.port = int(port)  # rebound to the real port by start()
        self.send_queue_max = int(send_queue_max)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.idle_timeout_s = idle_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self._start_method = start_method
        self.data_plane = data_plane
        if autoscale_interval_s is not None:
            if autoscale_interval_s <= 0:
                raise ConfigurationError("autoscale_interval_s must be > 0")
            if n_shards < 2:
                raise ConfigurationError(
                    "autoscaling requires a sharded fleet (n_shards >= 2)"
                )
        self.autoscale_interval_s = autoscale_interval_s
        self.autoscale_max_shards = int(autoscale_max_shards)
        if balance_interval_s is not None:
            if balance_interval_s <= 0:
                raise ConfigurationError("balance_interval_s must be > 0")
            if n_shards < 2:
                raise ConfigurationError(
                    "load balancing requires a sharded fleet (n_shards >= 2)"
                )
        if balance_max_moves < 1:
            raise ConfigurationError("balance_max_moves must be >= 1")
        self.balance_interval_s = balance_interval_s
        self.balance_max_moves = int(balance_max_moves)
        if resume_grace_s < 0:
            raise ConfigurationError("resume_grace_s must be >= 0")
        if event_replay_max < 1:
            raise ConfigurationError("event_replay_max must be >= 1")
        self.resume_grace_s = float(resume_grace_s)
        self.event_replay_max = int(event_replay_max)
        self.event_store = event_store
        #: Sessions parked for the resume grace window, by session id.
        self._parked: dict[str, _ParkedSession] = {}
        self._autoscaler: MonitorAutoscaler | None = None
        self._balancer: MonitorBalancer | None = None
        #: Applied resizes (manual and autoscaler), oldest first —
        #: summary dicts surfaced to STATS clients by gateway_stats().
        self.resize_events: list[dict] = []
        #: Applied sheds (manual and balancer), oldest first — the
        #: placement-change records surfaced to STATS clients and teed
        #: into the event store as ``"shed"`` markers.
        self.shed_events: list[dict] = []

        self._engine = None
        self._server: asyncio.Server | None = None
        self._pump_task: asyncio.Task | None = None
        #: Strong references to fire-and-forget teardown tasks (the
        #: event loop only keeps weak ones; a GC'd teardown would leak
        #: the connection and skip its sessions' fail-safe closure).
        self._bg_tasks: set[asyncio.Task] = set()
        self._connections: dict[int, _Connection] = {}
        self._conn_ids = itertools.count()
        self._sessions: dict[str, _RemoteSession] = {}
        self._started = False
        self._stopped = False
        #: Monotonic construction instant backing :attr:`uptime_s` —
        #: lifetime counters in gateway_stats() are rates against this.
        self._started_at = time.monotonic()

        #: Terminal fail-safe events recorded at the gateway: client
        #: disconnects, idle timeouts, queue overflows, shard crashes,
        #: shutdown with live sessions.  ``error`` set, ``flag=True``.
        self.failsafe_events: list[SessionEvent] = []
        #: Session id -> reason, for every session that ended fail-safe.
        self.failed_sessions: dict[str, str] = {}

        # Lifetime counters surfaced by gateway_stats().
        self._connections_total = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._frames_received = 0
        self._events_sent = 0
        self._events_dropped = 0
        self._heartbeats_sent = 0
        self._overflow_disconnects = 0
        self._idle_disconnects = 0
        self._peak_open_sessions = 0
        self._peak_queue_depth = 0
        self._acks_sent = 0
        self._parked_total = 0
        self._resumed_total = 0
        self._resume_expired_total = 0
        self._recovered_total = 0

    @property
    def _resume_enabled(self) -> bool:
        return self.resume_grace_s > 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Build the engine, bind the socket; returns ``(host, port)``."""
        if self._started:
            raise ConfigurationError("gateway is already started")
        self._started = True
        loop = asyncio.get_running_loop()
        self._engine = await loop.run_in_executor(None, self._build_engine)
        try:
            await self._engine.start()
            if self.autoscale_interval_s is not None and isinstance(
                self._engine, _ShardedEngine
            ):
                self._autoscaler = MonitorAutoscaler(
                    self._engine.frontend,
                    interval_s=self.autoscale_interval_s,
                    max_shards=self.autoscale_max_shards,
                    on_resize=self._note_resize,
                )
                await self._autoscaler.start()
            if self.balance_interval_s is not None and isinstance(
                self._engine, _ShardedEngine
            ):
                self._balancer = MonitorBalancer(
                    self._engine.frontend,
                    interval_s=self.balance_interval_s,
                    max_moves=self.balance_max_moves,
                    on_shed=self._note_shed,
                )
                if self._autoscaler is not None:
                    # Cross-link the two controller levels: shed in
                    # flight defers a pending resize; an applied resize
                    # resets the balancer's hysteresis.
                    self._autoscaler.balancer = self._balancer
                await self._balancer.start()
            self._pump_task = asyncio.create_task(
                self._event_pump(), name="gateway-event-pump"
            )
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port
            )
        except BaseException:
            # A failed bind (port in use, ...) must not orphan a fleet
            # of already-spawned shard workers.
            await self._shutdown_engine()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def _shutdown_engine(self) -> None:
        """End the engine's tasks and terminate any worker processes."""
        if self._balancer is not None:
            await self._balancer.stop()
            self._balancer = None
        if self._autoscaler is not None:
            await self._autoscaler.stop()
            self._autoscaler = None
        if self._engine is None:
            return
        await self._engine.aclose()
        if self._pump_task is not None:
            await self._pump_task
        await asyncio.get_running_loop().run_in_executor(
            None, self._engine.shutdown_blocking
        )

    def _build_engine(self):
        """Blocking engine construction (model compile / worker spawn)."""
        if self.n_shards == 1:
            monitor = self._monitor
            if monitor is None:
                monitor = monitor_from_bytes(self._monitor_bytes)
            service = MonitorService(
                monitor, max_sessions=self.max_sessions, backend=self.backend
            )
            return _LocalEngine(service)
        service = ShardedMonitorService(
            self._monitor,
            n_shards=self.n_shards,
            max_sessions_per_shard=self.max_sessions,
            monitor_bytes=self._monitor_bytes,
            backend=self.backend,
            start_method=self._start_method,
            data_plane=self.data_plane,
        )
        return _ShardedEngine(service, AsyncShardedMonitor(service))

    async def stop(self) -> None:
        """Stop accepting, fail-safe every live connection, drain the
        engine's tasks and terminate any worker processes.  Idempotent."""
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            await self._teardown(conn, "gateway shutting down", allow_park=False)
        if self._bg_tasks:  # overflow teardowns / recoveries still in flight
            await asyncio.gather(*list(self._bg_tasks), return_exceptions=True)
        # Parked sessions cannot outlive the gateway: fail them safe now.
        for session_id in list(self._parked):
            self._expire_parked(session_id, reason="gateway shutting down")
        await self._shutdown_engine()

    async def __aenter__(self) -> "MonitorGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def serve_in_thread(self) -> "GatewayRunner":
        """Run this gateway on a dedicated event-loop thread (sync bridge)."""
        return GatewayRunner(self)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(next(self._conn_ids), writer, self.send_queue_max)
        conn.last_recv = asyncio.get_running_loop().time()
        self._connections[conn.id] = conn
        self._connections_total += 1
        conn.writer_task = asyncio.create_task(
            self._writer_loop(conn), name=f"gateway-writer-{conn.id}"
        )
        conn.heartbeat_task = asyncio.create_task(
            self._heartbeat_loop(conn), name=f"gateway-heartbeat-{conn.id}"
        )
        reason = "client disconnected"
        try:
            while not conn.closed:
                header = await reader.readexactly(HEADER_SIZE)
                msg_type, length = decode_header(header)
                payload = await reader.readexactly(length) if length else b""
                conn.last_recv = asyncio.get_running_loop().time()
                await self._dispatch(conn, msg_type, payload)
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            # EOF or reset: the fail-safe teardown below handles it, and
            # the close reason records what actually ended the stream.
            reason = f"client disconnected ({type(exc).__name__})"
        except ProtocolError as exc:
            reason = f"protocol violation: {exc}"
            self._send_error(conn, ProtocolError(str(exc)), None)
        except asyncio.CancelledError:  # pragma: no cover - loop shutdown
            raise
        finally:
            await self._teardown(conn, reason)

    async def _dispatch(
        self, conn: _Connection, msg_type: MessageType, payload: bytes
    ) -> None:
        if msg_type is MessageType.HEARTBEAT:
            return  # liveness only; last_recv is already refreshed
        if msg_type is MessageType.FRAME:
            await self._handle_frames(conn, payload)
            return
        if msg_type is MessageType.OPEN:
            await self._handle_open(conn, payload)
            return
        if msg_type is MessageType.CLOSE:
            await self._handle_close(conn, payload)
            return
        if msg_type is MessageType.RESUME:
            await self._handle_resume(conn, payload)
            return
        if msg_type is MessageType.STATS:
            stats = await self.gateway_stats()
            self._enqueue_or_overflow(
                conn, encode_message(MessageType.STATS, encode_json(stats))
            )
            return
        raise ProtocolError(f"unexpected client message type {msg_type.name}")

    async def _handle_open(self, conn: _Connection, payload: bytes) -> None:
        request = decode_json(payload)
        session_id = request.get("session_id")
        if session_id is not None and not isinstance(session_id, str):
            raise ProtocolError("OPEN session_id must be a string or null")
        record_timeline = bool(request.get("record_timeline", False))
        try:
            session_id = await self._engine.open_session(
                session_id, record_timeline
            )
        except ReproError as exc:
            self._send_error(conn, exc, session_id, MessageType.OPEN)
            return
        if conn.torn_down or conn.closed:
            # The connection died while the open was in flight; release
            # the engine slot instead of registering a zombie session
            # that no teardown will ever drain or fail safe.
            with contextlib.suppress(ReproError):
                await self._engine.close_session(session_id)
            return
        session = _RemoteSession(conn, record_timeline)
        ack: dict = {"session_id": session_id}
        if self._resume_enabled:
            session.token = secrets.token_hex(16)
            session.journal = []
            session.history = deque(maxlen=self.event_replay_max)
            ack["resume_token"] = session.token
        self._sessions[session_id] = session
        conn.sessions.add(session_id)
        self._sessions_opened += 1
        self._peak_open_sessions = max(
            self._peak_open_sessions, len(self._sessions)
        )
        self._enqueue_or_overflow(
            conn, encode_message(MessageType.OPEN, encode_json(ack))
        )

    async def _handle_frames(self, conn: _Connection, payload: bytes) -> None:
        session_id, seq, frames = decode_frames(payload)
        session = self._sessions.get(session_id)
        if session is None or session.conn is not conn:
            reason = self.failed_sessions.get(session_id)
            error = (
                WorkerError(f"session {session_id!r} failed: {reason}")
                if reason is not None and session is None
                else ProtocolError(
                    f"no session {session_id!r} open on this connection"
                )
            )
            self._send_error(conn, error, session_id)
            return
        if session.journal is not None:
            # Resume mode: validate the batch's position in the stream.
            # ``seq`` counts frames the client sent before this batch;
            # ``fed`` counts frames we accepted — a gap means frames were
            # lost in a way the protocol cannot repair.
            expected = session.fed
            if seq > expected:
                raise ProtocolError(
                    f"FRAME sequence gap for session {session_id!r}: "
                    f"got seq {seq}, expected {expected}"
                )
            if seq < expected:
                # A resume replay overlapping frames already accepted
                # before the disconnect: drop the duplicate prefix.
                overlap = expected - seq
                if overlap >= frames.shape[0]:
                    self._send_ack(conn, session_id, session.fed)
                    return
                frames = frames[overlap:]
            session.journal.append(frames)
            if session.recovering:
                # The recovery task replays the journal tail; feeding
                # the engine here would race it.  The journal is what
                # the ack promises, so acking now is honest.
                session.fed += frames.shape[0]
                self._frames_received += frames.shape[0]
                self._send_ack(conn, session_id, session.fed)
                return
        session.inflight += 1
        try:
            await self._engine.feed(session_id, frames)
        except ReproError as exc:
            if session.journal is not None:
                if isinstance(exc, WorkerError):
                    # Worker crash with resume on: the crash's terminal
                    # event triggers transparent journal recovery, and
                    # the journaled frames will be replayed — accept.
                    session.fed += frames.shape[0]
                    self._frames_received += frames.shape[0]
                    self._send_ack(conn, session_id, session.fed)
                    return
                session.journal.pop()  # client fault (shape, ...): rejected
            self._send_error(conn, exc, session_id)
            return
        finally:
            session.inflight -= 1
        session.fed += frames.shape[0]
        self._frames_received += frames.shape[0]
        if session.journal is not None:
            self._send_ack(conn, session_id, session.fed)

    def _send_ack(self, conn: _Connection, session_id: str, seq: int) -> None:
        self._enqueue_or_overflow(
            conn, encode_message(MessageType.ACK, encode_ack(session_id, seq))
        )
        self._acks_sent += 1

    async def _handle_close(self, conn: _Connection, payload: bytes) -> None:
        request = decode_json(payload)
        session_id = request.get("session_id")
        if not isinstance(session_id, str):
            raise ProtocolError("CLOSE session_id must be a string")
        session = self._sessions.get(session_id)
        if session is None or session.conn is not conn:
            reason = self.failed_sessions.get(session_id)
            error = (
                WorkerError(f"session {session_id!r} failed: {reason}")
                if reason is not None and session is None
                else ProtocolError(
                    f"no session {session_id!r} open on this connection"
                )
            )
            self._send_error(conn, error, session_id, MessageType.CLOSE)
            return
        await self._drain_session(session_id)
        try:
            await self._engine.close_session(session_id)
        except ReproError as exc:
            # A crash event for this session is (or will be) routed by
            # the pump; the close itself reports the failure.
            self._send_error(conn, exc, session_id, MessageType.CLOSE)
            return
        summary = {
            "session_id": session_id,
            "n_frames": session.delivered,
            "n_flagged": session.flagged,
        }
        self._unregister(session_id)
        self._sessions_closed += 1
        self._enqueue_or_overflow(
            conn, encode_message(MessageType.CLOSE, encode_json(summary))
        )

    async def _handle_resume(self, conn: _Connection, payload: bytes) -> None:
        """Adopt a parked session onto this connection.

        The client proves ownership with the resume token from its OPEN
        ack and reports ``last_event`` — how many events it received
        before the disconnect.  The reply carries ``acked_seq`` (frames
        the gateway durably holds; the client replays everything after
        it) and is followed by a replay of the events the client missed
        (delivered after its last read), in order, ahead of any live
        event — so the resumed stream is gapless and duplicate-free.
        """
        request = decode_json(payload)
        session_id = request.get("session_id")
        token = request.get("token")
        last_event = request.get("last_event", 0)
        if not isinstance(session_id, str) or not isinstance(token, str):
            raise ProtocolError("RESUME requires session_id and token strings")
        if not isinstance(last_event, int) or last_event < 0:
            raise ProtocolError("RESUME last_event must be a non-negative int")
        parked = self._parked.get(session_id)
        live = self._sessions.get(session_id)
        if (
            parked is None
            and live is not None
            and live.token is not None
            and not live.parking
            and live.inflight == 0
        ):
            # The session is still bound to another connection the
            # gateway has not yet noticed is dead (a half-open socket,
            # or an EOF teardown still queued).  The token is the proof
            # of ownership, so a valid RESUME *steals* the session onto
            # this connection instead of locking the client out until
            # the idle timeout parks it.  The engine side is untouched
            # — only the event route moves.  With a FRAME batch still
            # awaiting its engine feed (``inflight``), the acked_seq the
            # steal would report is stale — the client falls back to the
            # retryable no-parked-session error until the feed lands.
            self._resume_steal(conn, session_id, live, token, last_event)
            return
        if parked is None or parked.resuming:
            reason = self.failed_sessions.get(session_id)
            error = (
                WorkerError(f"session {session_id!r} failed: {reason}")
                if reason is not None and parked is None
                else ProtocolError(f"no parked session {session_id!r}")
            )
            self._send_error(conn, error, session_id, MessageType.RESUME)
            return
        if not secrets.compare_digest(token, parked.token):
            self._send_error(
                conn,
                ProtocolError(f"resume token mismatch for {session_id!r}"),
                session_id,
                MessageType.RESUME,
            )
            return
        if last_event > parked.delivered:
            self._send_error(
                conn,
                ProtocolError(
                    f"RESUME last_event {last_event} exceeds the "
                    f"{parked.delivered} events delivered for {session_id!r}"
                ),
                session_id,
                MessageType.RESUME,
            )
            return
        if parked.delivered - last_event > len(parked.history):
            # The client is further behind than the replay ring reaches;
            # resuming would silently skip events — fail safe instead.
            self._expire_parked(
                session_id,
                reason=(
                    f"resume replay window exceeded: client missed "
                    f"{parked.delivered - last_event} events, ring holds "
                    f"{len(parked.history)}"
                ),
            )
            self._send_error(
                conn,
                WorkerError(f"session {session_id!r} is beyond replay reach"),
                session_id,
                MessageType.RESUME,
            )
            return
        parked.resuming = True  # keep the map entry visible to the pump
        if parked.expiry is not None:
            parked.expiry.cancel()
            parked.expiry = None
        try:
            if parked.state is not None:
                await self._engine.import_session(
                    parked.state, parked.record_timeline
                )
            else:
                # Cold adopt: the engine-side state died with a worker.
                # Rebuild it from frame zero out of the journal — ticks
                # are deterministic, so the regenerated events are
                # bit-identical and the already-delivered prefix is
                # dropped by the replay-duplicate filter.
                await self._engine.open_session(
                    session_id, parked.record_timeline
                )
                replayed = 0
                while replayed < len(parked.journal):
                    await self._engine.feed(
                        session_id, parked.journal[replayed]
                    )
                    replayed += 1
        except ReproError as exc:
            self._parked.pop(session_id, None)
            self._record_failsafe(
                SessionEvent(
                    session_id=session_id,
                    frame_index=parked.delivered,
                    gesture=0,
                    score=0.0,
                    flag=True,
                    error=f"resume failed: {exc}",
                )
            )
            self._send_error(conn, exc, session_id, MessageType.RESUME)
            return
        if conn.torn_down or conn.closed:
            # The resumer vanished while the adopt was in flight: park
            # again (fresh export — the engine now owns the session)
            # rather than leak a session nobody tracks.
            try:
                parked.state = await self._engine.export_session(session_id)
            except ReproError:
                parked.state = None  # journal still covers a cold adopt
            parked.resuming = False
            self._schedule_expiry(session_id, parked)
            if self._stopped:
                self._expire_parked(session_id)
            return
        self._parked.pop(session_id, None)
        session = _RemoteSession(conn, parked.record_timeline)
        session.fed = parked.fed
        session.delivered = parked.delivered
        session.flagged = parked.flagged
        session.token = parked.token
        session.journal = parked.journal
        session.history = parked.history
        self._sessions[session_id] = session
        conn.sessions.add(session_id)
        missed = session.delivered - last_event
        history = list(session.history) if missed else []
        if missed > len(history):
            # Events absorbed while the adopt was in flight evicted ring
            # entries; the client can no longer be caught up gaplessly.
            self._record_failsafe(
                SessionEvent(
                    session_id=session_id,
                    frame_index=session.delivered,
                    gesture=0,
                    score=0.0,
                    flag=True,
                    error="resume replay window exceeded during adopt",
                )
            )
            self._send_error(
                conn,
                WorkerError(f"session {session_id!r} is beyond replay reach"),
                session_id,
                MessageType.RESUME,
            )
            self._unregister(session_id)
            with contextlib.suppress(ReproError):
                await self._engine.close_session(session_id)
            return
        self._resumed_total += 1
        self._peak_open_sessions = max(
            self._peak_open_sessions, len(self._sessions)
        )
        self._send_resume_reply(conn, session_id, session, missed, history)

    def _resume_steal(
        self,
        conn: _Connection,
        session_id: str,
        session: _RemoteSession,
        token: str,
        last_event: int,
    ) -> None:
        """Re-bind a still-registered session to a new connection.

        The engine never hears about it: frames keep flowing into the
        same engine session; only the event route and the frame source
        change.  The old connection loses ownership immediately — its
        later frames are rejected by the `_handle_frames` ownership
        check and its teardown skips the session (no park, no
        fail-safe)."""
        if not secrets.compare_digest(token, session.token):
            self._send_error(
                conn,
                ProtocolError(f"resume token mismatch for {session_id!r}"),
                session_id,
                MessageType.RESUME,
            )
            return
        if last_event > session.delivered:
            self._send_error(
                conn,
                ProtocolError(
                    f"RESUME last_event {last_event} exceeds the "
                    f"{session.delivered} events delivered for {session_id!r}"
                ),
                session_id,
                MessageType.RESUME,
            )
            return
        missed = session.delivered - last_event
        history = list(session.history) if missed else []
        if missed > len(history):
            # Beyond replay reach.  The session stays bound to its old
            # connection — when that dies for real, the normal park /
            # expiry lifecycle decides its fate.
            self._send_error(
                conn,
                WorkerError(f"session {session_id!r} is beyond replay reach"),
                session_id,
                MessageType.RESUME,
            )
            return
        old = session.conn
        if old is not conn:
            old.sessions.discard(session_id)
            session.conn = conn
            conn.sessions.add(session_id)
        self._resumed_total += 1
        self._send_resume_reply(conn, session_id, session, missed, history)

    def _send_resume_reply(
        self,
        conn: _Connection,
        session_id: str,
        session: _RemoteSession,
        missed: int,
        history: list,
    ) -> None:
        """The RESUME success reply, followed by the missed-event replay
        — ahead of anything live (the pump routes to this session only
        after the handler returns control to the loop, and the writer
        drains its queue in FIFO order)."""
        self._enqueue_or_overflow(
            conn,
            encode_message(
                MessageType.RESUME,
                encode_json(
                    {
                        "session_id": session_id,
                        "acked_seq": session.fed,
                        "delivered": session.delivered,
                        "resume_token": session.token,
                    }
                ),
            ),
        )
        for event in history[len(history) - missed :] if missed else []:
            self._enqueue_or_overflow(
                conn,
                encode_message(MessageType.EVENT, encode_events([event])),
            )
            self._events_sent += 1

    async def _drain_session(self, session_id: str) -> None:
        """Park until every accepted frame of a session has produced its
        event (bounded by ``drain_timeout_s``) — the *drain* half of the
        drain-and-close disconnect contract."""
        session = self._sessions.get(session_id)
        if session is None:
            return
        deadline = asyncio.get_running_loop().time() + self.drain_timeout_s
        while (
            session.delivered < session.fed
            and self._sessions.get(session_id) is session
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.002)

    async def _teardown(
        self, conn: _Connection, reason: str, allow_park: bool = True
    ) -> None:
        """Disconnect a client.

        Default contract: drain-and-close its sessions fail-safe.  With
        resume enabled (and ``allow_park``), sessions are parked for the
        grace window instead — no drain, no closure: the exported state
        carries the pending frames, and in-flight events keep landing in
        the parked history until a resume or expiry.
        """
        if conn.torn_down:
            return
        conn.torn_down = True
        conn.closed = True  # stop routing/replies to this connection now
        park = self._resume_enabled and allow_park and not self._stopped
        for session_id in list(conn.sessions):
            if park:
                await self._park_session(conn, session_id, reason)
                continue
            await self._drain_session(session_id)
            session = self._sessions.get(session_id)
            if session is None or session.conn is not conn:
                continue  # already ended (e.g. shard crash event)
            # Engine-side loss; the fail-safe event below stands.
            with contextlib.suppress(ReproError):
                await self._engine.close_session(session_id)
            self._record_failsafe(
                SessionEvent(
                    session_id=session_id,
                    frame_index=session.delivered,
                    gesture=0,
                    score=0.0,
                    flag=True,
                    error=reason,
                )
            )
            self._unregister(session_id)
        conn.sessions.clear()
        self._connections.pop(conn.id, None)
        if (
            conn.heartbeat_task is not None
            and conn.heartbeat_task is not asyncio.current_task()
        ):
            conn.heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await conn.heartbeat_task
        if conn.writer_task is not None:
            conn.writer_gate.set()
            try:
                conn.queue.put_nowait(_CLOSED)
            except asyncio.QueueFull:
                conn.writer_task.cancel()  # queue wedged; no orderly flush
            # A cancelled writer (queue wedged above) completing here is
            # the expected outcome, not an error.
            with contextlib.suppress(asyncio.CancelledError):
                try:
                    # A writer wedged in drain() against a non-reading
                    # peer must not wedge the teardown with it.
                    await asyncio.wait_for(
                        asyncio.shield(conn.writer_task), 5.0
                    )
                except asyncio.TimeoutError:
                    conn.writer_task.cancel()
            if not conn.writer_task.done():
                with contextlib.suppress(asyncio.CancelledError):
                    await conn.writer_task
        conn.writer.close()

    # ------------------------------------------------------------------
    # Session parking (resume grace window)
    # ------------------------------------------------------------------
    async def _park_session(
        self, conn: _Connection, session_id: str, reason: str
    ) -> None:
        """Export a disconnected session and hold it for the grace window."""
        session = self._sessions.get(session_id)
        if session is None or session.conn is not conn:
            return  # already ended (e.g. shard crash event)
        state: bytes | None = None
        if not session.recovering:
            session.parking = True
            # A mid-recovery session's engine state is a partial journal
            # replay — exporting it would drop the un-replayed tail, so
            # it parks cold (journal only) and the recovery task, seeing
            # the session unregistered, releases its half-open engine
            # side.
            try:
                state = await self._engine.export_session(session_id)
            except ReproError:
                state = None  # worker dead: the journal covers cold adopt
            session.parking = False
            if (
                self._sessions.get(session_id) is not session
                or session.conn is not conn
            ):
                # Ended — or stolen by a RESUME on a fresh connection —
                # while the export ran; it is no longer ours to park.
                return
        parked = _ParkedSession(
            token=session.token,
            state=state,
            journal=session.journal,
            history=session.history,
            fed=session.fed,
            delivered=session.delivered,
            flagged=session.flagged,
            record_timeline=session.record_timeline,
            reason=reason,
        )
        # Insert before unregistering, with no await between: the pump
        # must never find the session in neither map (events would drop).
        self._parked[session_id] = parked
        self._unregister(session_id)
        self._parked_total += 1
        self._schedule_expiry(session_id, parked)

    def _schedule_expiry(
        self, session_id: str, parked: _ParkedSession
    ) -> None:
        parked.expiry = asyncio.get_running_loop().call_later(
            self.resume_grace_s, self._expire_parked, session_id
        )

    def _expire_parked(self, session_id: str, reason: str | None = None) -> None:
        """Fail a parked session safe: the grace window lapsed unresumed."""
        parked = self._parked.pop(session_id, None)
        if parked is None:
            return
        if parked.expiry is not None:
            parked.expiry.cancel()
            parked.expiry = None
        self._resume_expired_total += 1
        self._record_failsafe(
            SessionEvent(
                session_id=session_id,
                frame_index=parked.delivered,
                gesture=0,
                score=0.0,
                flag=True,
                error=reason
                or (
                    f"resume grace window expired "
                    f"({self.resume_grace_s}s): {parked.reason}"
                ),
            )
        )

    def _begin_recovery(self, session_id: str, session: _RemoteSession) -> None:
        """Spawn the transparent worker-crash recovery task."""
        session.recovering = True
        task = asyncio.get_running_loop().create_task(
            self._recover_session(session_id),
            name=f"gateway-recover-{session_id}",
        )
        self._bg_tasks.add(task)
        task.add_done_callback(self._bg_tasks.discard)

    async def _recover_session(self, session_id: str) -> None:
        """Rebuild a session whose worker died, from its frame journal.

        Re-opens the id on a live shard (consistent hashing skips the
        dead one) and replays every journaled batch; events regenerated
        for already-delivered frames are dropped by the routing filter,
        so the client sees an uninterrupted, duplicate-free stream.
        Any mid-recovery failure — the engine still reaping the crash,
        or a *second* crash taking down the shard the session was just
        rebuilt on while the replay is in flight — releases whatever
        half-state exists and restarts the rebuild from scratch (the
        journal always covers a full one).  Only when the bounded
        restarts are exhausted does the session fall back to the
        fail-safe contract.
        """
        session = self._sessions.get(session_id)
        if session is None:
            return  # parked or closed before the task ran
        try:
            for attempt in range(8):
                try:
                    await self._engine.open_session(
                        session_id, session.record_timeline
                    )
                    replayed = 0
                    while replayed < len(session.journal):
                        if self._sessions.get(session_id) is not session:
                            # Parked or closed underneath us: release
                            # the half-replayed engine session (a later
                            # cold adopt replays the full journal from
                            # scratch).
                            with contextlib.suppress(ReproError):
                                await self._engine.close_session(session_id)
                            return
                        await self._engine.feed(
                            session_id, session.journal[replayed]
                        )
                        replayed += 1
                    break
                except ReproError:
                    if attempt == 7:
                        raise
                    if self._sessions.get(session_id) is not session:
                        return  # parked or closed while the attempt ran
                    # The half-open engine session (if any) must go
                    # before the rebuild: a crashed shard's failure
                    # record is popped by the re-open, a survivor is
                    # closed outright.  Either way the next attempt
                    # starts from a clean slate and a full replay;
                    # already-delivered frames are de-duplicated by the
                    # routing filter, so restarts never double-send.
                    with contextlib.suppress(ReproError):
                        await self._engine.close_session(session_id)
                    await asyncio.sleep(0.05 * (attempt + 1))
        except ReproError as exc:
            current = self._sessions.get(session_id)
            if current is session:
                event = SessionEvent(
                    session_id=session_id,
                    frame_index=session.delivered,
                    gesture=0,
                    score=0.0,
                    flag=True,
                    error=f"unrecoverable worker crash: {exc}",
                )
                conn = session.conn
                if not conn.closed:
                    self._enqueue_or_overflow(
                        conn,
                        encode_message(
                            MessageType.EVENT, encode_events([event])
                        ),
                    )
                    self._events_sent += 1
                self._record_failsafe(event)
                self._unregister(session_id)
            return
        if self._sessions.get(session_id) is not session:
            with contextlib.suppress(ReproError):
                await self._engine.close_session(session_id)
            return
        # No await between the final journal-length check (the while
        # condition) and this flag clear: nothing can slip in between.
        session.recovering = False
        self._recovered_total += 1

    # ------------------------------------------------------------------
    # Per-connection tasks
    # ------------------------------------------------------------------
    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain the send queue, coalescing bursts into single writes."""
        try:
            while True:
                chunk = await conn.queue.get()
                if chunk is _CLOSED:
                    return
                await conn.writer_gate.wait()
                parts = [chunk]
                while len(parts) < _WRITE_BATCH:
                    try:
                        extra = conn.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is _CLOSED:
                        conn.queue.put_nowait(_CLOSED)
                        break
                    parts.append(extra)
                conn.writer.write(b"".join(parts))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            return  # peer is gone; the read loop's teardown handles it
        except asyncio.CancelledError:  # pragma: no cover - loop shutdown
            raise

    async def _heartbeat_loop(self, conn: _Connection) -> None:
        """Ping the client; declare it dead past the idle timeout."""
        loop = asyncio.get_running_loop()
        try:
            while not conn.closed:
                await asyncio.sleep(self.heartbeat_interval_s)
                if conn.closed:
                    return
                if (
                    self.idle_timeout_s is not None
                    and loop.time() - conn.last_recv > self.idle_timeout_s
                ):
                    self._idle_disconnects += 1
                    self._send_error(
                        conn,
                        WorkerError(
                            f"idle timeout: no traffic for "
                            f"{self.idle_timeout_s}s"
                        ),
                        None,
                    )
                    await self._teardown(conn, "idle timeout")
                    return
                self._enqueue_or_overflow(
                    conn, encode_message(MessageType.HEARTBEAT)
                )
                self._heartbeats_sent += 1
        except asyncio.CancelledError:
            return

    # ------------------------------------------------------------------
    # Event routing
    # ------------------------------------------------------------------
    async def _event_pump(self) -> None:
        """Route the engine's merged event stream to owning connections."""
        async for event in self._engine.events():
            self._route_event(event)

    def _route_event(self, event: SessionEvent) -> None:
        session = self._sessions.get(event.session_id)
        if session is None:
            parked = self._parked.get(event.session_id)
            if parked is not None:
                # In flight when its client vanished: fold into the
                # parked history so a resume replays it.  Accepted
                # events will reach the client at resume time, so they
                # belong in the durable log now.
                if parked.absorb(event):
                    self._log_event(event)
                return
            self._events_dropped += 1
            return
        if event.error is not None and session.journal is not None:
            # Resume mode treats a worker crash as recoverable: rebuild
            # from the journal instead of failing the session safe.  A
            # second terminal event while recovery is already in flight
            # is a stale echo of the same crash.
            if not session.recovering:
                self._begin_recovery(event.session_id, session)
            return
        if session.journal is not None and event.frame_index < session.delivered:
            # Journal-replay regeneration after a crash recovery (or
            # cold adopt): the client already has this event.  Events
            # arrive one per frame in frame order, so a fresh event
            # always lands exactly at frame_index == delivered.
            return
        session.delivered += 1
        if event.flag:
            session.flagged += 1
        if session.history is not None:
            session.history.append(event)
        if event.error is None:
            # Past the duplicate filter: this event is part of the
            # client-visible stream exactly once.  Terminal events tee
            # in _record_failsafe below instead (one tee per event).
            self._log_event(event)
        conn = session.conn
        if not conn.closed:
            self._enqueue_or_overflow(
                conn, encode_message(MessageType.EVENT, encode_events([event]))
            )
            self._events_sent += 1
        if event.error is not None:
            # Terminal: the engine lost this session (worker crash).
            # Surface it at the gateway too, not only on the wire.
            self._record_failsafe(event)
            self._unregister(event.session_id)

    def _enqueue_or_overflow(self, conn: _Connection, data: bytes) -> None:
        self._peak_queue_depth = max(self._peak_queue_depth, conn.queue.qsize())
        if not conn.enqueue(data):
            self._overflow_disconnects += 1
            conn.closed = True  # stop routing immediately
            task = asyncio.get_running_loop().create_task(
                self._teardown(
                    conn, "send queue overflow (client not reading events)"
                )
            )
            self._bg_tasks.add(task)
            task.add_done_callback(self._bg_tasks.discard)

    def _send_error(
        self,
        conn: _Connection,
        exc: Exception,
        session_id: str | None,
        in_reply_to: MessageType | None = None,
    ) -> None:
        """Report a failure to the client.

        ``in_reply_to`` names the control request this error answers
        (OPEN/CLOSE), letting clients tell a failed request apart from
        an *asynchronous* error (a rejected unacked FRAME, an idle
        timeout) that arrives while some other reply is pending.
        """
        self._enqueue_or_overflow(
            conn,
            encode_message(
                MessageType.ERROR,
                encode_json(
                    {
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                        "session_id": session_id,
                        "in_reply_to": (
                            in_reply_to.name if in_reply_to is not None else None
                        ),
                    }
                ),
            ),
        )

    def _record_failsafe(self, event: SessionEvent) -> None:
        self.failsafe_events.append(event)
        self.failed_sessions[event.session_id] = event.error or "unknown"
        self._log_event(event)

    def _log_event(self, event: SessionEvent) -> None:
        """Tee one client-visible event into the durable log, if any."""
        if self.event_store is not None:
            self.event_store.append(event)

    def _unregister(self, session_id: str) -> None:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.conn.sessions.discard(session_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def uptime_s(self) -> float:
        """Monotonic seconds since this gateway was constructed.

        Never resets — resizes, autoscaler actions and reconnect storms
        leave it (and the cumulative event counters it contextualises)
        strictly increasing.
        """
        return time.monotonic() - self._started_at

    @property
    def n_open_sessions(self) -> int:
        """Number of wire-opened sessions currently live."""
        return len(self._sessions)

    @property
    def n_parked_sessions(self) -> int:
        """Number of sessions parked awaiting a resume."""
        return len(self._parked)

    async def resize(self, target_k: int) -> dict:
        """Live-resize the serving fleet to ``target_k`` shards.

        Open socket sessions ride through: their state — pending frames
        included — migrates between workers, no event is lost and no
        fail-safe closure occurs.  The resize is recorded in
        :attr:`resize_events` and visible to every STATS client.  Only
        available on a sharded gateway (``n_shards >= 2`` at
        construction); the embedded single-service engine raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if self._engine is None:
            raise ConfigurationError("gateway is not started")
        summary = await self._engine.resize(target_k)
        self._note_resize(dict(summary, trigger="manual"))
        return summary

    def _note_resize(self, event: dict) -> None:
        """Record an applied resize (manual or autoscaler-triggered)."""
        self.resize_events.append(event)
        self.n_shards = int(event.get("to", self.n_shards))
        if self._balancer is not None and event.get("trigger") != "autoscaler":
            # The autoscaler resets the balancer itself before calling
            # on_resize; a *manual* resize must reset it here, or the
            # balancer would act on a hot-streak built against the old
            # topology.
            self._balancer.notify_resize(event)
        if self.event_store is not None:
            self.event_store.append_marker("resize", dict(event))

    async def shed(self, session_ids: list[str], to_shard: int) -> dict[str, int]:
        """Live-migrate named sessions onto one shard and pin them there.

        The manual twin of the balancer's continuous loop (and what a
        chaos campaign injects): sessions ride through exactly as they
        do under resize — pending frames migrate, no event is lost, no
        fail-safe closure — and the placement overlay keeps routing
        them to ``to_shard`` afterwards.  Sessions that closed or
        failed meanwhile are skipped; the returned
        ``{session_id: previous shard}`` map names what actually moved.
        Applied sheds are recorded in :attr:`shed_events` and visible
        to every STATS client.  Only available on a sharded gateway
        (``n_shards >= 2`` at construction).
        """
        if self._engine is None:
            raise ConfigurationError("gateway is not started")
        moved = await self._engine.shed(list(session_ids), to_shard)
        if moved:
            self._note_shed(
                {
                    "to": to_shard,
                    "sessions": sorted(moved),
                    "n": len(moved),
                    "trigger": "manual",
                }
            )
        return moved

    def _note_shed(self, event: dict) -> None:
        """Record an applied shed (manual or balancer-triggered)."""
        self.shed_events.append(event)
        if self.event_store is not None:
            self.event_store.append_marker("shed", dict(event))

    async def shard_stats(self) -> dict[int, ServiceStats]:
        """The embedded engine's per-shard :class:`ServiceStats`.

        Raw objects (retained tick-latency samples included), polled
        without disturbing the engine's pipe protocol — feed the dict to
        :func:`~repro.serving.sharded.suggest_shard_count` or merge the
        samples for fleet-wide percentiles.  ``gateway_stats()`` carries
        the JSON-friendly reduction of the same data.
        """
        if self._engine is None:
            return {}
        return await self._engine.shard_stats()

    async def gateway_stats(self) -> dict:
        """Aggregate serving and transport statistics (JSON-serialisable).

        Folds the engine's per-shard :class:`ServiceStats` (tick/frame
        counters, tick-latency percentiles) together with the gateway's
        own connection, session, queue-depth and fail-safe counters —
        also what the STATS wire message returns, and the input half of
        :func:`~repro.serving.sharded.suggest_shard_count` (pass the
        engine's ``shard_stats()``).
        """
        shard_stats = await self._engine.shard_stats() if self._engine else {}
        depths = [c.queue.qsize() for c in self._connections.values()]
        # Fold the engine registries (per-shard, resize-proof) together
        # with the gateway's own lifetime counters into one snapshot —
        # the fleet telemetry plane as one JSON document.
        registry = TelemetryRegistry()
        if self._engine is not None:
            registry.merge(await self._engine.telemetry())
        registry.counter("gateway_events_sent").inc(self._events_sent)
        registry.counter("gateway_events_failsafe").inc(
            len(self.failsafe_events)
        )
        registry.counter("gateway_frames_received").inc(self._frames_received)
        store_stats = (
            self.event_store.stats() if self.event_store is not None else None
        )
        return {
            "protocol_version": PROTOCOL_VERSION,
            "n_shards": self.n_shards,
            "backend": self.backend,
            "uptime_s": self.uptime_s,
            # Cumulative event accounting: emitted to clients, recorded
            # fail-safe, and dropped by the durable log's bounded ring
            # (0 without a store — the tee never blocks, only counts).
            "events": {
                "emitted": self._events_sent,
                "failsafe": len(self.failsafe_events),
                "dropped": self._events_dropped,
                "dropped_log": (
                    store_stats["dropped"] if store_stats is not None else 0
                ),
            },
            "store": store_stats,
            "telemetry": registry.snapshot(),
            # Resize history (manual and autoscaler): how clients learn
            # the fleet changed shape underneath their sessions — and
            # that nothing happened to those sessions.
            "resizes": {
                "count": len(self.resize_events),
                "autoscaling": self.autoscale_interval_s is not None,
                "events": self.resize_events[-16:],
            },
            # Placement history (manual sheds and the balancer): the
            # skew level of the two-level controller — which sessions
            # were moved off a hot shard, where they landed, and the
            # p99 evidence the decision was made on.
            "placement": {
                "count": len(self.shed_events),
                "balancing": self.balance_interval_s is not None,
                "events": self.shed_events[-16:],
            },
            "connections": {
                "open": len(self._connections),
                "total": self._connections_total,
                "overflow_disconnects": self._overflow_disconnects,
                "idle_disconnects": self._idle_disconnects,
            },
            "sessions": {
                "open": len(self._sessions),
                "peak_open": self._peak_open_sessions,
                "opened_total": self._sessions_opened,
                "closed_total": self._sessions_closed,
                "failed_total": len(self.failed_sessions),
            },
            "queues": {
                "capacity": self.send_queue_max,
                "depths": depths,
                "max_depth": max(depths, default=0),
                "peak_depth": self._peak_queue_depth,
            },
            "resume": {
                "enabled": self._resume_enabled,
                "grace_s": self.resume_grace_s,
                "parked": len(self._parked),
                "parked_total": self._parked_total,
                "resumed_total": self._resumed_total,
                "expired_total": self._resume_expired_total,
                "recovered_total": self._recovered_total,
                "acks_sent": self._acks_sent,
            },
            "frames_received": self._frames_received,
            "events_sent": self._events_sent,
            "events_dropped": self._events_dropped,
            "heartbeats_sent": self._heartbeats_sent,
            "shards": {
                str(index): {
                    "n_ticks": stats.n_ticks,
                    "frames_processed": stats.frames_processed,
                    "tick_p50_ms": stats.percentile_ms(50),
                    "tick_p99_ms": stats.percentile_ms(99),
                }
                for index, stats in shard_stats.items()
            },
        }


class GatewayRunner:
    """Run a :class:`MonitorGateway` on a dedicated event-loop thread.

    The bridge for synchronous programs (the sync client SDK, pytest,
    ``examples/remote_clients.py``): the gateway's asyncio machinery
    lives on a daemon thread; the caller gets ``(host, port)`` plus
    :meth:`run` to submit coroutines (e.g. ``gateway.gateway_stats()``)
    from sync code.  Use as a context manager — exit stops the gateway
    (terminating any shard workers) and joins the loop thread.
    """

    def __init__(self, gateway: MonitorGateway, startup_timeout_s: float = 120.0):
        self.gateway = gateway
        self._startup_timeout_s = startup_timeout_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the gateway; returns ``(host, port)``."""
        if self._thread is not None:
            raise ConfigurationError("runner is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()
        start_future = asyncio.run_coroutine_threadsafe(
            self.gateway.start(), self._loop
        )
        try:
            self.host, self.port = start_future.result(
                self._startup_timeout_s
            )
        except BaseException:
            # The start() coroutine may still be mid-flight (e.g. the
            # engine build on an executor thread); let it settle and
            # tear the gateway down before killing the loop, so a slow
            # startup never orphans already-spawned shard workers.
            with contextlib.suppress(BaseException):
                start_future.result(self._startup_timeout_s)
            with contextlib.suppress(BaseException):
                asyncio.run_coroutine_threadsafe(
                    self.gateway.stop(), self._loop
                ).result(self._startup_timeout_s)
            self._stop_loop()
            raise
        return self.host, self.port

    def run(self, coro, timeout_s: float | None = 60.0):
        """Execute a coroutine on the gateway's loop; return its result."""
        if self._loop is None:
            raise ConfigurationError("runner is not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout_s
        )

    def stats(self) -> dict:
        """Synchronous :meth:`MonitorGateway.gateway_stats`."""
        return self.run(self.gateway.gateway_stats())

    def stop(self) -> None:
        """Stop the gateway and join the loop thread.  Idempotent."""
        if self._loop is None:
            return
        stop_future = asyncio.run_coroutine_threadsafe(
            self.gateway.stop(), self._loop
        )
        try:
            stop_future.result(self._startup_timeout_s)
        except BaseException:
            # A slow shutdown (per-session drains, writer flushes) must
            # still finish terminating worker processes before the loop
            # dies — give it one more full timeout, best effort.
            with contextlib.suppress(BaseException):
                stop_future.result(self._startup_timeout_s)
            raise
        finally:
            self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(30.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
