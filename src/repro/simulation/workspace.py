"""Dry-lab workspace geometry for the Block Transfer task.

Replicates the paper's Gazebo setup (Figure 6b): left and right robot
manipulators with grasper instruments over a flat table holding a block
and a receptacle where the block must be dropped.  All lengths are in
millimetres in a table-centred frame: x to the right, y away from the
camera, z up (table surface at z = 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, ShapeError


@dataclass
class Block:
    """The transferable block.

    Attributes
    ----------
    position:
        Centre of the block, shape ``(3,)`` (z is the half-height when
        resting on the table).
    size_mm:
        Edge length of the cube.
    held_by:
        ``None`` when free, else ``"left"`` or ``"right"``.
    """

    position: np.ndarray = field(default_factory=lambda: np.array([-40.0, 0.0, 5.0]))
    size_mm: float = 10.0
    held_by: str | None = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        if self.position.shape != (3,):
            raise ShapeError(f"block position must have shape (3,), got {self.position.shape}")
        if self.size_mm <= 0:
            raise ConfigurationError("block size must be positive")

    @property
    def resting_z(self) -> float:
        """Height of the block centre when resting on the table."""
        return self.size_mm / 2.0

    def copy(self) -> "Block":
        """Deep copy."""
        return Block(self.position.copy(), self.size_mm, self.held_by)


@dataclass
class Receptacle:
    """Target receptacle where the block must be dropped.

    The drop counts as on-target when the block's horizontal (x, y)
    distance from the receptacle centre is at most ``radius_mm``.
    """

    position: np.ndarray = field(default_factory=lambda: np.array([40.0, 0.0, 0.0]))
    radius_mm: float = 15.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        if self.position.shape != (3,):
            raise ShapeError(
                f"receptacle position must have shape (3,), got {self.position.shape}"
            )
        if self.radius_mm <= 0:
            raise ConfigurationError("receptacle radius must be positive")

    def contains(self, point: np.ndarray) -> bool:
        """True when ``point``'s horizontal projection lies inside."""
        point = np.asarray(point, dtype=float)
        if point.shape != (3,):
            raise ShapeError(f"point must have shape (3,), got {point.shape}")
        return bool(np.linalg.norm(point[:2] - self.position[:2]) <= self.radius_mm)


@dataclass
class Workspace:
    """The whole dry-lab scene.

    ``extent_mm`` is the half-width of the square working area (used by
    the virtual camera to frame the scene and by sanity checks on
    commanded positions).
    """

    block: Block = field(default_factory=Block)
    receptacle: Receptacle = field(default_factory=Receptacle)
    extent_mm: float = 100.0
    #: Height from which transported objects are carried.
    carry_height_mm: float = 40.0

    def __post_init__(self) -> None:
        if self.extent_mm <= 0:
            raise ConfigurationError("extent must be positive")
        if self.carry_height_mm <= 0:
            raise ConfigurationError("carry height must be positive")

    def in_bounds(self, point: np.ndarray, slack_mm: float = 0.0) -> bool:
        """True when the horizontal projection of ``point`` is on the table."""
        point = np.asarray(point, dtype=float)
        limit = self.extent_mm + slack_mm
        return bool(np.all(np.abs(point[:2]) <= limit))

    def copy(self) -> "Workspace":
        """Deep copy of the scene."""
        return Workspace(
            block=self.block.copy(),
            receptacle=Receptacle(
                self.receptacle.position.copy(), self.receptacle.radius_mm
            ),
            extent_mm=self.extent_mm,
            carry_height_mm=self.carry_height_mm,
        )
