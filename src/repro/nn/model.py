"""Sequential model: compose layers, train with mini-batch gradient descent."""

from __future__ import annotations

import time

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError, NotFittedError, ShapeError
from .callbacks import Callback, History
from .layers.base import Layer
from .losses import Loss
from .optimizers import Optimizer


class Sequential:
    """A linear stack of layers (Keras-style).

    Parameters
    ----------
    layers:
        The layer stack, applied in order.
    seed:
        Seed for weight initialisation and batch shuffling.

    Example
    -------
    >>> from repro import nn
    >>> model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(2)], seed=0)
    >>> model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
    >>> # model.fit(x_train, y_train, epochs=10)
    """

    def __init__(
        self,
        layers: list[Layer],
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not layers:
            raise ConfigurationError("a Sequential model needs at least one layer")
        self.layers = list(layers)
        self._rng = as_generator(seed)
        self.loss: Loss | None = None
        self.optimizer: Optimizer | None = None
        self.built = False
        self.stop_training = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, input_shape: tuple[int, ...]) -> None:
        """Build every layer for ``input_shape`` (batch axis excluded)."""
        shape = tuple(int(s) for s in input_shape)
        for layer in self.layers:
            layer.build(shape, self._rng)
            shape = layer.output_shape
        self.built = True

    def compile(self, loss: Loss, optimizer: Optimizer) -> None:
        """Attach the loss and optimiser used by :meth:`fit`."""
        self.loss = loss
        self.optimizer = optimizer

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Output shape of the final layer (excluding batch)."""
        if not self.built:
            raise NotFittedError("model has not been built")
        return self.layers[-1].output_shape

    def parameters(self) -> list[np.ndarray]:
        """All trainable parameter arrays, in layer order."""
        return [p for layer in self.layers for p in layer.params.values()]

    def state_arrays(self) -> list[np.ndarray]:
        """Parameters plus non-trainable buffers (BatchNorm running stats).

        Checkpointing must snapshot these together: restoring best-epoch
        weights against later-epoch normalisation statistics skews every
        prediction.
        """
        arrays = self.parameters()
        for layer in self.layers:
            running_mean = getattr(layer, "running_mean", None)
            running_var = getattr(layer, "running_var", None)
            if running_mean is not None:
                arrays.append(running_mean)
            if running_var is not None:
                arrays.append(running_var)
        return arrays

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :meth:`parameters`."""
        return [g for layer in self.layers for g in layer.grads.values()]

    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.n_parameters() for layer in self.layers)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Raw model output (logits) for a batch."""
        if not self.built:
            self.build(np.asarray(x).shape[1:])
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict_proba(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Class probabilities (loss's ``predict`` applied to logits).

        Inference is batch-size invariant: a sample scored alone yields
        the bit-identical probability it would get inside any larger
        batch (see :mod:`repro.nn.layers.contract`).  The online serving
        engine relies on this to reproduce batched results exactly.
        """
        if self.loss is None:
            raise NotFittedError("call compile() before predict_proba()")
        x = np.asarray(x, dtype=float)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(self.loss.predict(logits))
        if not outputs:
            return np.empty((0, *self.output_shape))
        return np.concatenate(outputs, axis=0)

    def predict(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Hard predictions: argmax for multi-class, 0.5 threshold for binary."""
        probs = self.predict_proba(x, batch_size=batch_size)
        if probs.ndim == 2 and probs.shape[1] > 1:
            return probs.argmax(axis=1)
        return (probs.reshape(-1) >= 0.5).astype(int)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 64,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        callbacks: list[Callback] | None = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> History:
        """Mini-batch training loop.

        Returns the :class:`~repro.nn.callbacks.History` callback (one is
        appended automatically if the caller did not supply one).
        """
        if self.loss is None or self.optimizer is None:
            raise NotFittedError("call compile() before fit()")
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ShapeError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ShapeError("cannot fit on an empty dataset")
        if not self.built:
            self.build(x.shape[1:])

        callbacks = list(callbacks or [])
        history = next(
            (cb for cb in callbacks if isinstance(cb, History)), None
        )
        if history is None:
            history = History()
            callbacks.append(history)

        self.stop_training = False
        for cb in callbacks:
            cb.on_train_begin(self)

        n = x.shape[0]
        for epoch in range(epochs):
            for cb in callbacks:
                cb.on_epoch_begin(self, epoch)
            order = self._rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            n_batches = 0
            start_time = time.perf_counter()
            for start in range(0, n, batch_size):
                batch_idx = order[start : start + batch_size]
                epoch_loss += self._train_batch(x[batch_idx], y[batch_idx])
                n_batches += 1
            logs: dict[str, float] = {
                "loss": epoch_loss / max(n_batches, 1),
                "epoch_seconds": time.perf_counter() - start_time,
                "learning_rate": self.optimizer.learning_rate,
            }
            if validation_data is not None:
                val_x, val_y = validation_data
                logs["val_loss"] = self.evaluate(val_x, val_y, batch_size=batch_size)
            if verbose:
                rendered = ", ".join(f"{k}={v:.4f}" for k, v in logs.items())
                print(f"epoch {epoch + 1}/{epochs}: {rendered}")
            stop = False
            for cb in callbacks:
                stop = cb.on_epoch_end(self, epoch, logs) or stop
            if stop or self.stop_training:
                break
        for cb in callbacks:
            cb.on_train_end(self)
        return history

    def _train_batch(self, x_batch: np.ndarray, y_batch: np.ndarray) -> float:
        assert self.loss is not None and self.optimizer is not None
        logits = self.forward(x_batch, training=True)
        loss_value = self.loss.value(logits, y_batch)
        grad = self.loss.gradient(logits, y_batch)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        self.optimizer.step(self.parameters(), self.gradients())
        return loss_value

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 512
    ) -> float:
        """Mean loss over a dataset (inference mode)."""
        if self.loss is None:
            raise NotFittedError("call compile() before evaluate()")
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        total = 0.0
        count = 0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, training=False)
            total += self.loss.value(logits, yb) * xb.shape[0]
            count += xb.shape[0]
        if count == 0:
            raise ShapeError("cannot evaluate on an empty dataset")
        return total / count

    def summary(self) -> str:
        """Human-readable layer table."""
        lines = [f"{'Layer':<24}{'Output shape':<20}{'Params':>10}"]
        lines.append("-" * 54)
        for layer in self.layers:
            shape = str(layer.output_shape) if layer.built else "?"
            lines.append(
                f"{type(layer).__name__:<24}{shape:<20}{layer.n_parameters():>10}"
            )
        lines.append("-" * 54)
        lines.append(f"total parameters: {self.n_parameters()}")
        return "\n".join(lines)
