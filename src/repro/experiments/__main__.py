"""Command-line experiment runner.

Regenerate any paper table/figure from the shell:

    python -m repro.experiments table3 --scale smoke
    python -m repro.experiments table8 --scale fast --seed 1
    python -m repro.experiments figure9

Prints the same ASCII tables the benchmark suite emits, without the
pytest-benchmark wrapper.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import figure3, figure5, figure8, figure9, table3, table4, table5, table6
from . import table7, table8, table9

_RUNNERS = {
    "table3": lambda scale, seed: table3.render(table3.run(scale, seed)[0]),
    "table4": lambda scale, seed: table4.render(table4.run(scale, seed)),
    "table5": lambda scale, seed: table5.render(table5.run(scale, seed)),
    "table6": lambda scale, seed: table6.render(table6.run(scale, seed)),
    "table7": lambda scale, seed: table7.render(table7.run(scale, seed)),
    "table8": lambda scale, seed: table8.render(table8.run(scale, seed)),
    "table9": lambda scale, seed: table9.render(table9.run(scale, seed)),
    "figure3": lambda scale, seed: figure3.render(figure3.run(scale, seed)),
    "figure5": lambda scale, seed: figure5.render(figure5.run(scale, seed)),
    "figure8": lambda scale, seed: figure8.render(figure8.run(scale, seed)),
    "figure9": lambda scale, seed: figure9.render(figure9.run(scale, seed)),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure of the paper.",
    )
    parser.add_argument("experiment", choices=sorted(_RUNNERS), help="what to run")
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("smoke", "fast", "full"),
        help="data/model scale preset (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    output = _RUNNERS[args.experiment](args.scale, args.seed)
    elapsed = time.perf_counter() - start
    print(output)
    print(f"\n[{args.experiment} @ {args.scale} scale, seed {args.seed}: "
          f"{elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
