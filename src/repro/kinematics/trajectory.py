"""Trajectory container: synchronised kinematics frames + per-frame labels.

A :class:`Trajectory` is the unit of data exchanged between the data
synthesisers, the fault injector, the simulator and the learning pipeline.
It stores a ``(n_frames, n_features)`` kinematics array, the frame rate,
optional per-frame gesture labels and per-frame safe/unsafe labels, and
arbitrary metadata (subject, supertrial, injected faults, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..config import frames_to_ms
from ..errors import DatasetError, ShapeError


@dataclass
class Trajectory:
    """A recorded or synthesised demonstration.

    Attributes
    ----------
    frames:
        Kinematics array of shape ``(n_frames, n_features)``.
    frame_rate_hz:
        Sampling rate of ``frames``.
    gestures:
        Optional per-frame integer gesture labels, shape ``(n_frames,)``.
    unsafe:
        Optional per-frame binary labels (1 = erroneous/unsafe sample).
    metadata:
        Free-form provenance (subject id, supertrial, fault spec, ...).
    """

    frames: np.ndarray
    frame_rate_hz: float
    gestures: np.ndarray | None = None
    unsafe: np.ndarray | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.frames = np.asarray(self.frames, dtype=float)
        if self.frames.ndim != 2:
            raise ShapeError(
                f"frames must be 2-D (n_frames, n_features), got {self.frames.shape}"
            )
        if self.frame_rate_hz <= 0:
            raise DatasetError("frame_rate_hz must be positive")
        if self.gestures is not None:
            self.gestures = np.asarray(self.gestures, dtype=int)
            if self.gestures.shape != (self.n_frames,):
                raise ShapeError(
                    "gestures must have one label per frame: expected "
                    f"({self.n_frames},), got {self.gestures.shape}"
                )
        if self.unsafe is not None:
            self.unsafe = np.asarray(self.unsafe, dtype=int)
            if self.unsafe.shape != (self.n_frames,):
                raise ShapeError(
                    "unsafe must have one label per frame: expected "
                    f"({self.n_frames},), got {self.unsafe.shape}"
                )
            if not np.isin(self.unsafe, (0, 1)).all():
                raise DatasetError("unsafe labels must be binary (0 or 1)")

    @property
    def n_frames(self) -> int:
        """Number of kinematics frames."""
        return int(self.frames.shape[0])

    @property
    def n_features(self) -> int:
        """Width of the kinematics feature vector."""
        return int(self.frames.shape[1])

    @property
    def duration_ms(self) -> float:
        """Total duration in milliseconds."""
        return frames_to_ms(self.n_frames, self.frame_rate_hz)

    def timestamps_ms(self) -> np.ndarray:
        """Per-frame timestamps in milliseconds (frame 0 at t=0)."""
        return np.arange(self.n_frames) * (1000.0 / self.frame_rate_hz)

    def copy(self) -> "Trajectory":
        """Deep copy (frames, labels and metadata are all copied)."""
        return Trajectory(
            frames=self.frames.copy(),
            frame_rate_hz=self.frame_rate_hz,
            gestures=None if self.gestures is None else self.gestures.copy(),
            unsafe=None if self.unsafe is None else self.unsafe.copy(),
            metadata=dict(self.metadata),
        )

    def slice(self, start: int, stop: int) -> "Trajectory":
        """Sub-trajectory covering frames ``[start, stop)``."""
        if not 0 <= start <= stop <= self.n_frames:
            raise DatasetError(
                f"invalid slice [{start}, {stop}) for {self.n_frames} frames"
            )
        return Trajectory(
            frames=self.frames[start:stop].copy(),
            frame_rate_hz=self.frame_rate_hz,
            gestures=None if self.gestures is None else self.gestures[start:stop].copy(),
            unsafe=None if self.unsafe is None else self.unsafe[start:stop].copy(),
            metadata=dict(self.metadata),
        )

    def gesture_segments(self) -> list[tuple[int, int, int]]:
        """Contiguous runs of equal gesture label.

        Returns a list of ``(gesture, start_frame, end_frame_exclusive)``
        tuples in temporal order.  Requires gesture labels.
        """
        if self.gestures is None:
            raise DatasetError("trajectory has no gesture labels")
        segments: list[tuple[int, int, int]] = []
        start = 0
        for t in range(1, self.n_frames + 1):
            if t == self.n_frames or self.gestures[t] != self.gestures[start]:
                segments.append((int(self.gestures[start]), start, t))
                start = t
        return segments

    def unsafe_segments(self) -> list[tuple[int, int]]:
        """Contiguous runs of unsafe frames as ``(start, end_exclusive)``."""
        if self.unsafe is None:
            raise DatasetError("trajectory has no unsafe labels")
        segments: list[tuple[int, int]] = []
        start: int | None = None
        for t in range(self.n_frames):
            if self.unsafe[t] and start is None:
                start = t
            elif not self.unsafe[t] and start is not None:
                segments.append((start, t))
                start = None
        if start is not None:
            segments.append((start, self.n_frames))
        return segments

    def resample(self, target_rate_hz: float) -> "Trajectory":
        """Linear-interpolation resampling to ``target_rate_hz``.

        Gesture and unsafe labels are carried over by nearest-neighbour
        lookup.  Used to bridge the simulator's kinematics rate and the
        30 Hz video/JIGSAWS rate.
        """
        if target_rate_hz <= 0:
            raise DatasetError("target_rate_hz must be positive")
        if np.isclose(target_rate_hz, self.frame_rate_hz):
            return self.copy()
        old_t = np.arange(self.n_frames) / self.frame_rate_hz
        duration_s = self.n_frames / self.frame_rate_hz
        n_new = max(1, int(round(duration_s * target_rate_hz)))
        new_t = np.arange(n_new) / target_rate_hz
        new_frames = np.empty((n_new, self.n_features))
        for j in range(self.n_features):
            new_frames[:, j] = np.interp(new_t, old_t, self.frames[:, j])
        nearest = np.clip(
            np.round(new_t * self.frame_rate_hz).astype(int), 0, self.n_frames - 1
        )
        return Trajectory(
            frames=new_frames,
            frame_rate_hz=target_rate_hz,
            gestures=None if self.gestures is None else self.gestures[nearest],
            unsafe=None if self.unsafe is None else self.unsafe[nearest],
            metadata=dict(self.metadata),
        )

    def with_labels(
        self,
        gestures: np.ndarray | None = None,
        unsafe: np.ndarray | None = None,
    ) -> "Trajectory":
        """Copy of this trajectory with replaced label arrays."""
        out = self.copy()
        if gestures is not None:
            gestures = np.asarray(gestures, dtype=int)
            if gestures.shape != (out.n_frames,):
                raise ShapeError("gestures must have one label per frame")
            out.gestures = gestures
        if unsafe is not None:
            unsafe = np.asarray(unsafe, dtype=int)
            if unsafe.shape != (out.n_frames,):
                raise ShapeError("unsafe must have one label per frame")
            out.unsafe = unsafe
        return out
