"""Multi-stream monitoring service: the batched online serving engine.

The paper frames deployment as continuous runtime monitoring of live
procedures, which means many simultaneous sessions rather than one
offline replay.  :class:`MonitorService` manages N concurrent trajectory
sessions (open / feed / close lifecycle) against a single trained
:class:`~repro.core.pipeline.SafetyMonitor`.  Each :meth:`MonitorService.tick`
advances every session with pending frames by one frame and runs each
pipeline stage **once** on the windows that became ready across all
sessions — one model invocation per stage per tick, instead of one per
stream — via the ring-buffered
:class:`~repro.kinematics.windows.StreamingWindowBatch`.

Model invocations go through a pluggable
:class:`~repro.nn.backends.InferenceBackend` (the ``backend``
constructor argument).  The default ``"reference"`` backend is
bit-exact and batch-size invariant (see
:meth:`repro.nn.Sequential.predict_proba`), so a session served here
emits bit-for-bit the same gestures and scores as an isolated
:meth:`~repro.core.pipeline.SafetyMonitor.stream` run over the same
frames — the parity test suite locks this in.  The ``"compiled"`` /
``"compiled-f32"`` backends trade that bit-exactness (they agree within
``atol=1e-6``) for roughly half the tick cost: folded scalers, BLAS
contractions and zero steady-state allocations (see
:mod:`repro.nn.backends` and ``docs/serving.md``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError, DatasetError, ShapeError
from ..gestures.vocabulary import Gesture
from ..kinematics.windows import StreamingWindowBatch, WindowSlotState
from ..nn.backends import (
    DEFAULT_BACKEND,
    InferenceBackend,
    make_backend,
    validate_backend_name,
)
from .telemetry import TelemetryRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> serving)
    from ..core.pipeline import SafetyMonitor
    from .eventstore import EventStoreWriter


@dataclass(frozen=True)
class SessionEvent:
    """One monitored frame of one session.

    Mirrors the tuple yielded by :meth:`SafetyMonitor.stream`:
    ``gesture`` is 0 while the gesture stage is warming up, ``score`` the
    current unsafe probability, ``flag`` the thresholded decision.

    ``error`` is ``None`` for ordinary monitoring events.  The sharded
    service (:class:`~repro.serving.sharded.ShardedMonitorService`) sets
    it on the single *terminal* event it emits per session lost to a
    worker crash; such events carry ``flag=True`` — a failed monitor is
    reported unsafe, never silently safe (fail-safe contract, see
    ``docs/serving.md``).

    ``latency_us`` is observability metadata — frame ingest (``feed``)
    to event emission, in microseconds, ``0.0`` when the emitting layer
    did not measure it — and is deliberately **excluded from equality**
    (``compare=False``): two runs of the same frames are bit-identical
    on every monitored field regardless of wall-clock, which is what
    the parity and chaos suites assert.
    """

    session_id: str
    frame_index: int
    gesture: int
    score: float
    flag: bool
    error: str | None = None
    latency_us: float = field(default=0.0, compare=False, repr=False)


@dataclass
class SessionResult:
    """Full per-frame timeline of a closed session."""

    session_id: str
    gestures: np.ndarray
    unsafe_scores: np.ndarray
    unsafe_flags: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of frames the session processed before closing."""
        return int(self.gestures.shape[0])


@dataclass
class SessionState:
    """Complete portable state of one live session (migration unit).

    Produced by :meth:`MonitorService.export_session` and consumed by
    :meth:`MonitorService.import_session`: everything a session *is* —
    progress counters, recorded timeline, un-ticked pending frames, the
    per-slot ring state of both pipeline stages and the sticky
    gesture/score context — as plain arrays and scalars (no code, no
    live objects), so the state can cross a process boundary through the
    :mod:`repro.serving.snapshot` codec
    (:func:`~repro.serving.snapshot.session_to_bytes`).

    A session imported into any engine built from the same trained
    monitor continues *bit-identically* under the reference backend: the
    ring rows, emission counters and pending backlog reproduce exactly
    the windows the un-migrated session would have seen.

    ``n_features`` (and both window states) are ``None`` when the source
    service had not yet bound its feature width — a session that was
    opened but never fed.
    """

    session_id: str
    frames_done: int
    record_timeline: bool
    current_gesture: int
    current_score: float
    gestures: np.ndarray  # recorded timeline (empty when not recording)
    scores: np.ndarray
    pending: np.ndarray  # (n, n_features) un-ticked frames, feed order
    n_features: int | None
    gesture_window: WindowSlotState | None
    error_window: WindowSlotState | None

    @property
    def pending_frames(self) -> int:
        """Number of un-ticked frames travelling with the state."""
        return int(self.pending.shape[0])


#: Per-tick latency samples retained for percentile queries.  A service
#: monitoring live procedures ticks indefinitely (~2.6M/day at 30 Hz), so
#: the raw history must be bounded; totals keep counting past the window.
TICK_HISTORY = 65536


@dataclass
class ServiceStats:
    """Latency accounting across ticks (populated by :meth:`tick`).

    The most recent ``capacity`` per-tick latencies live in a
    preallocated ring ndarray, so :meth:`record` is one scalar store and
    the reductions (:meth:`percentile_ms`, :meth:`mean_ms`) slice the
    ring in place instead of re-materialising the history per query.
    ``n_ticks``, ``frames_processed`` and ``events_emitted`` count the
    full service lifetime, past the retained window, and
    :attr:`uptime_s` is monotonic wall-clock since construction —
    rebased (not reset) when the stats object crosses a worker pipe.
    """

    capacity: int = TICK_HISTORY
    n_ticks: int = 0
    frames_processed: int = 0
    events_emitted: int = 0
    _ring: np.ndarray = field(init=False, repr=False, compare=False)
    _cursor: int = field(default=0, init=False, repr=False)
    _filled: int = field(default=0, init=False, repr=False)
    _started: float = field(
        default_factory=time.monotonic, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("stats capacity must be >= 1")
        self.capacity = int(self.capacity)
        self._ring = np.zeros(self.capacity)

    @property
    def uptime_s(self) -> float:
        """Monotonic seconds since this stats object started counting."""
        return time.monotonic() - self._started

    def record(self, tick_ms: float, n_frames: int) -> None:
        """Account one executed tick."""
        self._ring[self._cursor] = tick_ms
        self._cursor = (self._cursor + 1) % self.capacity
        if self._filled < self.capacity:
            self._filled += 1
        self.n_ticks += 1
        self.frames_processed += n_frames
        self.events_emitted += n_frames

    @property
    def tick_ms(self) -> np.ndarray:
        """Retained per-tick latencies in chronological order (copy)."""
        if self._filled < self.capacity:
            return self._ring[: self._filled].copy()
        return np.concatenate(
            [self._ring[self._cursor :], self._ring[: self._cursor]]
        )

    def extend_ms(self, values: np.ndarray) -> None:
        """Bulk-append latency samples (chronologically ordered).

        Counters are untouched — this merges *retained windows*, e.g.
        when :meth:`ShardedMonitorService.stats` folds per-shard stats
        into one aggregate.
        """
        values = np.asarray(values, dtype=float).reshape(-1)
        if values.size >= self.capacity:
            self._ring[:] = values[-self.capacity :]
            self._cursor = 0
            self._filled = self.capacity
            return
        first = min(self.capacity - self._cursor, values.size)
        self._ring[self._cursor : self._cursor + first] = values[:first]
        rest = values.size - first
        if rest:
            self._ring[:rest] = values[first:]
        self._cursor = (self._cursor + values.size) % self.capacity
        self._filled = min(self._filled + values.size, self.capacity)

    def __getstate__(self) -> dict:
        """Pickle only the recorded samples, not the preallocated ring.

        Stats cross the worker pipe on every ``stats`` request; shipping
        the full ``capacity``-sized ring (512 KB at the default) for a
        handful of recorded ticks would tax every poll.
        """
        return {
            "capacity": self.capacity,
            "n_ticks": self.n_ticks,
            "frames_processed": self.frames_processed,
            "events_emitted": self.events_emitted,
            "uptime_s": self.uptime_s,
            "tick_ms": self.tick_ms,
        }

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.n_ticks = state["n_ticks"]
        self.frames_processed = state["frames_processed"]
        self.events_emitted = state.get("events_emitted", 0)
        # Rebase the start so uptime keeps advancing on the receiving
        # side of a pipe instead of restarting from zero.
        self._started = time.monotonic() - state.get("uptime_s", 0.0)
        self._ring = np.zeros(self.capacity)
        self._cursor = 0
        self._filled = 0
        self.extend_ms(state["tick_ms"])

    def percentile_ms(self, q: float) -> float:
        """``q``-th percentile of recent per-tick latency in milliseconds."""
        if not self._filled:
            return 0.0
        return float(np.percentile(self._ring[: self._filled], q))

    def mean_ms(self) -> float:
        """Mean recent per-tick latency in milliseconds."""
        if not self._filled:
            return 0.0
        return float(np.mean(self._ring[: self._filled]))


class _Session:
    """Internal per-session state: pending input and output timeline."""

    __slots__ = (
        "id",
        "slot",
        "pending",
        "feed_ts",
        "last_feed_ts",
        "offset",
        "frames_done",
        "record_timeline",
        "gestures",
        "scores",
    )

    def __init__(self, session_id: str, slot: int, record_timeline: bool) -> None:
        self.id = session_id
        self.slot = slot
        self.pending: deque[np.ndarray] = deque()
        # One ingest timestamp per pending chunk (monotonic, taken at
        # feed()); pop_frame_into latches the head chunk's timestamp so
        # the tick loop can report frame-ingest→event-emission latency
        # with one perf_counter call per tick, not per frame.
        self.feed_ts: deque[float] = deque()
        self.last_feed_ts = 0.0
        self.offset = 0  # row cursor into the head chunk
        self.frames_done = 0
        self.record_timeline = record_timeline
        self.gestures: list[int] = []
        self.scores: list[float] = []

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    def pending_frames(self) -> int:
        return sum(chunk.shape[0] for chunk in self.pending) - self.offset

    def pop_frame_into(self, out: np.ndarray) -> None:
        """Copy the next pending frame straight into ``out``.

        Reads the contiguous head-chunk row in place — no intermediate
        per-frame array, so the tick loop fills its preallocated frame
        scratch with one row copy per advanced session.
        """
        head = self.pending[0]
        self.last_feed_ts = self.feed_ts[0]
        out[...] = head[self.offset]
        self.offset += 1
        if self.offset >= head.shape[0]:
            self.pending.popleft()
            self.feed_ts.popleft()
            self.offset = 0


class MonitorService:
    """Serve N concurrent monitoring sessions over one trained monitor.

    Parameters
    ----------
    monitor:
        The trained two-stage :class:`SafetyMonitor` shared by all
        sessions.
    max_sessions:
        Number of preallocated stream slots (concurrently open sessions).
    backend:
        Inference backend name (see
        :data:`repro.nn.backends.BACKEND_NAMES`): ``"reference"``
        (default — bit-exact, batch-invariant), ``"compiled"``
        (folded-scaler zero-allocation plan, ``atol=1e-6`` vs the
        reference) or ``"compiled-f32"`` (additionally float32
        execution).  One backend instance is built per trained model at
        construction, with scratch sized to ``max_sessions``.
    event_store:
        Optional :class:`~repro.serving.eventstore.EventStoreWriter`
        every tick tees its events into (fire-and-forget: the writer's
        bounded ring absorbs or drop-counts, never blocks the tick).
        Leave ``None`` when a higher layer — sharded router or gateway
        — owns the tee, so each event is persisted exactly once.

    Lifecycle
    ---------
    :meth:`open_session` reserves a slot, :meth:`feed` enqueues frames
    (any number, any cadence), :meth:`tick` advances every session with
    pending input by exactly one frame and returns the resulting
    :class:`SessionEvent` per advanced session, :meth:`close_session`
    frees the slot and returns the session's full :class:`SessionResult`
    timeline.  :meth:`drain` ticks until no session has pending input.
    """

    def __init__(
        self,
        monitor: "SafetyMonitor",
        max_sessions: int = 64,
        backend: str = DEFAULT_BACKEND,
        event_store: "EventStoreWriter | None" = None,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        self.monitor = monitor
        self.max_sessions = int(max_sessions)
        self.backend = validate_backend_name(backend)
        self.stats = ServiceStats()
        self.event_store = event_store
        self.telemetry = TelemetryRegistry()
        self._sessions: dict[str, _Session] = {}
        self._free_slots: list[int] = list(range(max_sessions - 1, -1, -1))
        self._next_id = 0
        # Window batches and per-tick scratch are allocated on the first
        # feed, when the kinematics feature width becomes known.
        self._gesture_batch: StreamingWindowBatch | None = None
        self._error_batch: StreamingWindowBatch | None = None
        self._n_features: int | None = None
        self._slots_scratch: np.ndarray | None = None
        self._frames_scratch: np.ndarray | None = None
        self._g_frames_scratch: np.ndarray | None = None
        self._feature_idx: np.ndarray | None = None
        self._current_gesture = np.zeros(max_sessions, dtype=np.int64)
        self._current_score = np.zeros(max_sessions)
        #: Backend cache per pipeline stage, keyed by the *model object*
        #: the backend was built from — fit() rebinds ``.model`` to a new
        #: object, so identity is the retrain signal.
        self._gesture_backend: tuple[object, InferenceBackend] | None = None
        self._error_backends: dict[Gesture, tuple[object, InferenceBackend]] = {}
        self._build_backends()

    def _make_backend(self, classifier) -> InferenceBackend:
        """One backend for a classifier's (scaler, model), scratch sized
        to the slot count."""
        return make_backend(
            self.backend,
            classifier.scaler,
            classifier.model,
            max_batch=self.max_sessions,
        )

    def _build_backends(self) -> None:
        """Compile every already-trained stage's backend up front."""
        classifier = self.monitor.gesture_classifier
        if classifier.model is not None:
            self._gesture_backend = (classifier.model, self._make_backend(classifier))
        for gesture, clf in self.monitor.library.classifiers.items():
            if clf.model is not None:
                self._error_backends[gesture] = (clf.model, self._make_backend(clf))

    def _gesture_backend_or_none(self) -> InferenceBackend | None:
        """The gesture-stage backend, tracking the classifier's model.

        Backends are normally built at construction, but the pre-backend
        engine looked the model up on every tick — so a stage trained
        *after* the service was created must not be served as silently
        all-safe, and a *retrained* stage (``fit`` rebinds ``.model`` to
        a new object) must not keep serving stale weights.  Both are
        caught here by comparing model identity.
        """
        classifier = self.monitor.gesture_classifier
        model = classifier.model
        if model is None:
            self._gesture_backend = None
            return None
        if self._gesture_backend is None or self._gesture_backend[0] is not model:
            self._gesture_backend = (model, self._make_backend(classifier))
        return self._gesture_backend[1]

    def _error_backend_or_none(
        self, gesture: Gesture
    ) -> InferenceBackend | None:
        """The gesture's error-stage backend (same contract as above)."""
        clf = self.monitor.library.classifiers.get(gesture)
        if clf is None or clf.model is None:
            self._error_backends.pop(gesture, None)
            return None
        cached = self._error_backends.get(gesture)
        if cached is None or cached[0] is not clf.model:
            cached = (clf.model, self._make_backend(clf))
            self._error_backends[gesture] = cached
        return cached[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def n_open_sessions(self) -> int:
        """Number of currently open sessions."""
        return len(self._sessions)

    @property
    def session_ids(self) -> list[str]:
        """Open session ids in opening order."""
        return list(self._sessions)

    @property
    def has_pending(self) -> bool:
        """True while any open session has unprocessed frames."""
        return any(s.has_pending for s in self._sessions.values())

    def pending_frames(self, session_id: str) -> int:
        """Number of fed-but-unprocessed frames of one session."""
        session = self._get(session_id)
        return session.pending_frames() if session.has_pending else 0

    def frames_done(self, session_id: str) -> int:
        """Number of frames one session has processed (ticked) so far."""
        return self._get(session_id).frames_done

    def open_session(
        self, session_id: str | None = None, record_timeline: bool = True
    ) -> str:
        """Reserve a stream slot; returns the session id.

        Parameters
        ----------
        session_id:
            Explicit id (e.g. an operating-theatre identifier), or
            ``None`` for an auto-generated ``session-NNNN`` id that is
            guaranteed not to collide with explicitly taken names.
        record_timeline:
            With ``record_timeline=False`` the session skips accumulating
            its per-frame gesture/score arrays (``close_session`` then
            returns empty timelines) — use for indefinitely long sessions
            whose consumers only read the per-tick :class:`SessionEvent`
            stream, where an unbounded timeline would leak memory.

        Returns
        -------
        str
            The session id to use with :meth:`feed` /
            :meth:`close_session`.

        Raises
        ------
        ConfigurationError
            If ``session_id`` is already open, or all ``max_sessions``
            slots are in use.

        The slot's ring-buffer window state is reset on reuse, so a new
        procedure always starts from a fresh stream.
        """
        if session_id is None:
            session_id = f"session-{self._next_id:04d}"
            self._next_id += 1
            while session_id in self._sessions:  # explicit id took the name
                session_id = f"session-{self._next_id:04d}"
                self._next_id += 1
        elif session_id in self._sessions:
            raise ConfigurationError(f"session {session_id!r} is already open")
        if not self._free_slots:
            raise ConfigurationError(
                f"all {self.max_sessions} session slots are in use"
            )
        slot = self._free_slots.pop()
        self._sessions[session_id] = _Session(session_id, slot, record_timeline)
        self._current_gesture[slot] = 0
        self._current_score[slot] = 0.0
        if self._gesture_batch is not None:
            self._gesture_batch.reset(np.array([slot]))
        if self._error_batch is not None:
            self._error_batch.reset(np.array([slot]))
        return session_id

    def feed(self, session_id: str, frames: np.ndarray) -> None:
        """Enqueue kinematics frames for a session.

        Parameters
        ----------
        session_id:
            An open session (anything else raises ``DatasetError``).
        frames:
            ``(n, n_features)`` kinematics rows, or a single
            ``(n_features,)`` frame; any number, any cadence.  Frames are
            consumed one per :meth:`tick`, in feed order.  The array is
            not copied — callers must not mutate it afterwards.

        Raises
        ------
        ShapeError
            If the frame width disagrees with the width the service was
            bound to on its first feed (or with the monitor's trained
            width, checked eagerly on that first feed).
        DatasetError
            If no session ``session_id`` is open.

        The first successful feed allocates the service's shared ring
        buffers and permanently binds its feature width.
        """
        session = self._get(session_id)
        frames = np.asarray(frames, dtype=float)
        if frames.ndim == 1:
            frames = frames[None, :]
        if frames.ndim != 2:
            raise ShapeError(
                f"frames must be (n, n_features), got shape {frames.shape}"
            )
        if frames.shape[0] == 0:
            return
        self._ensure_buffers(frames.shape[1])
        if frames.shape[1] != self._n_features:
            raise ShapeError(
                f"service is bound to {self._n_features} features, "
                f"got frames with {frames.shape[1]}"
            )
        session.pending.append(frames)
        session.feed_ts.append(time.perf_counter())

    def close_session(self, session_id: str) -> SessionResult:
        """Free the session's slot and return its full timeline.

        Pending (un-ticked) frames are discarded; call :meth:`drain`
        first to process them.
        """
        session = self._get(session_id)
        del self._sessions[session_id]
        self._free_slots.append(session.slot)
        scores = np.asarray(session.scores)
        return SessionResult(
            session_id=session_id,
            gestures=np.asarray(session.gestures, dtype=int),
            unsafe_scores=scores,
            unsafe_flags=(scores >= self.monitor.threshold).astype(int),
        )

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def export_session(
        self, session_id: str, *, remove: bool = False
    ) -> SessionState:
        """Snapshot one session's complete serving state.

        The returned :class:`SessionState` carries everything needed to
        continue the session elsewhere — progress, recorded timeline,
        **pending (un-ticked) frames**, and the ring/emission state of
        both pipeline stages — so no drain is required before a
        migration and no frame is ever dropped by one.

        Parameters
        ----------
        session_id:
            An open session (``DatasetError`` otherwise).
        remove:
            With ``remove=True`` the session is also evicted — its slot
            freed with no :class:`SessionResult` produced — which is the
            *migrate-out* half of a live migration.  The default leaves
            the session untouched (a consistent point-in-time copy).
        """
        session = self._get(session_id)
        if session.has_pending:
            head = session.pending[0][session.offset :]
            rest = list(session.pending)[1:]
            pending = (
                np.concatenate([head, *rest], axis=0) if rest else head.copy()
            )
        else:
            pending = np.empty((0, self._n_features or 0))
        gesture_window: WindowSlotState | None = None
        error_window: WindowSlotState | None = None
        if self._gesture_batch is not None:
            assert self._error_batch is not None
            gesture_window = self._gesture_batch.export_slot(session.slot)
            error_window = self._error_batch.export_slot(session.slot)
        state = SessionState(
            session_id=session.id,
            frames_done=session.frames_done,
            record_timeline=session.record_timeline,
            current_gesture=int(self._current_gesture[session.slot]),
            current_score=float(self._current_score[session.slot]),
            gestures=np.asarray(session.gestures, dtype=np.int64),
            scores=np.asarray(session.scores, dtype=float),
            pending=pending,
            n_features=self._n_features,
            gesture_window=gesture_window,
            error_window=error_window,
        )
        if remove:
            del self._sessions[session_id]
            self._free_slots.append(session.slot)
        return state

    def import_session(self, state: SessionState) -> str:
        """Adopt a session exported from another (or this) service.

        The receiving service must serve the same trained monitor (same
        window configurations and feature width); the session resumes
        exactly where the export left it — the next :meth:`tick`
        advances it onto the frame it would have processed had it never
        moved, with identical window contents.

        Raises
        ------
        ConfigurationError
            If the session id is already open here, or no slot is free.
        ShapeError
            If the state's feature width or window shapes disagree with
            this service's binding.
        """
        if state.session_id in self._sessions:
            raise ConfigurationError(
                f"session {state.session_id!r} is already open"
            )
        if not self._free_slots:
            raise ConfigurationError(
                f"all {self.max_sessions} session slots are in use"
            )
        if state.n_features is not None:
            self._ensure_buffers(state.n_features)
            if state.n_features != self._n_features:
                raise ShapeError(
                    f"service is bound to {self._n_features} features, "
                    f"imported session carries {state.n_features}"
                )
        # Validate window state against this service's batches before
        # mutating anything, so a mismatched import leaves no trace.
        if (state.gesture_window is not None) != (state.error_window is not None):
            raise ConfigurationError(
                "session state must carry both window states or neither"
            )
        slot = self._free_slots.pop()
        try:
            if self._gesture_batch is not None:
                assert self._error_batch is not None
                self._gesture_batch.reset(np.array([slot]))
                self._error_batch.reset(np.array([slot]))
                if state.gesture_window is not None:
                    self._gesture_batch.import_slot(slot, state.gesture_window)
                    self._error_batch.import_slot(slot, state.error_window)
        except ShapeError:
            self._free_slots.append(slot)
            raise
        session = _Session(state.session_id, slot, state.record_timeline)
        session.frames_done = int(state.frames_done)
        session.gestures = [int(g) for g in state.gestures]
        session.scores = [float(s) for s in state.scores]
        pending = np.asarray(state.pending, dtype=float)
        if pending.shape[0]:
            session.pending.append(pending)
            # Migrated frames are re-stamped at import: latency counts
            # time in *this* service, not transit (states don't carry
            # cross-process monotonic clocks).
            session.feed_ts.append(time.perf_counter())
        self._sessions[state.session_id] = session
        self._current_gesture[slot] = int(state.current_gesture)
        self._current_score[slot] = float(state.current_score)
        return state.session_id

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def tick(self) -> list[SessionEvent]:
        """Advance every session with pending input by one frame.

        Runs the gesture stage **once** over all gesture windows that
        became ready this tick, then the error stage once per distinct
        active gesture over the ready error windows — one model forward
        per stage per tick, regardless of how many sessions advanced.
        The advanced slots and their popped frames are staged in
        preallocated scratch (no per-tick slot/stack arrays).

        Returns
        -------
        list[SessionEvent]
            One event per advanced session, in session opening order;
            empty when no session had pending frames (an idle tick is a
            no-op and is not recorded in :attr:`stats`).  Events report
            gesture 0 and score 0.0 while a session's windows are still
            warming up.

        Each non-empty tick appends one latency sample to :attr:`stats`.
        """
        active = [s for s in self._sessions.values() if s.has_pending]
        if not active:
            return []
        start = time.perf_counter()
        assert (
            self._gesture_batch is not None
            and self._error_batch is not None
            and self._slots_scratch is not None
            and self._frames_scratch is not None
        )
        n_active = len(active)
        slots = self._slots_scratch[:n_active]
        frames = self._frames_scratch[:n_active]
        for i, session in enumerate(active):
            slots[i] = session.slot
            session.pop_frame_into(frames[i])

        if self._feature_idx is None:
            g_frames = frames
        else:
            assert self._g_frames_scratch is not None
            g_frames = self._g_frames_scratch[:n_active]
            np.take(frames, self._feature_idx, axis=1, out=g_frames)
        g_ready, g_windows = self._gesture_batch.push(g_frames, slots)
        if g_ready.any():
            gesture_backend = self._gesture_backend_or_none()
            if gesture_backend is not None:
                self._current_gesture[slots[g_ready]] = (
                    gesture_backend.predict(g_windows) + 1
                )

        e_ready, e_windows = self._error_batch.push(frames, slots)
        if e_ready.any():
            e_slots = slots[e_ready]
            gestures = self._current_gesture[e_slots]
            known = gestures > 0
            # One predict_proba per distinct gesture, over every session
            # currently in that context.  Gestures without a trained
            # classifier score 0.0 (safe) — never a stale carry-over.
            new_scores = np.zeros(e_slots.size)
            for gesture_number in np.unique(gestures[known]):
                backend = self._error_backend_or_none(
                    Gesture(int(gesture_number))
                )
                if backend is None:
                    continue
                mask = gestures == gesture_number
                new_scores[mask] = backend.predict_proba(
                    e_windows[mask]
                ).reshape(-1)
            self._current_score[e_slots[known]] = new_scores[known]

        threshold = self.monitor.threshold
        events = []
        now = time.perf_counter()
        n_flagged = 0
        latency_hist = self.telemetry.histogram("alert_latency_us")
        for session in active:
            gesture = int(self._current_gesture[session.slot])
            score = float(self._current_score[session.slot])
            if session.record_timeline:
                session.gestures.append(gesture)
                session.scores.append(score)
            flag = score >= threshold
            n_flagged += flag
            latency_us = (
                (now - session.last_feed_ts) * 1e6 if session.last_feed_ts else 0.0
            )
            if latency_us > 0.0:
                latency_hist.observe(latency_us)
            events.append(
                SessionEvent(
                    session_id=session.id,
                    frame_index=session.frames_done,
                    gesture=gesture,
                    score=score,
                    flag=flag,
                    latency_us=latency_us,
                )
            )
            session.frames_done += 1
        self.stats.record(1000.0 * (time.perf_counter() - start), len(active))
        self.telemetry.counter("events_emitted").inc(len(events))
        if n_flagged:
            self.telemetry.counter("events_flagged").inc(int(n_flagged))
        if self.event_store is not None:
            self.event_store.append_batch(events)
        return events

    def drain(self, collect: bool = True) -> list[SessionEvent]:
        """Tick until no session has pending frames.

        With ``collect=False`` events are discarded as they are produced
        (throughput benchmarking); per-session timelines still accumulate.
        """
        events: list[SessionEvent] = []
        while self.has_pending:
            tick_events = self.tick()
            if collect:
                events.extend(tick_events)
        return events

    # ------------------------------------------------------------------
    def _get(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise DatasetError(f"no open session {session_id!r}")
        return session

    def _expected_n_features(self) -> int | None:
        """Kinematics width the monitor was trained for, when derivable.

        The error-stage scalers see full-width frames; the gesture scaler
        only does when no feature subset is configured.  An untrained
        monitor constrains nothing.
        """
        classifier = self.monitor.gesture_classifier
        if (
            classifier.config.feature_indices is None
            and classifier.scaler.mean_ is not None
        ):
            return int(classifier.scaler.mean_.shape[0])
        for clf in self.monitor.library.classifiers.values():
            if clf.scaler.mean_ is not None:
                return int(clf.scaler.mean_.shape[0])
        return None

    def _ensure_buffers(self, n_features: int) -> None:
        if self._gesture_batch is not None:
            return
        expected = self._expected_n_features()
        if expected is not None and n_features != expected:
            raise ShapeError(
                f"monitor was trained for {expected} kinematics features, "
                f"got frames with {n_features}"
            )
        self._n_features = int(n_features)
        classifier_cfg = self.monitor.gesture_classifier.config
        feature_idx = classifier_cfg.feature_indices
        g_features = n_features if feature_idx is None else len(feature_idx)
        self._gesture_batch = StreamingWindowBatch(
            classifier_cfg.window, self.max_sessions, g_features
        )
        self._error_batch = StreamingWindowBatch(
            self.monitor.config.error_window, self.max_sessions, n_features
        )
        # Per-tick staging scratch: slot ids and one popped frame per
        # advanced session, reused across every tick.
        self._slots_scratch = np.empty(self.max_sessions, dtype=np.int64)
        self._frames_scratch = np.empty((self.max_sessions, n_features))
        if feature_idx is not None:
            self._feature_idx = np.asarray(feature_idx, dtype=np.intp)
            self._g_frames_scratch = np.empty((self.max_sessions, g_features))
