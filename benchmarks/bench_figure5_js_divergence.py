"""Benchmark: regenerate paper Figure 5 (erroneous-gesture JS divergence).

KDE + pairwise Jensen-Shannon divergence between erroneous-gesture
distributions of the frequent Suturing gesture classes.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figure5


def test_figure5_js_divergence(benchmark, scale):
    result = run_once(benchmark, lambda: figure5.run(scale=scale, seed=0))
    print()
    print(figure5.render(result))

    matrix = result.matrix
    # Valid divergence matrix: symmetric, zero diagonal, within [0, ln 2].
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 0.0)
    assert matrix.max() <= np.log(2) + 1e-9
    # The frequent classes yield enough samples to be compared at all
    # (the paper could not for the rare ones).
    assert len(result.gestures) >= 3
    # There is non-trivial structure (some pairs diverge much more than
    # others), which is the figure's point.
    off = matrix[np.triu_indices_from(matrix, 1)]
    assert off.max() > 2.0 * max(off.min(), 1e-6)
