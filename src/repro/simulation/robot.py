"""Raven II simulator core.

:class:`RavenSimulator` replays commanded trajectories (from the task
planner / tele-operator, possibly perturbed by the fault injector),
resolves contact physics, and logs the full 277-feature state vector at
the kinematics rate plus virtual-camera frames at 30 fps — the same data
products the paper's ROS Gazebo setup records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..config import RAVEN_DEFAULT_SAMPLE_RATE_HZ
from ..errors import ShapeError, SimulationError
from ..kinematics.rotations import rotation_from_euler
from ..kinematics.trajectory import Trajectory
from .camera import VirtualCamera
from .motion import finite_difference_velocity
from .physics import GrasperPhysics, PhysicsEngine, PhysicsOutcome
from .schema import RAVEN_STATE_WIDTH, RavenStateLayout
from .workspace import Workspace


@dataclass
class CommandedTrajectory:
    """The command stream a tele-operator (or planner) sends to the robot.

    Attributes
    ----------
    positions:
        Commanded tip positions per arm: ``{"left": (n, 3), "right": (n, 3)}``.
    jaw_angles:
        Commanded jaw angles per arm: ``{"left": (n,), "right": (n,)}``.
    gestures:
        Per-step gesture annotation recorded by the operator.
    sample_rate_hz:
        Command rate (equals the simulator kinematics rate).
    transfer_arm:
        Which arm performs the block transfer.
    """

    positions: dict[str, np.ndarray]
    jaw_angles: dict[str, np.ndarray]
    gestures: np.ndarray
    sample_rate_hz: float = RAVEN_DEFAULT_SAMPLE_RATE_HZ
    transfer_arm: str = "left"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for arm in ("left", "right"):
            if arm not in self.positions or arm not in self.jaw_angles:
                raise ShapeError(f"missing commands for arm {arm!r}")
            self.positions[arm] = np.asarray(self.positions[arm], dtype=float)
            self.jaw_angles[arm] = np.asarray(self.jaw_angles[arm], dtype=float)
            if self.positions[arm].ndim != 2 or self.positions[arm].shape[1] != 3:
                raise ShapeError(f"{arm} positions must be (n, 3)")
        self.gestures = np.asarray(self.gestures, dtype=int)
        n = self.n_steps
        for arm in ("left", "right"):
            if self.positions[arm].shape[0] != n or self.jaw_angles[arm].shape[0] != n:
                raise ShapeError("all command streams must have equal length")
        if self.gestures.shape != (n,):
            raise ShapeError("gestures must have one entry per step")
        if self.transfer_arm not in ("left", "right"):
            raise ShapeError("transfer_arm must be 'left' or 'right'")

    @property
    def n_steps(self) -> int:
        """Number of command samples."""
        return int(self.positions["left"].shape[0])

    def copy(self) -> "CommandedTrajectory":
        """Deep copy (the fault injector mutates copies, never originals)."""
        return CommandedTrajectory(
            positions={a: p.copy() for a, p in self.positions.items()},
            jaw_angles={a: j.copy() for a, j in self.jaw_angles.items()},
            gestures=self.gestures.copy(),
            sample_rate_hz=self.sample_rate_hz,
            transfer_arm=self.transfer_arm,
            metadata=dict(self.metadata),
        )


@dataclass
class SimulationResult:
    """Everything one simulated trial produces."""

    #: Full 277-feature log, shape ``(n_steps, 277)``.
    states: np.ndarray
    #: Per-step gesture labels.
    gestures: np.ndarray
    #: Physical outcome of the trial.
    outcome: PhysicsOutcome
    #: Frame index of grasp / release events (simulator rate), or None.
    grasp_frame: int | None
    release_frame: int | None
    #: Virtual camera frames (30 fps) and their kinematics-frame indices.
    video_frames: np.ndarray | None
    video_frame_indices: np.ndarray | None
    #: Block centroid world positions per kinematics step, shape (n, 3).
    block_positions: np.ndarray
    sample_rate_hz: float
    metadata: dict[str, Any] = field(default_factory=dict)

    def kinematics_trajectory(self, layout: RavenStateLayout | None = None) -> Trajectory:
        """Extract the 38-variable JIGSAWS-style trajectory from the log."""
        layout = layout or RavenStateLayout()
        frames = self.states[:, layout.jigsaws_38_indices()]
        return Trajectory(
            frames=frames,
            frame_rate_hz=self.sample_rate_hz,
            gestures=self.gestures,
            metadata=dict(self.metadata),
        )


class RavenSimulator:
    """Replays command streams against the contact model.

    Parameters
    ----------
    workspace:
        Scene template; each trial works on a fresh copy.
    physics:
        Contact-model parameters.
    camera:
        Virtual camera; pass ``None`` to skip video logging.
    rng:
        Seed / generator for trial-to-trial physical variability.
    """

    def __init__(
        self,
        workspace: Workspace | None = None,
        physics: GrasperPhysics | None = None,
        camera: VirtualCamera | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.workspace_template = workspace or Workspace()
        self.physics = physics or GrasperPhysics()
        self.camera = camera
        from ..config import as_generator

        self._rng = as_generator(rng)
        self._layout = RavenStateLayout()

    # ------------------------------------------------------------------
    def run(
        self,
        commands: CommandedTrajectory,
        record_video: bool = True,
    ) -> SimulationResult:
        """Execute one trial and return its full log.

        The robot tracks commanded positions through a first-order servo
        (critically damped tracking with a small time constant), so
        commanded discontinuities — e.g. injected jumps — appear smoothed
        but fast in the actual state, as on the real robot.
        """
        n = commands.n_steps
        if n < 2:
            raise SimulationError("commanded trajectory must have at least 2 steps")
        dt = 1.0 / commands.sample_rate_hz
        workspace = self.workspace_template.copy()
        engine = PhysicsEngine(workspace, self.physics, self._rng)

        # Servo tracking constant: the robot reaches ~95% of a step
        # command in three time constants (30 ms at the default rate).
        alpha = float(np.clip(dt / 0.010, 0.05, 1.0))

        actual_pos = {
            arm: np.empty((n, 3)) for arm in ("left", "right")
        }
        actual_jaw = {arm: np.empty(n) for arm in ("left", "right")}
        block_positions = np.empty((n, 3))

        state_pos = {
            arm: commands.positions[arm][0].copy() for arm in ("left", "right")
        }
        state_jaw = {arm: float(commands.jaw_angles[arm][0]) for arm in ("left", "right")}

        video_frames: list[np.ndarray] = []
        video_indices: list[int] = []
        if record_video and self.camera is not None:
            video_every = max(
                1, int(round(commands.sample_rate_hz / self.camera.intrinsics.frame_rate_hz))
            )
        else:
            video_every = 0

        for t in range(n):
            for arm in ("left", "right"):
                target = commands.positions[arm][t]
                state_pos[arm] = state_pos[arm] + alpha * (target - state_pos[arm])
                jaw_target = float(commands.jaw_angles[arm][t])
                state_jaw[arm] = state_jaw[arm] + alpha * (jaw_target - state_jaw[arm])
                actual_pos[arm][t] = state_pos[arm]
                actual_jaw[arm][t] = state_jaw[arm]
            engine.step(
                actual_pos[commands.transfer_arm][t],
                actual_jaw[commands.transfer_arm][t],
                commands.transfer_arm,
            )
            block_positions[t] = workspace.block.position
            if video_every and t % video_every == 0:
                tips = [actual_pos["left"][t], actual_pos["right"][t]]
                video_frames.append(self.camera.render(workspace, tips))
                video_indices.append(t)

        states = self._assemble_states(commands, actual_pos, actual_jaw, dt)
        drop_window = _gesture_window(commands.gestures, gesture=11)
        outcome = engine.outcome(drop_window)

        return SimulationResult(
            states=states,
            gestures=commands.gestures.copy(),
            outcome=outcome,
            grasp_frame=engine.grasp_frame,
            release_frame=engine.release_frame,
            video_frames=np.stack(video_frames) if video_frames else None,
            video_frame_indices=np.array(video_indices) if video_indices else None,
            block_positions=block_positions,
            sample_rate_hz=commands.sample_rate_hz,
            metadata=dict(commands.metadata),
        )

    # ------------------------------------------------------------------
    def _assemble_states(
        self,
        commands: CommandedTrajectory,
        actual_pos: dict[str, np.ndarray],
        actual_jaw: dict[str, np.ndarray],
        dt: float,
    ) -> np.ndarray:
        """Fill the 277-wide state log from the tracked trajectories."""
        n = commands.n_steps
        layout = self._layout
        states = np.zeros((n, RAVEN_STATE_WIDTH))
        layout.view(states, "runlevel")[:] = 3.0  # RL_PEDAL_DN: tele-op active
        layout.view(states, "dt")[:] = dt
        layout.view(states, "last_seq")[:, 0] = np.arange(n)
        layout.view(states, "time_s")[:, 0] = np.arange(n) * dt
        layout.view(states, "gesture_id")[:, 0] = commands.gestures
        fault_mask = commands.metadata.get("fault_mask")
        if fault_mask is not None:
            layout.view(states, "fault_active")[:, 0] = np.asarray(fault_mask, dtype=float)

        pos = layout.view(states, "pos")
        pos_d = layout.view(states, "pos_d")
        grasp = layout.view(states, "grasp")
        grasp_d = layout.view(states, "grasp_d")
        lin_vel = layout.view(states, "lin_vel")
        ori = layout.view(states, "ori")
        ori_d = layout.view(states, "ori_d")
        for k, arm in enumerate(("left", "right")):
            pos[:, 3 * k : 3 * k + 3] = actual_pos[arm]
            pos_d[:, 3 * k : 3 * k + 3] = commands.positions[arm]
            grasp[:, k] = actual_jaw[arm]
            grasp_d[:, k] = commands.jaw_angles[arm]
            lin_vel[:, 3 * k : 3 * k + 3] = finite_difference_velocity(
                actual_pos[arm], commands.sample_rate_hz
            )
            # Tool orientation: pointing down with a yaw that follows the
            # horizontal travel direction (plausible wrist behaviour).
            heading = np.arctan2(
                lin_vel[:, 3 * k + 1], lin_vel[:, 3 * k + 0] + 1e-9
            )
            for t in range(n):
                rot = rotation_from_euler(np.pi, 0.0, float(heading[t]))
                ori[t, 9 * k : 9 * k + 9] = rot.reshape(9)
            ori_d[:, 9 * k : 9 * k + 9] = ori[:, 9 * k : 9 * k + 9]

        # Joint/motor blocks: derived through a fixed synthetic kinematic
        # map (linear mix of tip pose) plus the jaw angle — enough to give
        # these channels realistic correlated dynamics.
        mix = np.linspace(0.2, 1.0, 8)[None, :]
        for k, arm in enumerate(("left", "right")):
            arm_pos = actual_pos[arm]
            joint = (
                arm_pos[:, 0:1] * mix * 0.01
                + arm_pos[:, 1:2] * mix[:, ::-1] * 0.01
                + arm_pos[:, 2:3] * 0.005
            )
            joint[:, 7] = actual_jaw[arm]
            jpos = layout.view(states, "jpos")
            jvel = layout.view(states, "jvel")
            jpos_d = layout.view(states, "jpos_d")
            mpos = layout.view(states, "mpos")
            mvel = layout.view(states, "mvel")
            mpos_d = layout.view(states, "mpos_d")
            cols = slice(8 * k, 8 * k + 8)
            jpos[:, cols] = joint
            jvel[:, cols] = np.gradient(joint, dt, axis=0)
            jpos_d[:, cols] = joint
            mpos[:, cols] = joint * 180.0 / np.pi  # motor degrees
            mvel[:, cols] = jvel[:, cols] * 180.0 / np.pi
            mpos_d[:, cols] = mpos[:, cols]
            layout.view(states, "enc_vals")[:, cols] = mpos[:, cols] * 100.0
            layout.view(states, "tau")[:, cols] = jvel[:, cols] * 0.1
        return states


def _gesture_window(gestures: np.ndarray, gesture: int) -> tuple[int, int] | None:
    """First contiguous run of ``gesture`` as ``(start, end_exclusive)``."""
    hits = np.flatnonzero(gestures == gesture)
    if hits.size == 0:
        return None
    return int(hits[0]), int(hits[-1]) + 1
