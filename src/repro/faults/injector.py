"""Applies fault specifications to commanded trajectories.

The injector perturbs the *commanded* packet stream before it reaches the
robot control software — exactly how the paper's tool "sent the faulty
trajectory packets to the robot control software", letting the same
fault-free demonstration be replayed with different perturbations.
"""

from __future__ import annotations

import numpy as np

from ..errors import FaultInjectionError
from ..simulation.robot import CommandedTrajectory
from .types import CartesianFault, FaultSpec, GrasperAngleFault


class FaultInjector:
    """Stateless trajectory perturbation engine."""

    def inject(
        self, commands: CommandedTrajectory, spec: FaultSpec
    ) -> CommandedTrajectory:
        """Return a perturbed copy of ``commands``.

        The perturbation targets the transfer arm.  A per-step boolean
        fault mask is stored in ``metadata["fault_mask"]`` (picked up by
        the simulator's ``fault_active`` state channel) and the spec
        itself in ``metadata["fault_spec"]``.
        """
        out = commands.copy()
        n = out.n_steps
        mask = np.zeros(n, dtype=bool)
        arm = out.transfer_arm
        if spec.grasper is not None:
            self._apply_grasper(out.jaw_angles[arm], spec.grasper, mask)
        if spec.cartesian is not None:
            self._apply_cartesian(out.positions[arm], spec.cartesian, mask)
        out.metadata["fault_mask"] = mask
        out.metadata["fault_spec"] = spec
        out.metadata["faulty"] = True
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_grasper(
        jaw: np.ndarray, fault: GrasperAngleFault, mask: np.ndarray
    ) -> None:
        n = jaw.shape[0]
        start, end = fault.window.to_frames(n)
        if end - start < 2:
            raise FaultInjectionError("grasper fault window too short")
        ramp_len = max(1, int(round(fault.ramp_frac * (end - start))))
        initial = jaw[start]
        ramp = np.linspace(initial, fault.target_rad, ramp_len)
        jaw[start : start + ramp_len] = ramp
        jaw[start + ramp_len : end] = fault.target_rad
        mask[start:end] = True

    @staticmethod
    def _apply_cartesian(
        positions: np.ndarray, fault: CartesianFault, mask: np.ndarray
    ) -> None:
        n = positions.shape[0]
        start, end = fault.window.to_frames(n)
        if end - start < 2:
            raise FaultInjectionError("cartesian fault window too short")
        ramp_len = max(1, int(round(fault.ramp_frac * (end - start))))
        per_axis = fault.per_axis_mm
        profile = np.ones(end - start) * per_axis
        profile[:ramp_len] = np.linspace(0.0, per_axis, ramp_len)
        positions[start:end] += profile[:, None]
        mask[start:end] = True
