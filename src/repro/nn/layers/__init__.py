"""Neural-network layers (forward + explicit backward passes)."""

from .activations import ReLU, Sigmoid, Tanh
from .base import Layer
from .conv1d import Conv1D
from .dense import Dense
from .dropout import Dropout
from .normalization import BatchNorm
from .pooling import Flatten, GlobalAveragePool1D, MaxPool1D
from .recurrent import LSTM

__all__ = [
    "BatchNorm",
    "Conv1D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAveragePool1D",
    "LSTM",
    "Layer",
    "MaxPool1D",
    "ReLU",
    "Sigmoid",
    "Tanh",
]
