"""The chaos gate (PR 7): seeded fault-injection campaigns proving the
resume machinery loses nothing.

Each campaign drives a fleet of sessions over a live TCP gateway while
``tests/chaos_harness.py`` randomly kills client connections (followed
by detach/resume on fresh connections), SIGKILLs shard workers,
resizes the fleet mid-stream, and sheds live sessions between shards
through the balancer's migration path — then asserts **zero lost
frames** and **bit-identical per-session event streams** against an
uninterrupted single :class:`~repro.serving.MonitorService` run.

Marked ``chaos`` and excluded from the default tier-1 run (see
``pyproject.toml``); CI runs it in a dedicated job via ``-m chaos``.
Reproduce a failure locally with the seed from the failure message:

    CHAOS_SEED=<seed> PYTHONPATH=src python -m pytest -m chaos -q
"""

import pytest

from chaos_harness import ChaosConfig, run_campaign
from repro.serving import make_synthetic_monitor

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=10, seed=0)


def _assert_clean(report):
    context = report.describe()
    assert report.total_injections >= report.config.n_injections, context
    assert not report.lost_frames, f"{context} lost={report.lost_frames}"
    assert not report.mismatches, f"{context} diverged={report.mismatches}"
    assert not report.failed_sessions, (
        f"{context} failed={report.failed_sessions}"
    )
    resume = report.gateway_stats["resume"]
    assert resume["expired_total"] == 0, f"{context} resume={resume}"
    assert resume["parked"] == 0, f"{context} resume={resume}"
    if report.config.event_store_dir is not None:
        _assert_store_parity(report, context)


def _assert_store_parity(report, context):
    """The durable-log half of the gate: the on-disk event log replays
    bit-identical to what clients saw, nothing was dropped by the
    writer's bounded ring, and every applied resize and shed left a
    marker."""
    assert not report.store_mismatches, (
        f"{context} store diverged={report.store_mismatches}"
    )
    assert report.store_stats.get("dropped", -1) == 0, (
        f"{context} store={report.store_stats}"
    )
    assert report.store_resize_markers == report.injections["resize"], (
        f"{context} markers={report.store_resize_markers} "
        f"store={report.store_stats}"
    )
    assert report.store_shed_markers == report.injections["shed"], (
        f"{context} shed markers={report.store_shed_markers} "
        f"store={report.store_stats}"
    )


def test_chaos_campaign_smoke(monitor, tmp_path):
    """A small fast campaign — the harness itself must hold up before
    the full gate is worth running."""
    report = run_campaign(
        monitor,
        ChaosConfig(
            seed=11,
            n_sessions=8,
            n_injections=25,
            n_clients=3,
            event_store_dir=tmp_path / "log",
        ),
    )
    _assert_clean(report)
    assert report.injections["disconnect"] > 0, report.describe()


def test_chaos_campaign_full(monitor, tmp_path):
    """The acceptance gate: >= 200 random injections under 64-session
    load, zero lost frames, bit-identical event streams — on the wire
    and replayed from the durable on-disk log alike."""
    config = ChaosConfig.from_env()
    if config.artifact_dir is None:
        # No reproduction bundle requested: keep the durable log in the
        # test's tmp dir.  With CHAOS_ARTIFACT_DIR set (nightly CI) the
        # harness parks the log under the bundle so a failure uploads
        # its segments alongside seed.txt.
        config.event_store_dir = tmp_path / "log"
    print(f"chaos campaign: seed={config.seed} "
          f"sessions={config.n_sessions} injections={config.n_injections}")
    report = run_campaign(monitor, config)
    print(f"chaos campaign done: {report.describe()}")
    _assert_clean(report)
    assert report.injections["disconnect"] >= 10, report.describe()
    assert report.injections["resume"] >= 10, report.describe()
    assert report.injections["kill"] >= 1, report.describe()
    assert report.injections["resize"] >= 1, report.describe()
    assert report.injections["shed"] >= 1, report.describe()
