"""Gesture-specific error rubric (paper Table II).

Each surgical gesture has a small set of *common errors* (failure modes)
that human annotators look for in video, and each error has *potential
kinematic causes* — the state variables whose perturbation can produce it.
The rubric drives three things in this reproduction:

1. the synthetic-data error injector (:mod:`repro.jigsaws.errors`), which
   realises each error mode as a kinematic signature;
2. the fault-injection campaign (:mod:`repro.faults`), which perturbs the
   corresponding state variables; and
3. documentation/reporting (which gestures can be erroneous at all —
   gestures without rubric entries, e.g. G10, have no reaction-time rows
   in paper Table IX).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .vocabulary import Gesture


class FaultCause(str, Enum):
    """Kinematic state variables whose faults can cause an error mode."""

    WRONG_ROTATION = "wrong rotation angles"
    WRONG_CARTESIAN = "wrong cartesian position"
    SUDDEN_JUMP = "sudden cartesian jumps"
    HIGH_GRASPER_ANGLE = "high grasper angle"
    LOW_GRASPER_ANGLE = "low grasper angle"
    LOW_PRESSURE = "low pressure applied"


class ErrorMode(str, Enum):
    """Common gesture-specific failure modes from paper Table II."""

    MULTIPLE_ATTEMPTS = "more than one attempt"
    MULTIPLE_MOVEMENTS = "driving with more than one movement"
    NEEDLE_DROP = "unintentional needle drop"
    OUT_OF_VIEW = "needle holder not in view at all times"
    NOT_ALONG_CURVE = "not removing the needle along its curve"
    USES_TISSUE_FOR_STABILITY = "uses tissue or instrument for stability"
    KNOT_LEFT_LOOSE = "knot left loose"
    FAILURE_TO_DROPOFF = "failure to dropoff"
    BLOCK_DROP = "unintentional block drop"
    WRONG_DROP_POSITION = "block dropped at wrong position"


@dataclass(frozen=True)
class GestureErrorSpec:
    """One (gesture, error mode) rubric entry."""

    gesture: Gesture
    mode: ErrorMode
    causes: tuple[FaultCause, ...]


#: The rubric of paper Table II.  Order within a gesture reflects the
#: table's listing.  Block Transfer reuses the Suturing vocabulary: its
#: "needle" errors become block errors in that task's semantics.
ERROR_RUBRIC: tuple[GestureErrorSpec, ...] = (
    GestureErrorSpec(
        Gesture.G1, ErrorMode.MULTIPLE_ATTEMPTS, (FaultCause.WRONG_ROTATION,)
    ),
    GestureErrorSpec(
        Gesture.G2, ErrorMode.MULTIPLE_ATTEMPTS, (FaultCause.WRONG_ROTATION,)
    ),
    GestureErrorSpec(
        Gesture.G3, ErrorMode.MULTIPLE_MOVEMENTS, (FaultCause.WRONG_CARTESIAN,)
    ),
    GestureErrorSpec(
        Gesture.G3, ErrorMode.NOT_ALONG_CURVE, (FaultCause.WRONG_CARTESIAN,)
    ),
    GestureErrorSpec(
        Gesture.G4,
        ErrorMode.NEEDLE_DROP,
        (FaultCause.WRONG_CARTESIAN, FaultCause.SUDDEN_JUMP),
    ),
    GestureErrorSpec(
        Gesture.G4,
        ErrorMode.OUT_OF_VIEW,
        (FaultCause.WRONG_CARTESIAN, FaultCause.SUDDEN_JUMP),
    ),
    GestureErrorSpec(
        Gesture.G5, ErrorMode.NEEDLE_DROP, (FaultCause.HIGH_GRASPER_ANGLE,)
    ),
    GestureErrorSpec(
        Gesture.G6,
        ErrorMode.OUT_OF_VIEW,
        (FaultCause.WRONG_CARTESIAN, FaultCause.SUDDEN_JUMP),
    ),
    GestureErrorSpec(
        Gesture.G6,
        ErrorMode.NEEDLE_DROP,
        (FaultCause.WRONG_CARTESIAN, FaultCause.SUDDEN_JUMP),
    ),
    GestureErrorSpec(
        Gesture.G8, ErrorMode.USES_TISSUE_FOR_STABILITY, (FaultCause.WRONG_ROTATION,)
    ),
    GestureErrorSpec(
        Gesture.G8, ErrorMode.MULTIPLE_ATTEMPTS, (FaultCause.WRONG_ROTATION,)
    ),
    GestureErrorSpec(
        Gesture.G9, ErrorMode.KNOT_LEFT_LOOSE, (FaultCause.LOW_PRESSURE,)
    ),
    GestureErrorSpec(
        Gesture.G11, ErrorMode.FAILURE_TO_DROPOFF, (FaultCause.LOW_GRASPER_ANGLE,)
    ),
    GestureErrorSpec(
        Gesture.G12,
        ErrorMode.MULTIPLE_ATTEMPTS,
        (FaultCause.WRONG_CARTESIAN, FaultCause.SUDDEN_JUMP),
    ),
)


def error_modes_for(gesture: Gesture) -> tuple[GestureErrorSpec, ...]:
    """All rubric entries for ``gesture`` (empty for error-free gestures)."""
    return tuple(spec for spec in ERROR_RUBRIC if spec.gesture == gesture)


def gestures_with_errors() -> tuple[Gesture, ...]:
    """Gestures that have at least one rubric entry, in index order."""
    seen: dict[Gesture, None] = {}
    for spec in ERROR_RUBRIC:
        seen.setdefault(spec.gesture, None)
    return tuple(sorted(seen, key=int))
