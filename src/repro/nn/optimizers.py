"""Gradient-descent optimisers (SGD with momentum, Adam).

The paper trains every model with Adam (Section III); plain SGD is kept
for ablations and tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class Optimizer:
    """Interface: update parameter arrays in place from gradient arrays.

    ``params``/``grads`` are parallel lists of arrays; state (momentum,
    Adam moments) is keyed by position so the same optimiser instance must
    always be called with the same parameter list.
    """

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0.0:
            raise ConfigurationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update in place."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2014) with bias correction.

    ``clip_norm`` optionally clips the global gradient norm before the
    update — useful for LSTM training stability on small batches.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = 5.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1 and beta2 must be in [0, 1)")
        if epsilon <= 0.0:
            raise ConfigurationError("epsilon must be positive")
        if clip_norm is not None and clip_norm <= 0.0:
            raise ConfigurationError("clip_norm must be positive or None")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.clip_norm = clip_norm
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        if self.clip_norm is not None:
            total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
            if total > self.clip_norm and total > 0.0:
                scale = self.clip_norm / total
                grads = [g * scale for g in grads]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
