"""Layer protocol for the numpy deep-learning framework.

A :class:`Layer` owns named parameter arrays and matching gradient arrays.
``build`` is called once with the input shape (excluding the batch axis)
and an rng; ``forward`` caches whatever the matching ``backward`` needs.
Layers are single-use per forward/backward pair, as in any define-by-run
framework.
"""

from __future__ import annotations

import numpy as np

from ...errors import NotFittedError, ShapeError


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`build`, :meth:`forward` and
    :meth:`backward`, and may expose trainable state through
    :attr:`params` / :attr:`grads` (dicts sharing keys).
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.built = False
        self._input_shape: tuple[int, ...] | None = None
        self._output_shape: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters for ``input_shape`` (batch axis excluded)."""
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output; cache intermediates when ``training``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate: fill ``self.grads`` and return grad wrt input."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def input_shape(self) -> tuple[int, ...]:
        """Input shape (excluding batch) the layer was built for."""
        if self._input_shape is None:
            raise NotFittedError(f"{type(self).__name__} has not been built")
        return self._input_shape

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Output shape (excluding batch) the layer produces."""
        if self._output_shape is None:
            raise NotFittedError(f"{type(self).__name__} has not been built")
        return self._output_shape

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key, value in self.grads.items():
            value[...] = 0.0

    def n_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def get_config(self) -> dict:
        """Constructor arguments needed to re-create this layer."""
        return {}

    def _check_built(self) -> None:
        if not self.built:
            raise NotFittedError(
                f"{type(self).__name__} must be built before forward/backward"
            )

    @staticmethod
    def _require_ndim(x: np.ndarray, ndim: int, name: str) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != ndim:
            raise ShapeError(f"{name} must be {ndim}-D, got shape {x.shape}")
        return x
