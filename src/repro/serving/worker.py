"""Shard worker: one process, one :class:`MonitorService`, one pipe.

:func:`worker_main` is the entry point the sharded router spawns for
every shard.  It rebuilds the trained monitor from the snapshot bytes it
was handed (:func:`repro.serving.snapshot.monitor_from_bytes` — no code
or pickled objects cross the process boundary, only arrays and JSON),
then serves a strict request → reply loop over its
:func:`multiprocessing.Pipe` connection until told to stop or the router
side of the pipe disappears.

Worker-side exceptions are converted to error replies (the worker keeps
serving its other sessions); only a broken pipe or an explicit ``stop``
ends the process.
"""

from __future__ import annotations

import dataclasses

from ..errors import WorkerError
from ..nn.backends import DEFAULT_BACKEND
from .service import MonitorService
from .snapshot import monitor_from_bytes, session_from_bytes, session_to_bytes
from .transport import Reply, Request, error_reply, recv_message


def _dispatch(service: MonitorService, request: Request) -> Reply:
    """Execute one request against the worker's local service."""
    op = request.op
    if op == "open":
        session_id = service.open_session(
            request.session_id, record_timeline=request.record_timeline
        )
        return Reply(ok=True, value=session_id)
    if op == "feed":
        assert request.session_id is not None
        service.feed(request.session_id, request.frames)
        return Reply(ok=True)
    if op == "tick":
        return Reply(ok=True, value=service.tick())
    if op == "drain":
        if request.collect:
            ticks = []
            while service.has_pending:
                ticks.append(service.tick())
        else:
            service.drain(collect=False)
            ticks = []
        # Per-session progress rides along so the router's frame
        # accounting stays exact even when events are not collected.
        progress = {sid: service.frames_done(sid) for sid in service.session_ids}
        return Reply(ok=True, value=(ticks, progress))
    if op == "close":
        assert request.session_id is not None
        return Reply(ok=True, value=service.close_session(request.session_id))
    if op == "migrate_out":
        assert request.session_id is not None
        state = service.export_session(request.session_id, remove=True)
        return Reply(ok=True, value=session_to_bytes(state))
    if op == "migrate_in":
        assert request.state is not None
        state = session_from_bytes(request.state)
        return Reply(ok=True, value=service.import_session(state))
    if op == "stats":
        return Reply(ok=True, value=service.stats)
    if op in ("ping", "stop"):
        return Reply(ok=True)
    return Reply(ok=False, error_type="WorkerError", error=f"unknown op {op!r}")


def worker_main(
    conn, monitor_blob: bytes, max_sessions: int, backend: str = DEFAULT_BACKEND
) -> None:
    """Serve one shard until ``stop`` or the pipe closes.

    Parameters
    ----------
    conn:
        Worker end of the duplex pipe to the router.
    monitor_blob:
        :func:`~repro.serving.snapshot.monitor_to_bytes` archive to
        bootstrap the shard's :class:`SafetyMonitor` from.
    max_sessions:
        Slot capacity of this shard's :class:`MonitorService`.
    backend:
        Inference backend name for this shard's engine.  The router
        passes every shard the same resolved choice so a K-shard fleet
        runs one plan (see :data:`repro.nn.backends.BACKEND_NAMES`).
    """
    monitor = monitor_from_bytes(monitor_blob)
    service = MonitorService(monitor, max_sessions=max_sessions, backend=backend)
    while True:
        try:
            request: Request = recv_message(conn, Request, who="router")
        except EOFError:
            break  # router is gone; nothing left to serve
        except WorkerError as exc:
            # Corrupt or foreign message on an intact stream: report it
            # and keep serving — the shard's sessions outlive bad input.
            try:
                conn.send(error_reply(exc, has_pending=service.has_pending))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            reply = _dispatch(service, request)
        except Exception as exc:  # noqa: BLE001 - reduced to an error reply
            reply = error_reply(exc, has_pending=service.has_pending)
        else:
            reply = dataclasses.replace(reply, has_pending=service.has_pending)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        if request.op == "stop":
            break
    conn.close()
