"""Tests for repro.kinematics.trajectory."""

import numpy as np
import pytest

from repro.errors import DatasetError, ShapeError
from repro.kinematics.trajectory import Trajectory


def make_trajectory(n=10, d=3, rate=30.0, gestures=None, unsafe=None):
    return Trajectory(
        frames=np.arange(n * d, dtype=float).reshape(n, d),
        frame_rate_hz=rate,
        gestures=gestures,
        unsafe=unsafe,
    )


class TestConstruction:
    def test_basic_properties(self):
        traj = make_trajectory(12, 4)
        assert traj.n_frames == 12
        assert traj.n_features == 4
        assert traj.duration_ms == pytest.approx(400.0)

    def test_timestamps(self):
        traj = make_trajectory(3, 1, rate=10.0)
        assert traj.timestamps_ms().tolist() == [0.0, 100.0, 200.0]

    def test_rejects_1d_frames(self):
        with pytest.raises(ShapeError):
            Trajectory(frames=np.zeros(5), frame_rate_hz=30.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(DatasetError):
            make_trajectory(rate=0.0)

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(ShapeError):
            make_trajectory(10, gestures=np.zeros(9, dtype=int))

    def test_rejects_nonbinary_unsafe(self):
        with pytest.raises(DatasetError):
            make_trajectory(3, unsafe=np.array([0, 1, 2]))


class TestSegments:
    def test_gesture_segments(self):
        traj = make_trajectory(6, gestures=np.array([1, 1, 2, 2, 2, 3]))
        assert traj.gesture_segments() == [(1, 0, 2), (2, 2, 5), (3, 5, 6)]

    def test_unsafe_segments(self):
        traj = make_trajectory(7, unsafe=np.array([0, 1, 1, 0, 0, 1, 1]))
        assert traj.unsafe_segments() == [(1, 3), (5, 7)]

    def test_unsafe_segment_at_end(self):
        traj = make_trajectory(3, unsafe=np.array([0, 0, 1]))
        assert traj.unsafe_segments() == [(2, 3)]

    def test_requires_labels(self):
        with pytest.raises(DatasetError):
            make_trajectory().gesture_segments()
        with pytest.raises(DatasetError):
            make_trajectory().unsafe_segments()


class TestSliceCopyResample:
    def test_slice(self):
        traj = make_trajectory(10, gestures=np.arange(10) % 3 + 1)
        part = traj.slice(2, 6)
        assert part.n_frames == 4
        assert np.array_equal(part.frames, traj.frames[2:6])
        assert np.array_equal(part.gestures, traj.gestures[2:6])

    def test_slice_bounds(self):
        with pytest.raises(DatasetError):
            make_trajectory(5).slice(3, 7)

    def test_copy_independent(self):
        traj = make_trajectory(5)
        clone = traj.copy()
        clone.frames[0, 0] = 999.0
        assert traj.frames[0, 0] != 999.0

    def test_resample_downsamples(self):
        traj = make_trajectory(30, rate=30.0, gestures=np.ones(30, dtype=int))
        down = traj.resample(10.0)
        assert down.frame_rate_hz == 10.0
        assert down.n_frames == 10
        assert down.gestures is not None and down.gestures.shape == (10,)

    def test_resample_identity(self):
        traj = make_trajectory(8)
        same = traj.resample(traj.frame_rate_hz)
        assert np.allclose(same.frames, traj.frames)

    def test_resample_preserves_linear_signal(self):
        n = 60
        frames = np.linspace(0.0, 1.0, n)[:, None]
        traj = Trajectory(frames=frames, frame_rate_hz=60.0)
        down = traj.resample(20.0)
        expected = np.linspace(0.0, down.n_frames - 1, down.n_frames) * (3 / (n - 1))
        assert np.allclose(down.frames[:, 0], expected, atol=1e-6)

    def test_with_labels(self):
        traj = make_trajectory(4)
        labelled = traj.with_labels(
            gestures=np.ones(4, dtype=int), unsafe=np.zeros(4, dtype=int)
        )
        assert labelled.gestures is not None
        assert traj.gestures is None
