"""Shared fixtures: small datasets and trained components.

Expensive artefacts (synthetic datasets, trained classifiers) are
session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig, WindowConfig
from repro.core import BaselineMonitor, ErrorClassifierLibrary, GestureClassifier
from repro.core.error_classifiers import ErrorClassifierConfig
from repro.core.gesture_classifier import GestureClassifierConfig
from repro.jigsaws import make_suturing_dataset
from repro.simulation import (
    RavenSimulator,
    VirtualCamera,
    Workspace,
    generate_demonstration,
)
from repro.simulation.teleop import DEFAULT_OPERATORS


@pytest.fixture(scope="session")
def suturing_dataset():
    """A 12-demo synthetic Suturing dataset (deterministic)."""
    return make_suturing_dataset(n_demos=12, rng=1234)


@pytest.fixture(scope="session")
def suturing_split(suturing_dataset):
    """(train, test) LOSO split of the session dataset."""
    return suturing_dataset.split_by_trials(2)


@pytest.fixture(scope="session")
def tiny_gesture_classifier(suturing_split):
    """A small trained gesture classifier (few epochs)."""
    train, _ = suturing_split
    config = GestureClassifierConfig(
        lstm_units=(32, 16),
        dense_units=16,
        training=TrainingConfig(learning_rate=1e-3, max_epochs=8, batch_size=128),
        max_train_windows=6000,
    )
    clf = GestureClassifier(config, seed=0)
    clf.fit(train)
    return clf


@pytest.fixture(scope="session")
def tiny_error_config():
    """Error-classifier configuration used across core tests."""
    return ErrorClassifierConfig(
        architecture="conv",
        hidden=(12,),
        dense_units=8,
        training=TrainingConfig(learning_rate=1e-3, max_epochs=6, batch_size=128),
        max_train_windows=2500,
    )


@pytest.fixture(scope="session")
def tiny_library(suturing_split, tiny_error_config):
    """A small trained per-gesture error classifier library."""
    train, _ = suturing_split
    data = train.windows(WindowConfig(5, 1))
    library = ErrorClassifierLibrary(tiny_error_config, seed=1)
    library.fit(data)
    return library


@pytest.fixture(scope="session")
def tiny_baseline(suturing_split, tiny_error_config):
    """A small trained non-context baseline monitor."""
    train, _ = suturing_split
    data = train.windows(WindowConfig(5, 1))
    baseline = BaselineMonitor(tiny_error_config, seed=2)
    baseline.fit(data)
    return baseline


@pytest.fixture(scope="session")
def block_transfer_run():
    """One simulated fault-free Block Transfer trial with video."""
    workspace = Workspace()
    camera = VirtualCamera(workspace.extent_mm)
    simulator = RavenSimulator(workspace=workspace, camera=camera, rng=7)
    commands = generate_demonstration(
        DEFAULT_OPERATORS[0], workspace=workspace, rng=8, sample_rate_hz=50.0
    )
    return commands, simulator.run(commands)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(99)
