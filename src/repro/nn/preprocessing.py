"""Data preprocessing: standardisation, one-hot encoding, splits.

Replaces the scikit-learn preprocessing the paper uses (Section IV).
"""

from __future__ import annotations

import numpy as np

from ..config import as_generator
from ..errors import NotFittedError, ShapeError


class StandardScaler:
    """Zero-mean unit-variance standardisation over the feature axis.

    Works on 2-D ``(samples, features)`` data and on 3-D windowed data
    ``(samples, window, features)`` where statistics are computed per
    feature over samples and time jointly.  Constant features are left
    centred but unscaled (variance floor) so they do not blow up.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Estimate per-feature mean and standard deviation."""
        x = self._check(x)
        axes = tuple(range(x.ndim - 1))
        self.mean_ = x.mean(axis=axes)
        std = x.std(axis=axes)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardise ``x`` with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler must be fitted before transform")
        x = self._check(x)
        if x.shape[-1] != self.mean_.shape[0]:
            raise ShapeError(
                f"scaler fitted for {self.mean_.shape[0]} features, got {x.shape[-1]}"
            )
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler must be fitted before inverse")
        x = self._check(x)
        return x * self.scale_ + self.mean_

    @staticmethod
    def _check(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim < 2:
            raise ShapeError(f"expected at least 2-D data, got shape {x.shape}")
        return x


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer class labels -> one-hot matrix ``(n, n_classes)``."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ShapeError(
            f"labels outside [0, {n_classes}): min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], n_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def train_val_split(
    x: np.ndarray,
    y: np.ndarray,
    val_fraction: float = 0.15,
    rng: int | np.random.Generator | None = 0,
    stratify: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/validation split.

    With ``stratify=True`` each class keeps (approximately) its global
    proportion in both splits — important for the heavily imbalanced
    erroneous-gesture datasets.

    Returns ``(x_train, y_train, x_val, y_val)``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ShapeError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
    if not 0.0 < val_fraction < 1.0:
        raise ShapeError("val_fraction must be in (0, 1)")
    gen = as_generator(rng)
    n = x.shape[0]
    if stratify:
        val_idx: list[int] = []
        for cls in np.unique(y):
            cls_idx = np.flatnonzero(y == cls)
            gen.shuffle(cls_idx)
            n_val = max(1, int(round(val_fraction * cls_idx.size)))
            if n_val >= cls_idx.size:
                n_val = cls_idx.size - 1
            val_idx.extend(cls_idx[:n_val].tolist())
        val_mask = np.zeros(n, dtype=bool)
        val_mask[val_idx] = True
    else:
        order = gen.permutation(n)
        n_val = max(1, int(round(val_fraction * n)))
        if n_val >= n:
            n_val = n - 1
        val_mask = np.zeros(n, dtype=bool)
        val_mask[order[:n_val]] = True
    return x[~val_mask], y[~val_mask], x[val_mask], y[val_mask]
