"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, ShapeError
from ..initializers import glorot_uniform, zeros_init
from .base import Layer
from .contract import contract


class Dense(Layer):
    """Affine transform ``y = x @ W + b`` on the last axis.

    Accepts 2-D ``(batch, features)`` input; 3-D sequence input
    ``(batch, time, features)`` is transformed time-step-wise (the same
    weights applied at every step), matching Keras ``Dense`` semantics.
    """

    def __init__(self, units: int) -> None:
        super().__init__()
        if units < 1:
            raise ConfigurationError("units must be >= 1")
        self.units = int(units)
        self._cache_x: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) not in (1, 2):
            raise ShapeError(
                f"Dense expects (features,) or (time, features) input, got {input_shape}"
            )
        in_features = input_shape[-1]
        self.params = {
            "W": glorot_uniform((in_features, self.units), rng),
            "b": zeros_init((self.units,), rng),
        }
        self.grads = {key: np.zeros_like(val) for key, val in self.params.items()}
        self._input_shape = tuple(input_shape)
        self._output_shape = (*input_shape[:-1], self.units)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.params["W"].shape[0]:
            raise ShapeError(
                f"Dense built for {self.params['W'].shape[0]} input features, "
                f"got {x.shape[-1]}"
            )
        if training:
            self._cache_x = x
        return contract(x, self.params["W"], training) + self.params["b"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._cache_x is None:
            raise ShapeError("backward called before a training forward pass")
        x = self._cache_x
        # Collapse any leading axes so 2-D and 3-D inputs share one path.
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad_output.reshape(-1, self.units)
        self.grads["W"][...] = flat_x.T @ flat_g
        self.grads["b"][...] = flat_g.sum(axis=0)
        grad_input = grad_output @ self.params["W"].T
        self._cache_x = None
        return grad_input

    def get_config(self) -> dict:
        return {"units": self.units}
