"""Shared-memory rings: the zero-copy data plane of the sharded fleet.

The first sharded benchmark told an embarrassing truth: a 4-shard fleet
was *half* the speed of one :class:`~repro.serving.service.MonitorService`
(``sharded_speedup_4 = 0.53`` in ``BENCH_serving.json``), because every
kinematics frame was pickled through a :func:`multiprocessing.Pipe` and
every ``feed()`` blocked on a full request/reply ack round-trip.  The
transport was eating the parallelism.

This module replaces that per-frame pipe traffic with two
:class:`multiprocessing.shared_memory` rings per shard:

- a **frame ring** (router → worker): ``feed()`` copies the frame block
  straight into shared memory — one header write plus one vectorised
  row copy, no pickling, no ack — and the worker ingests it in place on
  its next poll.  A full ring *is* the back-pressure signal: the writer
  spins until the worker frees space (or the worker is found dead).
- an **event ring** (worker → router): each tick's
  :class:`~repro.serving.service.SessionEvent` batch travels as one
  packed :data:`EVENT_DTYPE` record instead of a pickled object list;
  ``tick()``/``drain()`` replies shrink to a batch count.

The pipe remains, but only for **control ops** — open, close, tick
triggers, migrate, stats, stop — whose payloads are small and rare.
Sessions are addressed on the rings by an integer **route id** (the
router's global opening order), so no strings cross the data plane.

Ring layout (one POSIX shared-memory segment each)::

    [ write_pos u64 | read_pos u64 | data region (capacity bytes) ... ]

Positions are monotonic byte counters (offset = ``pos % capacity``);
``write_pos`` is written only by the producer, ``read_pos`` only by the
consumer, so the single-producer/single-consumer protocol needs no
locks.  Records never wrap: a record that would straddle the end of the
region is preceded by a ``PAD`` record that the reader skips.  Every
record is 8-byte aligned::

    [ kind u32 | length u32 | payload ... ]          # length incl. header
    frames payload:  route u64, rows u32, cols u32, rows*cols float64
    events payload:  count u32, pad u32, count * EVENT_DTYPE

Ownership and crash semantics: the **router creates and unlinks** every
segment (on ``close()``, on ``remove_shard``/``resize``, and when a
worker crashes); workers only attach and detach.  Worker attachments
add no :mod:`multiprocessing.resource_tracker` accounting of their own
(``track=False`` on Python >= 3.13; on older versions the workers share
the router's tracker process, so their attach-time registration is an
idempotent no-op over the router's).  A worker exiting therefore never
unlinks a live segment out from under the fleet, while the tracker
still reclaims every segment if the router process dies uncleanly — no
``/dev/shm`` entry outlives the fleet either way.
"""

from __future__ import annotations

import logging
import struct
import time
from multiprocessing import shared_memory

import numpy as np

from ..errors import ConfigurationError, WorkerError

_logger = logging.getLogger(__name__)

#: Ring header: write_pos (u64) then read_pos (u64).
_HEADER_BYTES = 16
#: Record header: kind (u32) then total record length (u32).
_REC_HEADER = 8

#: Record kinds.
REC_PAD = 0
REC_FRAMES = 1
REC_EVENTS = 2

#: Packed wire format of one :class:`~repro.serving.service.SessionEvent`
#: on the event ring.  ``route`` is the router-assigned integer session
#: route id; ``flags`` bit 0 is the unsafe flag.  ``score`` is the raw
#: float64, so events round-trip bit-exactly (the parity contract).
#: ``latency_us`` is the worker-measured frame-ingest→event-emission
#: latency (observability metadata, excluded from event equality).
EVENT_DTYPE = np.dtype(
    [
        ("route", "<u8"),
        ("frame", "<u8"),
        ("gesture", "<i8"),
        ("score", "<f8"),
        ("flags", "<u8"),
        ("latency_us", "<f8"),
    ]
)

#: Default per-shard ring capacities.  4 MiB of frames is ~14k frames of
#: the paper's 38-feature kinematics — minutes of 30 Hz backlog per
#: shard; 4 MiB of events is ~100k queued events.  Both are plain RAM in
#: ``/dev/shm`` and configurable per fleet.
DEFAULT_FRAME_RING_BYTES = 4 * 1024 * 1024
DEFAULT_EVENT_RING_BYTES = 4 * 1024 * 1024

#: How long the frame-ring writer sleeps between full-ring retries.
BACKPRESSURE_POLL_S = 0.0005


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without extra tracker accounting.

    Python >= 3.13 supports ``track=False`` directly.  On older
    versions the attach registers the name with the resource tracker —
    but a worker is always a :mod:`multiprocessing` child sharing the
    router's tracker process, so that register is an idempotent set-add
    over the router's own registration and needs no follow-up.  Do NOT
    ``resource_tracker.unregister`` here: on a shared tracker that
    would strip the *router's* registration, so the router's eventual
    ``unlink()`` double-unregisters and the tracker prints KeyError
    tracebacks (and an un-shut-down fleet would leak the segment).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


class ShmRing:
    """One single-producer/single-consumer shared-memory byte ring.

    Parameters
    ----------
    capacity:
        Data-region size in bytes (rounded up to a multiple of 8).
        Ignored when attaching.
    name:
        Segment name to attach to (``attach=True``), or ``None`` to
        create a new segment with a kernel-assigned name.
    attach:
        ``False`` (default) creates and owns the segment — the creator
        is responsible for :meth:`unlink`.  ``True`` attaches to an
        existing segment by ``name`` and must only :meth:`close`.

    One side writes (:meth:`try_write_frames` / :meth:`try_write_events`),
    the other reads (:meth:`read_frames` / :meth:`read_events`); reads
    copy out of the ring and advance ``read_pos``, so a record's memory
    is reusable the moment its reader returns.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FRAME_RING_BYTES,
        *,
        name: str | None = None,
        attach: bool = False,
    ) -> None:
        if attach:
            if name is None:
                raise ConfigurationError("attach=True requires a segment name")
            self._shm = _attach_segment(name)
            self.capacity = self._shm.size - _HEADER_BYTES
        else:
            capacity = _align8(int(capacity))
            if capacity < 64:
                raise ConfigurationError("ring capacity must be >= 64 bytes")
            self._shm = shared_memory.SharedMemory(
                create=True, size=_HEADER_BYTES + capacity
            )
            self.capacity = capacity
            struct.pack_into("<QQ", self._shm.buf, 0, 0, 0)
        self._owner = not attach
        self._closed = False

    # ------------------------------------------------------------------
    # Positions (u64 monotonic byte counters)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Kernel name of the backing segment (pass to the attaching side)."""
        return self._shm.name

    def _write_pos(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 0)[0]

    def _read_pos(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 8)[0]

    def _publish_write(self, pos: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 0, pos)

    def _publish_read(self, pos: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 8, pos)

    @property
    def data_bytes(self) -> int:
        """Unread payload bytes currently in the ring (pads included)."""
        return self._write_pos() - self._read_pos()

    @property
    def free_bytes(self) -> int:
        """Writable bytes currently available."""
        return self.capacity - self.data_bytes

    # ------------------------------------------------------------------
    # Producer
    # ------------------------------------------------------------------
    def _reserve(self, need: int) -> tuple[int, int] | None:
        """Find space for a ``need``-byte record; insert a pad on wrap.

        Returns ``(write_pos_after_pad, data_offset)`` or ``None`` when
        the ring cannot currently hold the record.  Nothing is published
        until the caller commits, so a reader never sees a half-written
        record.
        """
        if need > self.capacity // 2:
            raise ConfigurationError(
                f"record of {need} bytes exceeds half the ring capacity "
                f"({self.capacity}); chunk the payload"
            )
        write = self._write_pos()
        free = self.capacity - (write - self._read_pos())
        offset = write % self.capacity
        contig = self.capacity - offset
        if contig < need:
            # Pad out the tail, then the record starts at offset 0.
            if free < contig + need:
                return None
            struct.pack_into(
                "<II", self._shm.buf, _HEADER_BYTES + offset, REC_PAD, contig
            )
            return write + contig, 0
        if free < need:
            return None
        return write, offset

    def try_write_frames(self, route: int, frames: np.ndarray) -> bool:
        """Write one ``(rows, cols)`` float64 frame block; False if full."""
        rows, cols = frames.shape
        payload = 16 + rows * cols * 8
        need = _align8(_REC_HEADER + payload)
        reserved = self._reserve(need)
        if reserved is None:
            return False
        write, offset = reserved
        base = _HEADER_BYTES + offset
        struct.pack_into(
            "<IIQII", self._shm.buf, base, REC_FRAMES, need, route, rows, cols
        )
        dst = np.frombuffer(
            self._shm.buf, dtype=np.float64, count=rows * cols, offset=base + 24
        )
        np.copyto(dst, frames.reshape(-1), casting="no")
        del dst  # release the buffer view before any close()
        self._publish_write(write + need)
        return True

    def try_write_events(self, records: np.ndarray) -> bool:
        """Write one :data:`EVENT_DTYPE` batch record; False if full."""
        if records.dtype != EVENT_DTYPE:
            raise ConfigurationError("event batch must use EVENT_DTYPE")
        count = records.shape[0]
        need = _align8(_REC_HEADER + 8 + count * EVENT_DTYPE.itemsize)
        reserved = self._reserve(need)
        if reserved is None:
            return False
        write, offset = reserved
        base = _HEADER_BYTES + offset
        struct.pack_into("<IIII", self._shm.buf, base, REC_EVENTS, need, count, 0)
        dst = np.frombuffer(
            self._shm.buf, dtype=EVENT_DTYPE, count=count, offset=base + 16
        )
        np.copyto(dst, records, casting="no")
        del dst
        self._publish_write(write + need)
        return True

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    def _next_record(self) -> tuple[int, int, int] | None:
        """Skip pads; return ``(kind, data_offset, length)`` or ``None``."""
        while True:
            read = self._read_pos()
            if read >= self._write_pos():
                return None
            offset = read % self.capacity
            kind, length = struct.unpack_from(
                "<II", self._shm.buf, _HEADER_BYTES + offset
            )
            if length < _REC_HEADER or length > self.capacity:
                raise WorkerError(
                    f"corrupt ring record (kind={kind}, length={length})"
                )
            if kind == REC_PAD:
                self._publish_read(read + length)
                continue
            return kind, offset, length

    def read_frames(self) -> tuple[int, np.ndarray] | None:
        """Pop the next frame block as ``(route, frames copy)``.

        Returns ``None`` when the ring is empty.  Raises
        :class:`~repro.errors.WorkerError` on a record of the wrong kind
        — the rings are single-purpose channels, so a foreign record
        means the peer is out of protocol.
        """
        record = self._next_record()
        if record is None:
            return None
        kind, offset, length = record
        if kind != REC_FRAMES:
            raise WorkerError(f"expected a frame record, got kind {kind}")
        base = _HEADER_BYTES + offset
        route, rows, cols = struct.unpack_from("<QII", self._shm.buf, base + 8)
        frames = (
            np.frombuffer(
                self._shm.buf,
                dtype=np.float64,
                count=rows * cols,
                offset=base + 24,
            )
            .reshape(rows, cols)
            .copy()
        )
        self._publish_read(self._read_pos() + length)
        return int(route), frames

    def read_events(self) -> np.ndarray | None:
        """Pop the next event batch as an :data:`EVENT_DTYPE` array copy."""
        record = self._next_record()
        if record is None:
            return None
        kind, offset, length = record
        if kind != REC_EVENTS:
            raise WorkerError(f"expected an event record, got kind {kind}")
        base = _HEADER_BYTES + offset
        (count,) = struct.unpack_from("<I", self._shm.buf, base + 8)
        events = np.frombuffer(
            self._shm.buf, dtype=EVENT_DTYPE, count=count, offset=base + 16
        ).copy()
        self._publish_read(self._read_pos() + length)
        return events

    def discard_all(self) -> int:
        """Drop every unread record (resync after a failed exchange)."""
        dropped = self.data_bytes
        self._publish_read(self._write_pos())
        return dropped

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the segment (both sides).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError) as exc:
            _logger.warning("closing ring %s failed: %s", self._shm.name, exc)

    def unlink(self) -> None:
        """Remove the segment name (owner side).  Idempotent."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked (e.g. crash path ran first)
        except OSError as exc:
            _logger.warning("unlinking ring %s failed: %s", self._shm.name, exc)

    def destroy(self) -> None:
        """Owner-side teardown: detach and unlink in one call."""
        self.close()
        if self._owner:
            self.unlink()

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


def write_frames_blocking(
    ring: ShmRing,
    route: int,
    frames: np.ndarray,
    *,
    alive: "callable",
    timeout_s: float | None = None,
    who: str = "worker",
) -> None:
    """Write a frame block with ring-full back-pressure.

    The shm data plane has no per-feed ack: a full ring simply means the
    consumer owes ingest work, so the writer spins (``alive`` is checked
    each round — a dead consumer raises immediately rather than
    spinning forever).  Blocks larger than the ring are chunked.

    Raises
    ------
    WorkerError
        When ``alive()`` turns false (the worker died; the caller runs
        its crash path) or ``timeout_s`` expires with the ring still
        full (a *hung* worker; same contract as a request timeout).
    """
    frames = np.ascontiguousarray(frames, dtype=np.float64)
    max_rows = max(
        1, (ring.capacity // 2 - _REC_HEADER - 16) // (8 * frames.shape[1])
    )
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    for start in range(0, frames.shape[0], max_rows):
        chunk = frames[start : start + max_rows]
        while not ring.try_write_frames(route, chunk):
            if not alive():
                raise WorkerError(
                    f"{who} died with the frame ring full "
                    f"({ring.data_bytes} bytes backlogged)"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerError(
                    f"{who} unresponsive: frame ring still full after "
                    f"{timeout_s}s"
                )
            time.sleep(BACKPRESSURE_POLL_S)


__all__ = [
    "DEFAULT_EVENT_RING_BYTES",
    "DEFAULT_FRAME_RING_BYTES",
    "EVENT_DTYPE",
    "ShmRing",
    "write_frames_blocking",
]
