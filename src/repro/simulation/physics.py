"""Physics-lite grasp/attach/release rules for the Block Transfer task.

The Gazebo physics engine in the paper decides whether injected faults
produce *physical* failures — an unintentional block drop or a failure to
drop the block into the receptacle.  This module reproduces the minimal
contact model needed for those outcomes:

- the grasper *grasps* the block when its jaws close below
  ``grasp_close_rad`` while the tip is within ``grasp_radius_mm`` of the
  block;
- a held block is *released* whenever the jaw angle rises above a
  per-trial hold threshold (nominally ``hold_threshold_rad`` with small
  trial-to-trial variation, mimicking contact-friction variability);
- a released block falls straight down onto the table.

The thresholds were chosen so the fault-injection dose-response of the
paper's Table III emerges: jaw angles below ~0.8 rad keep the block held
(drop-off failures when they persist through the drop gesture), angles
above ~1.0 rad almost always lose the block, and the 0.9-1.0 rad band is
a coin flip.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError
from .workspace import Workspace


class PhysicsOutcome(str, Enum):
    """Physical outcome of one Block Transfer execution."""

    SUCCESS = "success"
    BLOCK_DROP = "block_drop"
    DROPOFF_FAILURE = "dropoff_failure"
    WRONG_POSITION = "wrong_position"
    NEVER_GRASPED = "never_grasped"


@dataclass
class GrasperPhysics:
    """Contact model parameters.

    Attributes
    ----------
    grasp_close_rad:
        Jaw angle below which a grasp attempt succeeds.
    hold_threshold_rad:
        Nominal jaw angle above which a held block slips out.
    hold_threshold_std:
        Trial-to-trial standard deviation of the hold threshold.
    grasp_radius_mm:
        Maximum tip-to-block distance for a grasp to engage.
    """

    grasp_close_rad: float = 0.35
    hold_threshold_rad: float = 0.95
    hold_threshold_std: float = 0.05
    grasp_radius_mm: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 < self.grasp_close_rad < self.hold_threshold_rad:
            raise ConfigurationError(
                "grasp_close_rad must be in (0, hold_threshold_rad)"
            )
        if self.hold_threshold_std < 0:
            raise ConfigurationError("hold_threshold_std must be >= 0")
        if self.grasp_radius_mm <= 0:
            raise ConfigurationError("grasp_radius_mm must be positive")

    def sample_hold_threshold(
        self, rng: int | np.random.Generator | None
    ) -> float:
        """Draw this trial's hold threshold (contact variability)."""
        gen = as_generator(rng)
        threshold = gen.normal(self.hold_threshold_rad, self.hold_threshold_std)
        # Keep the threshold physically meaningful: strictly above the
        # closing angle so a freshly-grasped block is never instantly lost.
        return float(max(threshold, self.grasp_close_rad + 0.05))


class PhysicsEngine:
    """Stateful contact resolver stepped by the simulator.

    One instance per trial; call :meth:`step` once per simulation step
    with the grasper tip position and jaw angle of the arm performing the
    transfer.
    """

    def __init__(
        self,
        workspace: Workspace,
        physics: GrasperPhysics,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.workspace = workspace
        self.physics = physics
        self.hold_threshold_rad = physics.sample_hold_threshold(rng)
        self.grasp_frame: int | None = None
        self.release_frame: int | None = None
        self.release_position: np.ndarray | None = None
        self._frame = -1

    @property
    def block_held(self) -> bool:
        """Whether the block is currently attached to the grasper."""
        return self.workspace.block.held_by is not None

    def step(self, tip_position: np.ndarray, jaw_angle_rad: float, arm: str) -> None:
        """Advance the contact model by one simulation step."""
        self._frame += 1
        block = self.workspace.block
        tip_position = np.asarray(tip_position, dtype=float)

        if block.held_by is None:
            # A grasp engages when the jaws are closed near the block and
            # the block has not already been released this trial (no
            # re-grasp: the task script makes a single transfer attempt,
            # matching the paper's failure semantics).
            if (
                self.release_frame is None
                and jaw_angle_rad <= self.physics.grasp_close_rad
                and np.linalg.norm(tip_position - block.position)
                <= self.physics.grasp_radius_mm
            ):
                block.held_by = arm
                if self.grasp_frame is None:
                    self.grasp_frame = self._frame
            return

        # Held: the block rides on the grasper tip.
        block.position = tip_position.copy()
        if jaw_angle_rad >= self.hold_threshold_rad:
            block.held_by = None
            self.release_frame = self._frame
            self.release_position = tip_position.copy()
            # The block falls straight down to the table.
            block.position = np.array(
                [tip_position[0], tip_position[1], block.resting_z]
            )

    def outcome(self, drop_window: tuple[int, int] | None = None) -> PhysicsOutcome:
        """Classify the trial after the trajectory has been replayed.

        Parameters
        ----------
        drop_window:
            Frame interval ``[start, end)`` of the drop gesture (G11).  A
            release before this window is an unintentional block drop; a
            release into the receptacle during the window is a success; a
            miss early in the window is a wrong-position drop, while a
            miss late in the window (the robot already retreating — the
            intended drop moment has passed) counts as a drop-off
            failure, matching the paper's DTW-based detection of "the
            block should have been dropped, but it was not".
        """
        if self.grasp_frame is None:
            return PhysicsOutcome.NEVER_GRASPED
        if self.release_frame is None:
            return PhysicsOutcome.DROPOFF_FAILURE
        if drop_window is not None:
            start, end = drop_window
            if self.release_frame < start:
                return PhysicsOutcome.BLOCK_DROP
            # The intended drop happens ~30% into G11; a release later
            # than 45% through the gesture means the drop moment was
            # missed and the block came loose during the retreat.
            if self.release_frame > start + 0.45 * (end - start):
                return PhysicsOutcome.DROPOFF_FAILURE
        assert self.release_position is not None
        if self.workspace.receptacle.contains(self.release_position):
            return PhysicsOutcome.SUCCESS
        return PhysicsOutcome.WRONG_POSITION
