"""The bit-exact default backend: today's transform + predict, verbatim.

Kept deliberately thin — it must execute the *identical* float operation
sequence the tick engine ran before backends existed
(``scaler.transform`` building a standardised copy, then
``Sequential.predict_proba`` through the batch-invariant einsum
contraction of :mod:`repro.nn.layers.contract`), so the existing parity
suites (stream ≡ process ≡ service ≡ sharded, bit for bit) pin its
behaviour without modification.
"""

from __future__ import annotations

import numpy as np

from ..model import Sequential
from ..preprocessing import StandardScaler
from .base import InferenceBackend


class ReferenceBackend(InferenceBackend):
    """Wrap a ``(scaler, model)`` pair with no behavioural change.

    Bit-exact and batch-size invariant; allocates a standardised copy of
    the input per call (the cost the compiled backend exists to remove).
    """

    name = "reference"

    def __init__(self, scaler: StandardScaler, model: Sequential) -> None:
        self.scaler = scaler
        self.model = model

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        x = self.scaler.transform(np.asarray(windows, dtype=float))
        return self.model.predict_proba(x)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        x = self.scaler.transform(np.asarray(windows, dtype=float))
        return self.model.predict(x)
