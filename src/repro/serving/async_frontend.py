"""Asyncio front-end over the sharded service: non-blocking ingest.

A robot fleet feeds kinematics over the network at its own cadence; the
serving tier must accept frames and deliver events without ever letting
one slow or dead shard stall the rest.  :class:`AsyncShardedMonitor`
wraps a :class:`~repro.serving.sharded.ShardedMonitorService` with that
contract:

- :meth:`feed` / :meth:`open_session` / :meth:`close_session` are
  coroutines; the blocking exchange — a shared-memory ring write for
  ``feed`` under the default data plane (no reply round-trip, it blocks
  only on ring back-pressure), a pipe request/reply for control ops —
  runs on an executor thread while the event loop keeps serving
  everything else;
- one background ticker task per shard advances that shard whenever it
  has pending frames and pushes the resulting
  :class:`~repro.serving.service.SessionEvent`\\ s onto a single queue;
- :meth:`events` is the merged async event stream.  A worker crash
  surfaces *in the stream* as terminal events with ``error`` set (and
  ``flag=True``), while the other shards' tickers keep running.

Per-shard ``asyncio.Lock``\\ s serialise access to each worker's pipe
(one pipe cannot carry two interleaved request/reply exchanges), which
is also what guarantees a slow shard only ever delays *its own*
sessions.  Do not mix sync calls (``service.tick()`` etc.) with a
running front-end — go through the front-end exclusively.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections.abc import AsyncIterator

import numpy as np

from ..errors import WorkerError
from .service import ServiceStats, SessionEvent, SessionResult
from .sharded import ShardedMonitorService

#: Sentinel pushed to the event queue when the front-end shuts down.
_CLOSED = object()


class AsyncShardedMonitor:
    """Async ingest/egress façade over a :class:`ShardedMonitorService`.

    Use as an async context manager::

        service = ShardedMonitorService(monitor, n_shards=4)
        async with AsyncShardedMonitor(service) as frontend:
            sid = await frontend.open_session("theatre-7")
            await frontend.feed(sid, frames)        # returns immediately
            async for event in frontend.events():   # merged across shards
                ...

    The front-end does not own the service's worker processes; call
    ``service.close()`` (or use the service as a context manager) after
    :meth:`aclose`.
    """

    def __init__(
        self, service: ShardedMonitorService, poll_interval_s: float = 1.0
    ) -> None:
        self._service = service
        #: How often a parked (idle-shard) ticker polls worker liveness,
        #: so a worker dying while nothing is pending still surfaces its
        #: sessions' fail-safe terminal events within this bound.
        self.poll_interval_s = poll_interval_s
        self._queue: asyncio.Queue = asyncio.Queue()
        self._locks: dict[int, asyncio.Lock] = {}
        self._kick: dict[int, asyncio.Event] = {}
        self._tasks: list[asyncio.Task] = []
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncShardedMonitor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def start(self) -> None:
        """Spawn one ticker task per live shard (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in self._service.shard_indices:
            self._locks[index] = asyncio.Lock()
            self._kick[index] = asyncio.Event()
            self._tasks.append(
                asyncio.create_task(
                    self._shard_loop(index), name=f"ticker-shard-{index}"
                )
            )

    async def aclose(self) -> None:
        """Stop the tickers and terminate the :meth:`events` stream.

        Pending frames are left un-ticked (use :meth:`drain` first when
        they must be processed); the underlying service stays open.
        """
        if self._closed:
            return
        self._closed = True
        for kick in self._kick.values():
            kick.set()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._queue.put_nowait(_CLOSED)

    # ------------------------------------------------------------------
    async def _run_on_shard(self, index: int, fn, *args):
        """Run one blocking pipe exchange for a shard on the executor.

        The shard's lock is held for the duration: a pipe is a strict
        request/reply channel, so exchanges must not interleave.

        When the exchange discovers a dead worker (``WorkerError``), the
        lost sessions' terminal events are claimed here and pushed onto
        the event stream before re-raising — the shard's ticker may
        already have parked, so a later tick cannot be relied on to
        deliver them.
        """
        lock = self._locks.setdefault(index, asyncio.Lock())
        async with lock:
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    None, fn, *args
                )
            except WorkerError:
                for event in self._service.take_undelivered_events():
                    self._queue.put_nowait(event)
                raise

    async def _shard_loop(self, index: int) -> None:
        """Tick one shard whenever it has pending frames."""
        kick = self._kick[index]
        while not self._closed:
            kick.clear()
            if not self._service.shard_maybe_pending(index):
                if index not in self._service.shard_indices:
                    break  # shard crashed or was removed; nothing to tick
                try:
                    await asyncio.wait_for(
                        kick.wait(), timeout=self.poll_interval_s
                    )
                except asyncio.TimeoutError:
                    # Nothing woke us: cheap liveness poll so a worker
                    # that died while idle still fails fast-safe.
                    for event in self._service.take_undelivered_events():
                        self._queue.put_nowait(event)
                continue
            events = await self._run_on_shard(
                index, self._service.tick_shard, index
            )
            for event in events:
                self._queue.put_nowait(event)
            # Let feeds/consumers run between ticks of a busy shard.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    async def _run_on_session_shard(self, session_id: str, fn, *args):
        """Run a session-addressed exchange under its *current* shard lock.

        The owning shard is resolved before the lock can be taken, and a
        concurrent :meth:`resize` (which holds every lock while it
        migrates sessions) may move the session meanwhile — executing
        then would talk to the new shard's pipe under the old shard's
        lock, unserialised against that shard's ticker.  So the shard is
        re-resolved once the lock is held and the acquisition retried
        until they agree.
        """
        while True:
            shard = self._service.shard_of(session_id)
            lock = self._locks.setdefault(shard, asyncio.Lock())
            async with lock:
                if self._service.shard_of(session_id) != shard:
                    continue  # migrated while we waited; re-resolve
                try:
                    return (
                        await asyncio.get_running_loop().run_in_executor(
                            None, fn, *args
                        ),
                        shard,
                    )
                except WorkerError:
                    for event in self._service.take_undelivered_events():
                        self._queue.put_nowait(event)
                    raise

    async def open_session(
        self, session_id: str | None = None, record_timeline: bool = True
    ) -> str:
        """Place and open a session (see
        :meth:`ShardedMonitorService.open_session`)."""
        while True:
            session_id, shard = self._service.resolve_placement(session_id)
            lock = self._locks.setdefault(shard, asyncio.Lock())
            async with lock:
                if shard not in self._service.shard_indices:
                    continue  # shard resized away while we waited; re-place
                try:
                    return await asyncio.get_running_loop().run_in_executor(
                        None,
                        self._service.open_on_shard,
                        session_id,
                        shard,
                        record_timeline,
                    )
                except WorkerError:
                    for event in self._service.take_undelivered_events():
                        self._queue.put_nowait(event)
                    raise

    async def export_session(self, session_id: str) -> bytes:
        """Remove a session from the fleet, returning its exported state
        (see :meth:`ShardedMonitorService.export_session`)."""
        state, _ = await self._run_on_session_shard(
            session_id, self._service.export_session, session_id
        )
        return state

    async def import_session(
        self, state: bytes, record_timeline: bool = True
    ) -> str:
        """Re-admit an exported session under its shard's pipe lock.

        Mirrors :meth:`open_session`'s placement loop: the target shard
        is resolved from the id embedded in ``state``, the lock taken,
        and placement re-checked in case a resize retired the shard
        while we waited.  The target's ticker is kicked afterwards —
        imported state may carry pending frames that must tick without
        waiting for the next :meth:`feed`.
        """
        while True:
            session_id, shard = self._service.resolve_import(state)
            lock = self._locks.setdefault(shard, asyncio.Lock())
            async with lock:
                if shard not in self._service.shard_indices:
                    continue  # shard resized away while we waited; re-place
                try:
                    sid = await asyncio.get_running_loop().run_in_executor(
                        None,
                        self._service.import_on_shard,
                        state,
                        session_id,
                        shard,
                        record_timeline,
                    )
                except WorkerError:
                    for event in self._service.take_undelivered_events():
                        self._queue.put_nowait(event)
                    raise
            kick = self._kick.get(shard)
            if kick is not None:
                kick.set()
            return sid

    async def feed(self, session_id: str, frames: np.ndarray) -> None:
        """Enqueue frames for a session without blocking the event loop.

        Waits only on the owning shard — a frame-ring write under the
        shm data plane, a pipe ack under ``data_plane="pipe"`` (other
        shards' ingest and ticking proceed concurrently either way) —
        then wakes that shard's ticker.
        """
        _, shard = await self._run_on_session_shard(
            session_id, self._service.feed, session_id, frames
        )
        kick = self._kick.get(shard)
        if kick is not None:
            kick.set()

    async def close_session(self, session_id: str) -> SessionResult:
        """Close a session and return its timeline (see
        :meth:`ShardedMonitorService.close_session`)."""
        result, _ = await self._run_on_session_shard(
            session_id, self._service.close_session, session_id
        )
        return result

    async def drain(self) -> None:
        """Wait until no live shard has pending frames.

        The tickers do the actual work; this just parks until the
        backlog is gone (events keep flowing to :meth:`events`).
        """
        while any(
            self._service.shard_maybe_pending(i)
            for i in self._service.shard_indices
        ):
            await asyncio.sleep(0.001)

    @property
    def n_shards(self) -> int:
        """Number of live shards in the underlying service."""
        return self._service.n_shards

    @property
    def service(self) -> "ShardedMonitorService":
        """The wrapped :class:`ShardedMonitorService` (configuration
        introspection — e.g. the balancer reads
        ``max_sessions_per_shard`` for its capacity clamp).  Drive the
        fleet through this front-end's coroutines, not directly."""
        return self._service

    async def resize(self, target_k: int) -> dict:
        """Live-resize the fleet without dropping a session or a frame.

        Runs :meth:`ShardedMonitorService.resize` on the executor while
        holding **every** shard's pipe lock — migration is a two-pipe
        exchange, so no ticker or feed may interleave with it — then
        reconciles the ticker tasks: new shards get their own loops,
        loops of removed shards park and exit on their next wake-up, and
        every ticker is kicked so migrated backlogs resume immediately.
        Returns the service's resize summary dict.
        """
        indices = sorted(set(self._locks) | set(self._service.shard_indices))
        async with contextlib.AsyncExitStack() as stack:
            for index in indices:
                await stack.enter_async_context(
                    self._locks.setdefault(index, asyncio.Lock())
                )
            result = await asyncio.get_running_loop().run_in_executor(
                None, self._service.resize, target_k
            )
        # Fail-safe events queued by a crash during the resize must not
        # wait for a tick that may never come.
        for event in self._service.take_undelivered_events():
            self._queue.put_nowait(event)
        # Prune per-shard state of retired indices (indices are never
        # reused, so without this an oscillating autoscaler would grow
        # the lock/kick maps and the task list without bound).  Waiters
        # and loops holding references to a popped lock/event keep
        # working; removal only stops *future* lookups.
        live = set(self._service.shard_indices)
        for index in [i for i in self._kick if i not in live]:
            self._kick.pop(index).set()  # wake the parked loop so it exits
            self._locks.pop(index, None)
        self._tasks = [t for t in self._tasks if not t.done()]
        if self._started and not self._closed:
            for index in live:
                if index not in self._kick:
                    self._locks.setdefault(index, asyncio.Lock())
                    self._kick[index] = asyncio.Event()
                    self._tasks.append(
                        asyncio.create_task(
                            self._shard_loop(index),
                            name=f"ticker-shard-{index}",
                        )
                    )
            for kick in self._kick.values():
                kick.set()
        return result

    async def shed(self, session_ids: list[str], to_shard: int) -> dict[str, int]:
        """Migrate named sessions onto ``to_shard`` and pin them there.

        The balancer's actuator
        (:meth:`~repro.serving.balancer.MonitorBalancer.step` calls this
        with the sessions its plan selected).  Like :meth:`resize` it
        holds **every** shard's pipe lock around the blocking
        :meth:`ShardedMonitorService.shed` call — each migration is a
        two-pipe exchange whose source varies per session — then flushes
        crash-queued fail-safe events and kicks the tickers so migrated
        backlogs resume immediately on their new shard.  Returns the
        service's ``{session_id: previous shard}`` map.
        """
        indices = sorted(set(self._locks) | set(self._service.shard_indices))
        async with contextlib.AsyncExitStack() as stack:
            for index in indices:
                await stack.enter_async_context(
                    self._locks.setdefault(index, asyncio.Lock())
                )
            moved = await asyncio.get_running_loop().run_in_executor(
                None, self._service.shed, list(session_ids), to_shard
            )
        for event in self._service.take_undelivered_events():
            self._queue.put_nowait(event)
        for kick in self._kick.values():
            kick.set()
        return moved

    def shard_occupancy(self) -> dict[int, int]:
        """Open-session count per live shard (no IPC, no lock needed)."""
        return self._service.shard_occupancy()

    def sessions_on(self, index: int) -> list[str]:
        """Open session ids routed to one shard (no IPC, no lock needed)."""
        return self._service.sessions_on(index)

    async def shard_stats(self) -> dict[int, "ServiceStats"]:
        """Per-shard :class:`ServiceStats` without disturbing the tickers.

        Each shard is polled under its own pipe lock — the same lock the
        ticker and ``feed`` take — so the strict request/reply pipe
        protocol is preserved while the fleet keeps serving.  Shards
        that die under the poll are skipped (their crash events surface
        through the usual fail-safe paths).  The remote gateway's
        ``gateway_stats()`` aggregates this, and the dict feeds
        :func:`~repro.serving.sharded.suggest_shard_count` directly.
        """
        out: dict[int, "ServiceStats"] = {}
        for index in list(self._service.shard_indices):
            try:
                out[index] = await self._run_on_shard(
                    index, self._service.stats_of, index
                )
            except WorkerError:
                continue
        return out

    async def telemetry(self) -> dict:
        """Fleet-wide telemetry snapshot without disturbing the tickers.

        The async twin of
        :meth:`ShardedMonitorService.telemetry_snapshot`: each live
        shard's registry is fetched under its own pipe lock (one shard
        at a time, like :meth:`shard_stats`), then merged with the
        router's retired-shard baseline and incident counters.
        """
        from .telemetry import TelemetryRegistry

        merged = TelemetryRegistry()
        merged.merge(self._service.router_telemetry_snapshot())
        for index in list(self._service.shard_indices):
            try:
                merged.merge(
                    await self._run_on_shard(
                        index, self._service.telemetry_of, index
                    )
                )
            except WorkerError:
                continue
        return merged.snapshot()

    async def events(self) -> AsyncIterator[SessionEvent]:
        """Merged event stream across all shards.

        Yields until :meth:`aclose`; events of one session arrive in
        frame order, interleaving across sessions follows shard timing.
        Crash events (``error`` set) are part of the stream.
        """
        while True:
            event = await self._queue.get()
            if event is _CLOSED:
                return
            yield event
