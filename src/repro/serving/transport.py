"""Request/reply message protocol between the shard router and workers.

The sharded service talks to each worker process over one duplex
:func:`multiprocessing.Pipe` connection.  Every interaction is a strict
request → reply pair: the router sends a :class:`Request`, the worker
answers with exactly one :class:`Reply`.  Payloads are restricted to
plain data — numpy arrays, the :class:`~repro.serving.service.SessionEvent`
/ :class:`~repro.serving.service.SessionResult` dataclasses, numbers and
strings — so the wire format stays portable across ``fork`` and
``spawn`` start methods.

Worker-side exceptions never kill the worker: they are caught, reduced
to ``(error class name, message)`` and re-raised router-side as the
matching :mod:`repro.errors` type (:func:`raise_remote`), so a
misrouted ``feed`` on a shard behaves exactly like the same call on a
local :class:`~repro.serving.service.MonitorService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .. import errors


@dataclass(frozen=True)
class Request:
    """One command from the router to a worker.

    ``op`` selects the operation; the remaining fields are that
    operation's arguments (unused ones keep their defaults).
    """

    op: str
    session_id: str | None = None
    frames: Any = None
    record_timeline: bool = True
    collect: bool = True


@dataclass(frozen=True)
class Reply:
    """One worker answer.

    ``ok`` distinguishes results from worker-side exceptions; on failure
    ``error_type``/``error`` carry the exception's class name and
    message.  ``has_pending`` piggy-backs the worker's post-operation
    backlog state on every reply so the router can track which shards
    still owe ticks without extra round trips.
    """

    ok: bool
    value: Any = None
    error_type: str | None = None
    error: str | None = None
    has_pending: bool = False


def error_reply(exc: BaseException, has_pending: bool = False) -> Reply:
    """Reduce a worker-side exception to a wire-format :class:`Reply`."""
    return Reply(
        ok=False,
        error_type=type(exc).__name__,
        error=str(exc),
        has_pending=has_pending,
    )


def raise_remote(reply: Reply) -> None:
    """Re-raise a failed reply as its original :mod:`repro.errors` type.

    Exception classes outside the library's hierarchy degrade to
    :class:`~repro.errors.WorkerError` carrying the original class name.
    """
    if reply.ok:
        return
    cls = getattr(errors, reply.error_type or "", None)
    if isinstance(cls, type) and issubclass(cls, errors.ReproError):
        raise cls(reply.error or "")
    raise errors.WorkerError(f"{reply.error_type}: {reply.error}")
