"""Block Transfer task script and demonstration generator.

Encodes the FLS Block Transfer task as executed in the paper's dry-lab
and Gazebo setups (Figures 1c and 6): the transfer arm positions over the
block (G2), reaches down and grasps it (G12), lifts it (G6), carries it
to the receptacle (G5), and drops it there before moving to the end point
(G11).  Every demonstration follows this fixed gesture sequence, matching
the deterministic Markov chain of paper Figure 3b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RAVEN_DEFAULT_SAMPLE_RATE_HZ, as_generator
from ..errors import ConfigurationError
from ..gestures.vocabulary import Gesture
from .motion import waypoint_trajectory
from .robot import CommandedTrajectory
from .teleop import OperatorProfile
from .workspace import Workspace

#: The fixed gesture script (paper Figure 3b).
BLOCK_TRANSFER_SEQUENCE: tuple[Gesture, ...] = (
    Gesture.G2,
    Gesture.G12,
    Gesture.G6,
    Gesture.G5,
    Gesture.G11,
)

#: Nominal duration of each gesture in seconds (scaled by the operator's
#: speed factor).  G11 includes the drop and the retreat to the end
#: point, making it the longest phase, as in the paper's description.
GESTURE_DURATIONS_S: dict[Gesture, float] = {
    Gesture.G2: 2.0,
    Gesture.G12: 2.0,
    Gesture.G6: 1.5,
    Gesture.G5: 3.5,
    Gesture.G11: 2.6,
}

#: Jaw angles characterising the task phases (radians).
JAW_OPEN_RAD = 0.8  # approach with jaws ready
JAW_CLOSED_RAD = 0.2  # holding the block
JAW_RELEASE_RAD = 1.25  # deliberate release over the receptacle


@dataclass(frozen=True)
class BlockTransferTask:
    """Plans commanded trajectories for Block Transfer demonstrations.

    Parameters
    ----------
    workspace:
        Scene geometry the plan must respect.
    sample_rate_hz:
        Command stream rate.
    transfer_arm:
        Arm carrying the block (the other arm idles near its home pose).
    """

    workspace: Workspace
    sample_rate_hz: float = RAVEN_DEFAULT_SAMPLE_RATE_HZ
    transfer_arm: str = "left"

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if self.transfer_arm not in ("left", "right"):
            raise ConfigurationError("transfer_arm must be 'left' or 'right'")

    # ------------------------------------------------------------------
    def plan(
        self,
        operator: OperatorProfile,
        rng: int | np.random.Generator | None = None,
    ) -> CommandedTrajectory:
        """Produce one operator-flavoured commanded trajectory.

        The plan visits, per gesture:

        - G2  — home -> hover above the block (jaws opening);
        - G12 — descend to the block and close the jaws;
        - G6  — lift straight up to carry height;
        - G5  — carry horizontally to above the receptacle;
        - G11 — lower slightly, open jaws to release, retreat to the end
          point.
        """
        gen = as_generator(rng)
        ws = self.workspace
        block_top = ws.block.position.copy()
        grasp_point = block_top.copy()
        carry = ws.carry_height_mm
        receptacle = ws.receptacle.position.copy()

        home = np.array([-ws.extent_mm * 0.6, -ws.extent_mm * 0.5, carry])
        hover_block = np.array([grasp_point[0], grasp_point[1], carry])
        lift_point = hover_block.copy()
        hover_receptacle = np.array([receptacle[0], receptacle[1], carry])
        drop_point = np.array([receptacle[0], receptacle[1], carry * 0.45])
        end_point = np.array([ws.extent_mm * 0.6, -ws.extent_mm * 0.5, carry])

        # Order: one waypoint pair per gesture segment.  G11 is split into
        # lower+release, a brisk retreat, and a hover at the end point —
        # so a *late* release (a missed drop) lands visibly far from the
        # receptacle, as in the dry-lab task.
        waypoints = np.stack(
            [
                home,  # start of G2
                hover_block,  # G2 -> G12 boundary
                grasp_point,  # G12 -> G6 boundary (grasp happens here)
                lift_point,  # G6 -> G5 boundary
                hover_receptacle,  # G5 -> G11 boundary
                drop_point,  # release point (30% into G11)
                end_point,  # retreat target
                end_point,  # hover at the end point
            ]
        )
        # The grasp (index 2) and drop (index 5) targets must stay exact.
        waypoints = operator.jitter_waypoints(waypoints, gen, frozen={2, 5})

        durations = self._segment_durations(operator, gen)
        steps = [
            max(2, int(round(d * self.sample_rate_hz))) for d in durations
        ]
        positions = waypoint_trajectory(waypoints, steps)
        n = positions.shape[0]
        positions += operator.tremor(n, 3, gen)

        gestures, boundaries = self._gesture_labels(steps)
        jaw = self._jaw_profile(n, boundaries, operator, gen)

        idle_offset = np.array([0.0, -ws.extent_mm * 0.7, carry])
        idle = np.tile(idle_offset, (n, 1)) + operator.tremor(n, 3, gen) * 0.5
        other_arm = "right" if self.transfer_arm == "left" else "left"

        return CommandedTrajectory(
            positions={self.transfer_arm: positions, other_arm: idle},
            jaw_angles={
                self.transfer_arm: jaw,
                other_arm: np.full(n, JAW_OPEN_RAD)
                + gen.normal(0.0, operator.grasper_noise_rad, size=n),
            },
            gestures=gestures,
            sample_rate_hz=self.sample_rate_hz,
            transfer_arm=self.transfer_arm,
            metadata={"operator": operator.name, "task": "block_transfer"},
        )

    # ------------------------------------------------------------------
    def _segment_durations(
        self, operator: OperatorProfile, gen: np.random.Generator
    ) -> list[float]:
        """Per-segment durations (s): 7 segments for 5 gestures.

        G11 is split over three waypoint segments (lower+release, brisk
        retreat, end-point hover); the other gestures map to one each.
        """
        base = [
            GESTURE_DURATIONS_S[Gesture.G2],
            GESTURE_DURATIONS_S[Gesture.G12],
            GESTURE_DURATIONS_S[Gesture.G6],
            GESTURE_DURATIONS_S[Gesture.G5],
            GESTURE_DURATIONS_S[Gesture.G11] * 0.30,
            GESTURE_DURATIONS_S[Gesture.G11] * 0.35,
            GESTURE_DURATIONS_S[Gesture.G11] * 0.35,
        ]
        # Log-normal per-segment timing variation around the profile speed.
        factors = operator.speed_factor * np.exp(gen.normal(0.0, 0.08, size=len(base)))
        return [b * f for b, f in zip(base, factors)]

    def _gesture_labels(
        self, steps: list[int]
    ) -> tuple[np.ndarray, dict[Gesture, tuple[int, int]]]:
        """Per-step gesture labels and gesture frame windows."""
        # Segment i contributes steps[i] samples, sharing junctions
        # (waypoint_trajectory drops the duplicated junction sample).
        lengths = [steps[0]] + [s - 1 for s in steps[1:]]
        total = sum(lengths)
        labels = np.empty(total, dtype=int)
        # Map the seven segments onto five gestures (G11 = segments 4-6).
        segment_gestures = [
            Gesture.G2,
            Gesture.G12,
            Gesture.G6,
            Gesture.G5,
            Gesture.G11,
            Gesture.G11,
            Gesture.G11,
        ]
        boundaries: dict[Gesture, tuple[int, int]] = {}
        cursor = 0
        for seg_len, gesture in zip(lengths, segment_gestures):
            labels[cursor : cursor + seg_len] = int(gesture)
            start, _ = boundaries.get(gesture, (cursor, cursor))
            boundaries[gesture] = (start, cursor + seg_len)
            cursor += seg_len
        return labels, boundaries

    def _jaw_profile(
        self,
        n: int,
        boundaries: dict[Gesture, tuple[int, int]],
        operator: OperatorProfile,
        gen: np.random.Generator,
    ) -> np.ndarray:
        """Commanded jaw angle over the demonstration."""
        jaw = np.full(n, JAW_OPEN_RAD)
        g12_start, g12_end = boundaries[Gesture.G12]
        g11_start, g11_end = boundaries[Gesture.G11]

        # Close gradually during the second half of G12 (the descent).
        close_start = (g12_start + g12_end) // 2
        ramp = np.linspace(JAW_OPEN_RAD, JAW_CLOSED_RAD, max(2, g12_end - close_start))
        jaw[close_start : close_start + ramp.size] = ramp
        # Hold closed through the carry.
        jaw[close_start + ramp.size : g11_start] = JAW_CLOSED_RAD
        # Release during G11: open over the first part of the lowering
        # segment, then keep the jaws open while retreating.
        release_at = g11_start + int(0.3 * (g11_end - g11_start))
        open_ramp = np.linspace(
            JAW_CLOSED_RAD, JAW_RELEASE_RAD, max(2, release_at - g11_start)
        )
        jaw[g11_start : g11_start + open_ramp.size] = open_ramp
        jaw[g11_start + open_ramp.size :] = JAW_RELEASE_RAD
        jaw += gen.normal(0.0, operator.grasper_noise_rad, size=n)
        return np.clip(jaw, 0.05, 1.5)


def generate_demonstration(
    operator: OperatorProfile,
    workspace: Workspace | None = None,
    sample_rate_hz: float = RAVEN_DEFAULT_SAMPLE_RATE_HZ,
    rng: int | np.random.Generator | None = None,
) -> CommandedTrajectory:
    """Convenience: plan one fault-free Block Transfer command stream."""
    task = BlockTransferTask(
        workspace=workspace or Workspace(), sample_rate_hz=sample_rate_hz
    )
    return task.plan(operator, rng)
